"""Whole-trace dataflow analysis over columnar traces.

The per-VPC rules (SPV001-007) are local: each command is checked in
isolation (plus a small hazard window).  This module analyses the whole
program at once.  It builds a *def-use index* — last writer, first
reader, and live range for every touched address range — directly from
a :class:`~repro.isa.columnar.ColumnarTrace`'s columns, seeded from the
placement plan's initialised regions, and runs the deep rules on top:

* **SPV008** uninitialised read — an operand read with no prior writer
  and no placement init.
* **SPV009** dead store — a written range never read before being
  overwritten or falling off the end of the trace.
* **SPV010** schedule-aware race — delegated to
  :mod:`repro.verify.races`, built on the scheduler's dependency
  relation.
* **SPV011** scratch-slot leak — scratch words written but never
  consumed or recycled before end-of-trace.
* **SPV012** redundant copy — a TRAN whose source bytes are provably
  already resident at the destination (an optimisation hint).

Index construction is loop-free over commands: access intervals come
from :meth:`~repro.isa.columnar.ColumnarTrace.read_intervals` /
:meth:`write_intervals`, interval endpoints are coordinate-compressed
into elementary *segments* (``np.unique``), each access is expanded to
its covered segments with ``np.repeat`` arithmetic, and one ``lexsort``
orders all (segment, command) access pairs so that per-segment def-use
chains fall out of prefix sums and neighbour comparisons.  Python loops
touch only findings and copy candidates, never the command stream.

Without a placement plan (raw trace files) the pass degrades
gracefully: SPV008 and SPV011 need the initialised/placed regions and
are skipped, and SPV009 only fires on overwritten-before-read stores
(end-of-trace liveness is unknown).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.metrics import NULL_REGISTRY
from repro.rm.address import AddressMap, DeviceGeometry
from repro.verify.diagnostics import (
    ALL_RULES,
    DATAFLOW_RULES,
    Diagnostic,
    VerifyReport,
    make_diagnostic,
    validate_rule_ids,
)

#: Half-open [start, end) word range.
_Interval = Tuple[int, int]


class DataflowIndex:
    """Def-use index of one columnar trace.

    Access *events* are the union of every command's read/write
    intervals plus two pseudo generations: placement-initialised
    regions enter as writes at position ``-1`` and live-out regions
    (everything ``fetch_results`` reads back) as reads at position
    ``n_commands``.  Interval endpoints are coordinate-compressed into
    elementary segments; all per-segment chains are precomputed as
    arrays, so rule passes and queries never walk the command stream.
    """

    def __init__(
        self,
        cols,
        init_intervals: Optional[Sequence[_Interval]] = None,
        liveout_intervals: Optional[Sequence[_Interval]] = None,
    ) -> None:
        self.n_commands = n = len(cols)
        #: Whether end-of-trace liveness is known (a plan was supplied).
        self.liveout_known = liveout_intervals is not None
        self.init_known = init_intervals is not None

        read_idx, read_start, read_end = cols.read_intervals()
        write_idx, write_start, write_end = cols.write_intervals()
        idx_parts = [read_idx, write_idx]
        start_parts = [read_start, write_start]
        end_parts = [read_end, write_end]
        write_parts = [
            np.zeros(len(read_idx), dtype=bool),
            np.ones(len(write_idx), dtype=bool),
        ]
        for intervals, position, as_write in (
            (init_intervals, -1, True),
            (liveout_intervals, n, False),
        ):
            if not intervals:
                continue
            starts = np.array([s for s, _ in intervals], dtype=np.int64)
            ends = np.array([e for _, e in intervals], dtype=np.int64)
            keep = ends > starts
            starts, ends = starts[keep], ends[keep]
            idx_parts.append(np.full(len(starts), position, dtype=np.int64))
            start_parts.append(starts)
            end_parts.append(ends)
            write_parts.append(np.full(len(starts), as_write, dtype=bool))

        #: One row per access event (reads, writes, pseudo generations).
        self.ev_idx = np.concatenate(idx_parts)
        self.ev_start = np.concatenate(start_parts)
        self.ev_end = np.concatenate(end_parts)
        self.ev_write = np.concatenate(write_parts)

        if len(self.ev_idx) == 0:
            self.bounds = np.empty(0, dtype=np.int64)
        else:
            self.bounds = np.unique(
                np.concatenate([self.ev_start, self.ev_end])
            )

        # Expand events to (event, segment) pairs without a Python loop:
        # each event covers the consecutive segment ids
        # [searchsorted(start), searchsorted(end)).
        seg_lo = np.searchsorted(self.bounds, self.ev_start)
        seg_hi = np.searchsorted(self.bounds, self.ev_end)
        counts = seg_hi - seg_lo
        pair_ev = np.repeat(
            np.arange(len(self.ev_idx), dtype=np.int64), counts
        )
        offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
        pair_seg = (
            np.repeat(seg_lo - offsets, counts)
            + np.arange(int(counts.sum()), dtype=np.int64)
        )

        # Segment-major order; within a segment by trace position, with
        # reads sorted before writes at equal position (an in-place
        # compute reads its words before rewriting them).  Pairs with
        # identical (segment, position, kind) are interchangeable, so a
        # single packed key sorted with the default introsort replaces
        # the 3-key stable lexsort — substantially faster at the
        # hundreds-of-thousands-of-pairs scale real traces produce.
        p_idx = self.ev_idx[pair_ev]
        p_write = self.ev_write[pair_ev]
        n_segments = max(len(self.bounds) - 1, 0)
        stride = 2 * (n + 2)
        if n_segments * stride < (1 << 62):
            key = (
                pair_seg * stride
                + (p_idx + 1) * 2
                + p_write
            )
            order = np.argsort(key)
        else:  # pragma: no cover - traces beyond the packed-key range
            order = np.lexsort((p_write, p_idx, pair_seg))
        self.pair_ev = pair_ev[order]
        self.pair_seg = pair_seg[order]
        self.p_idx = p_idx[order]
        self.p_write = p_write[order]

        total = len(self.pair_ev)
        self.new_group = np.empty(total, dtype=bool)
        if total:
            self.new_group[0] = True
            self.new_group[1:] = self.pair_seg[1:] != self.pair_seg[:-1]
        group_start = np.flatnonzero(self.new_group)
        group_sizes = np.diff(np.concatenate((group_start, [total])))

        # Writes strictly before each pair within its segment.
        wcum = np.cumsum(self.p_write.astype(np.int64))
        before = wcum - self.p_write
        if total:
            base = before[group_start]
            self.writes_before = before - np.repeat(base, group_sizes)
        else:
            self.writes_before = before

        # Whether the pair after each pair stays in the same segment,
        # and whether that successor is a write — the "next access"
        # relation every liveness rule reads.
        self.next_same_group = np.zeros(total, dtype=bool)
        self.next_is_write = np.zeros(total, dtype=bool)
        if total:
            self.next_same_group[:-1] = ~self.new_group[1:]
            self.next_is_write[:-1] = self.p_write[1:]

        # Per-segment real-write positions (sorted by segment, then
        # position) for windowed "any write in (i, j)?" queries.
        real = (self.p_idx >= 0) & (self.p_idx < n)
        sel = self.p_write & real
        self.wp_seg = self.pair_seg[sel]
        self.wp_idx = self.p_idx[sel]

        # Per-segment real first-reader / last-writer for queries.
        n_segments = max(len(self.bounds) - 1, 0)
        self.seg_last_write = np.full(n_segments, -1, dtype=np.int64)
        if len(self.wp_seg):
            first = np.concatenate(
                ([True], self.wp_seg[1:] != self.wp_seg[:-1])
            )
            last_pos = np.concatenate(
                (np.flatnonzero(first)[1:] - 1, [len(self.wp_seg) - 1])
            )
            self.seg_last_write[self.wp_seg[last_pos]] = self.wp_idx[
                last_pos
            ]
        self.seg_first_read = np.full(n_segments, n, dtype=np.int64)
        sel_read = ~self.p_write & real
        rp_seg = self.pair_seg[sel_read]
        rp_idx = self.p_idx[sel_read]
        if len(rp_seg):
            first = np.concatenate(([True], rp_seg[1:] != rp_seg[:-1]))
            self.seg_first_read[rp_seg[first]] = rp_idx[first]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _segment_range(self, start: int, end: int) -> Tuple[int, int]:
        """Ids of the segments intersecting ``[start, end)``."""
        lo = int(np.searchsorted(self.bounds, start, side="right")) - 1
        hi = int(np.searchsorted(self.bounds, end, side="left"))
        return max(lo, 0), min(hi, max(len(self.bounds) - 1, 0))

    def segment_bounds(self, segment: int) -> _Interval:
        return int(self.bounds[segment]), int(self.bounds[segment + 1])

    def last_writer(self, start: int, end: int) -> int:
        """Largest command index writing any word of ``[start, end)``.

        ``-1`` means no command wrote the range (it may still be
        placement-initialised).
        """
        lo, hi = self._segment_range(start, end)
        if hi <= lo:
            return -1
        return int(self.seg_last_write[lo:hi].max())

    def first_reader(self, start: int, end: int) -> int:
        """Smallest command index reading any word of ``[start, end)``.

        ``n_commands`` means no command reads the range.
        """
        lo, hi = self._segment_range(start, end)
        if hi <= lo:
            return self.n_commands
        return int(self.seg_first_read[lo:hi].min())

    def live_ranges(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Per touched segment: ``(start, end, first_def, last_use)``.

        ``first_def`` is the position of the first write (``-1`` for
        placement init) and ``last_use`` the position of the last access
        (``n_commands`` for a live-out read); segments never written
        report ``first_def = n_commands`` (use before any def).
        """
        if not len(self.pair_seg):
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy(), empty.copy()
        first_mask = self.new_group
        segments = self.pair_seg[first_mask]
        group_start = np.flatnonzero(first_mask)
        group_end = np.concatenate(
            (group_start[1:] - 1, [len(self.pair_seg) - 1])
        )
        last_use = self.p_idx[group_end]
        first_def = np.full(len(segments), self.n_commands, dtype=np.int64)
        if len(self.wp_seg):
            # First write per segment, mapped back onto touched order.
            wfirst = np.concatenate(
                ([True], self.wp_seg[1:] != self.wp_seg[:-1])
            )
            pos = np.searchsorted(segments, self.wp_seg[wfirst])
            first_def[pos] = self.wp_idx[wfirst]
        # Pseudo init writes are not in wp_*; fold them in directly.
        init_pairs = self.p_write & (self.p_idx < 0)
        if init_pairs.any():
            pos = np.searchsorted(
                segments, np.unique(self.pair_seg[init_pairs])
            )
            first_def[pos] = -1
        return (
            self.bounds[segments],
            self.bounds[segments + 1],
            first_def,
            last_use,
        )

    def any_write_between(
        self, start: int, end: int, after: int, before: int
    ) -> bool:
        """Whether any command in positions ``(after, before)`` (both
        exclusive) writes a word of ``[start, end)``."""
        lo, hi = self._segment_range(start, end)
        for segment in range(lo, hi):
            left = int(np.searchsorted(self.wp_seg, segment, side="left"))
            right = int(
                np.searchsorted(self.wp_seg, segment, side="right")
            )
            window = self.wp_idx[left:right]
            pos_lo = int(np.searchsorted(window, after, side="right"))
            pos_hi = int(np.searchsorted(window, before, side="left"))
            if pos_hi > pos_lo:
                return True
        return False


class DataflowAnalyzer:
    """Runs the deep (whole-trace) rules over a columnar trace.

    Args:
        geometry: device geometry (defaults to the paper's Table III
            device); provides the subarray width the race rule needs.
        plan: optional placement plan of the trace; seeds the index with
            the initialised regions and enables the plan-dependent rules
            (SPV008 init state, SPV011 scratch classification, live-out
            reads for SPV009).
        scalar_slots: ``{address: name}`` scalar-slot words seeded by
            ``materialize()`` (see
            :attr:`repro.core.task.PimTask.trace_scalar_slots`).
        rules: restrict to these rule IDs (subset of
            :data:`~repro.verify.diagnostics.DATAFLOW_RULES`; None =
            all).
        max_diagnostics: recording cap, as in ``TraceVerifier``.
        registry: metrics registry receiving the ``dataflow.*`` family
            (timings, index sizes, finding counts); defaults to the
            no-op registry.
    """

    def __init__(
        self,
        geometry: Optional[DeviceGeometry] = None,
        plan=None,
        scalar_slots: Optional[Dict[int, object]] = None,
        rules: Optional[Sequence[str]] = None,
        max_diagnostics: int = 500,
        registry=None,
    ) -> None:
        if max_diagnostics < 1:
            raise ValueError(
                f"max_diagnostics must be >= 1, got {max_diagnostics}"
            )
        self.geometry = geometry or DeviceGeometry()
        self.address_map = AddressMap(self.geometry)
        self.plan = plan
        self.scalar_slots = dict(scalar_slots or {})
        self.rules = validate_rule_ids(
            rules, {r: ALL_RULES[r] for r in DATAFLOW_RULES}
        )
        self.max_diagnostics = max_diagnostics
        self.registry = registry if registry is not None else NULL_REGISTRY
        self._placed: Optional[List[Tuple[int, int, str]]] = None
        if plan is not None:
            from repro.verify.trace_verifier import TraceVerifier

            spans = TraceVerifier._placed_spans(plan, True)
            spans += [
                (address, address + 1, f"scalar slot {name!r}")
                for address, name in sorted(self.scalar_slots.items())
            ]
            self._placed = spans

    # ------------------------------------------------------------------
    def _enabled(self, rule_id: str) -> bool:
        return self.rules is None or rule_id in self.rules

    def build_index(self, cols) -> DataflowIndex:
        """The def-use index this analyzer's rules run on."""
        intervals = None
        if self._placed is not None:
            intervals = [(start, end) for start, end, _ in self._placed]
        return DataflowIndex(
            cols, init_intervals=intervals, liveout_intervals=intervals
        )

    def analyze(self, cols, subject: str = "trace") -> VerifyReport:
        """Run every enabled deep rule over ``cols``; never raises."""
        started = time.perf_counter_ns()
        report = VerifyReport(subject=subject)
        suppressed = 0

        def emit(diagnostic: Diagnostic) -> None:
            nonlocal suppressed
            if len(report.diagnostics) < self.max_diagnostics:
                report.diagnostics.append(diagnostic)
            else:
                suppressed += 1

        index = self.build_index(cols)
        if self._enabled("SPV008") and index.init_known:
            self._check_uninitialized_reads(cols, index, emit)
        if self._enabled("SPV009") or self._enabled("SPV011"):
            self._check_dead_stores(cols, index, emit)
        if self._enabled("SPV010"):
            from repro.verify.races import check_races

            check_races(cols, self.address_map, index, emit)
        if self._enabled("SPV012"):
            self._check_redundant_copies(cols, index, emit)
        report.suppressed = suppressed

        registry = self.registry
        registry.counter("dataflow.analyses").inc()
        registry.counter("dataflow.commands").inc(len(cols))
        registry.counter("dataflow.access_events").inc(len(index.ev_idx))
        registry.counter("dataflow.segments").inc(
            max(len(index.bounds) - 1, 0)
        )
        for rule_id in sorted(DATAFLOW_RULES):
            count = len(report.by_rule(rule_id))
            if count:
                registry.counter(f"dataflow.findings.{rule_id}").inc(count)
        registry.gauge("dataflow.analyze_ns").set(
            float(time.perf_counter_ns() - started)
        )
        return report

    # ------------------------------------------------------------------
    # SPV008: uninitialised read
    # ------------------------------------------------------------------
    def _check_uninitialized_reads(self, cols, index, emit) -> None:
        n = index.n_commands
        real = (index.p_idx >= 0) & (index.p_idx < n)
        bad = ~index.p_write & real & (index.writes_before == 0)
        if not bad.any():
            return
        # One diagnostic per offending read access, citing its first
        # uninitialised segment.
        first_bad: Dict[int, int] = {}
        for pair in np.flatnonzero(bad).tolist():
            first_bad.setdefault(
                int(index.pair_ev[pair]), int(index.pair_seg[pair])
            )
        for event in sorted(first_bad, key=lambda e: int(index.ev_idx[e])):
            position = int(index.ev_idx[event])
            seg_start, seg_end = index.segment_bounds(first_bad[event])
            vpc = cols[position]
            emit(
                make_diagnostic(
                    "SPV008",
                    f"vpc #{position}",
                    f"{vpc.opcode.value} reads "
                    f"[{int(index.ev_start[event])}, "
                    f"{int(index.ev_end[event])}) but words "
                    f"[{seg_start}, {seg_end}) have no prior writer and "
                    f"no placement init",
                    index=position,
                )
            )

    # ------------------------------------------------------------------
    # SPV009 dead store / SPV011 scratch-slot leak
    # ------------------------------------------------------------------
    def _check_dead_stores(self, cols, index, emit) -> None:
        n = index.n_commands
        if n == 0:
            return
        real = (index.p_idx >= 0) & (index.p_idx < n)
        sel = index.p_write & real
        if not sel.any():
            return
        # A written segment is dead when its next access (same segment)
        # is another write, or absent while liveness is known; it is
        # trailing when no access follows at all.
        dead_seg = np.where(
            index.next_same_group[sel],
            index.next_is_write[sel],
            index.liveout_known,
        )
        trailing_seg = ~index.next_same_group[sel]
        events = index.pair_ev[sel]
        n_events = len(index.ev_idx)
        counts = np.bincount(events, minlength=n_events)
        dead_counts = np.bincount(
            events, weights=dead_seg.astype(np.float64), minlength=n_events
        )
        trailing_counts = np.bincount(
            events,
            weights=trailing_seg.astype(np.float64),
            minlength=n_events,
        )
        dead_event = (counts > 0) & (dead_counts == counts)
        if not dead_event.any():
            return
        scratch_known = self._placed is not None
        if scratch_known:
            seg_scratch = self._segment_scratch_mask(index)
            scratch_counts = np.bincount(
                events,
                weights=seg_scratch[index.pair_seg[sel]].astype(
                    np.float64
                ),
                minlength=n_events,
            )
            leak_event = (
                dead_event
                & (trailing_counts == counts)
                & (scratch_counts == counts)
            )
        else:
            leak_event = np.zeros(n_events, dtype=bool)
        overwritten = trailing_counts < counts
        for event in np.flatnonzero(dead_event).tolist():
            position = int(index.ev_idx[event])
            start = int(index.ev_start[event])
            end = int(index.ev_end[event])
            vpc = cols[position]
            if leak_event[event] and self._enabled("SPV011"):
                emit(
                    make_diagnostic(
                        "SPV011",
                        f"vpc #{position}",
                        f"{vpc.opcode.value} stages [{start}, {end}) in "
                        f"scratch but the words are never read or "
                        f"recycled before end of trace",
                        index=position,
                    )
                )
            elif not leak_event[event] and self._enabled("SPV009"):
                fate = (
                    "overwritten before any read"
                    if overwritten[event]
                    else "never read before end of trace"
                )
                emit(
                    make_diagnostic(
                        "SPV009",
                        f"vpc #{position}",
                        f"{vpc.opcode.value} writes [{start}, {end}) "
                        f"but the stored words are {fate}",
                        index=position,
                    )
                )

    def _segment_scratch_mask(self, index) -> np.ndarray:
        """Per-segment mask: True where the segment lies outside every
        placed span (i.e. in scratch space).

        Placed spans are index endpoints (they enter as init/live-out
        events), so touched segments never straddle a placed boundary.
        """
        n_segments = max(len(index.bounds) - 1, 0)
        if not n_segments:
            return np.zeros(0, dtype=bool)
        starts = np.array(
            [s for s, _, _ in self._placed], dtype=np.int64
        )
        ends = np.array([e for _, e, _ in self._placed], dtype=np.int64)
        if not len(starts):
            return np.ones(n_segments, dtype=bool)
        order = np.argsort(starts, kind="stable")
        starts = starts[order]
        running = np.maximum.accumulate(ends[order])
        seg_starts = index.bounds[:-1]
        pos = np.searchsorted(starts, seg_starts, side="right") - 1
        covered = (pos >= 0) & (seg_starts < running[np.maximum(pos, 0)])
        return ~covered

    # ------------------------------------------------------------------
    # SPV012: redundant copy
    # ------------------------------------------------------------------
    def _check_redundant_copies(self, cols, index, emit) -> None:
        move = ~cols.is_compute
        if not move.any():
            return
        positions = np.flatnonzero(move)
        src = cols.src1[positions].astype(np.int64)
        des = cols.des[positions].astype(np.int64)
        size = cols.size[positions].astype(np.int64)
        # Identity TRANs are the operand-delivery convention for
        # pre-seeded scalars, not copies; exempt them.
        keep = src != des
        positions, src, des, size = (
            positions[keep], src[keep], des[keep], size[keep]
        )
        if len(positions) < 2:
            return
        order = np.lexsort((positions, size, des, src))
        positions, src, des, size = (
            positions[order], src[order], des[order], size[order]
        )
        same_key = (
            (src[1:] == src[:-1])
            & (des[1:] == des[:-1])
            & (size[1:] == size[:-1])
        )
        for offset in np.flatnonzero(same_key).tolist():
            earlier = int(positions[offset])
            later = int(positions[offset + 1])
            s, d, k = int(src[offset]), int(des[offset]), int(size[offset])
            if index.any_write_between(s, s + k, earlier, later):
                continue
            if index.any_write_between(d, d + k, earlier, later):
                continue
            emit(
                make_diagnostic(
                    "SPV012",
                    f"vpc #{later}",
                    f"TRAN copies [{s}, {s + k}) to [{d}, {d + k}) but "
                    f"vpc #{earlier} already performed this copy and "
                    f"neither range was written since",
                    index=later,
                )
            )
