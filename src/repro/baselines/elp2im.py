"""ELP2IM baseline: process-in-DRAM via serialized bit-level operations.

ELP2IM (HPCA'20) computes with bulk bitwise operations on DRAM rows:
every arithmetic operation is decomposed into a sequence of row-level
logic steps (activations implementing majority/AND/OR plus copies), each
costing a DRAM row cycle including the precharge the paper calls out
("removes the energy-thirsty refresh and precharge operations" is
FELIX's advantage over it).

An 8-bit ripple-carry addition needs ~3 row steps per bit (two logic
steps plus a carry propagation step); an 8-bit multiplication performs
8 shifted partial-product AND steps plus 7 such additions.  Steps are
row-parallel: one step processes ``row_width_words`` words at once, but
the *serialized bit-level* nature means tens of steps per arithmetic
operation — which is exactly why the paper measures it at only ~3.6x
over CPU-RM.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.common import Platform
from repro.sim.stats import EnergyBreakdown, RunStats, TimeBreakdown
from repro.workloads.spec import WorkloadSpec


@dataclass(frozen=True)
class Elp2imConfig:
    """Constants of the ELP2IM per-operation model.

    Attributes:
        word_bits: datapath width (same 8-bit operands as StreamPIM).
        steps_per_bit_add: row-level steps per result bit of an addition.
        row_cycle_ns: one activate+logic+precharge row cycle (DRAM tRC
            class, at the common 100 MHz memory-core clock: 2 cycles).
        precharge_ns: additional precharge exposed per step (the DRAM
            penalty FELIX avoids).
        row_step_energy_pj: energy of one row-level step (activation of
            the computation rows).
        row_width_words: words of *useful* vector data one row step
            advances (the kernels' vector segments, not the whole row) —
            sets throughput.
        energy_row_width_words: words over which a row step's activation
            energy amortises — bulk-bitwise ops drive the entire 8 KiB
            DRAM row, so this is the full row width.
        parallel_units: concurrently computing subarrays.
    """

    word_bits: int = 8
    steps_per_bit_add: int = 8
    row_cycle_ns: float = 25.0
    precharge_ns: float = 20.0
    row_step_energy_pj: float = 35.0
    row_width_words: int = 64
    energy_row_width_words: int = 8192
    parallel_units: int = 512

    def __post_init__(self) -> None:
        if self.word_bits <= 0 or self.steps_per_bit_add <= 0:
            raise ValueError("word_bits/steps_per_bit_add must be positive")
        if self.row_cycle_ns <= 0 or self.precharge_ns < 0:
            raise ValueError("row timing must be positive")
        if self.row_width_words <= 0 or self.parallel_units <= 0:
            raise ValueError("widths/parallelism must be positive")

    @property
    def steps_per_add(self) -> int:
        """Row steps of one word addition."""
        return self.steps_per_bit_add * self.word_bits

    @property
    def steps_per_mul(self) -> int:
        """Row steps of one word multiplication.

        ``word_bits`` partial-product AND steps plus ``word_bits - 1``
        double-width ripple additions.
        """
        partial_products = self.word_bits
        addition_steps = (
            (self.word_bits - 1) * self.steps_per_bit_add * 2 * self.word_bits
        )
        return partial_products + addition_steps

    @property
    def step_ns(self) -> float:
        return self.row_cycle_ns + self.precharge_ns


class Elp2imPlatform(Platform):
    """Per-operation analytic model of ELP2IM."""

    name = "ELP2IM"

    def __init__(self, config: Elp2imConfig | None = None) -> None:
        self.config = config or Elp2imConfig()

    def _per_word_ns(self, steps: int) -> float:
        cfg = self.config
        return steps * cfg.step_ns / cfg.row_width_words

    def _per_word_pj(self, steps: int) -> float:
        cfg = self.config
        return steps * cfg.row_step_energy_pj / cfg.energy_row_width_words

    def run(self, workload: WorkloadSpec) -> RunStats:
        cfg = self.config
        ops = workload.scalar_ops()
        mul_ns = self._per_word_ns(cfg.steps_per_mul)
        add_ns = self._per_word_ns(cfg.steps_per_add)
        total_ns = (
            ops.muls * mul_ns + ops.adds * add_ns
        ) / cfg.parallel_units

        # Bit-level logic blurs the transfer/compute line: every step is
        # simultaneously a row access and a logic evaluation.  Charge the
        # activation part as write-class time and the logic part as
        # process, in proportion to the row cycle vs precharge split.
        access_share = cfg.precharge_ns / cfg.step_ns
        time = TimeBreakdown()
        time.add("write", total_ns * access_share)
        time.add("process", total_ns * (1.0 - access_share))

        energy = EnergyBreakdown()
        total_pj = ops.muls * self._per_word_pj(
            cfg.steps_per_mul
        ) + ops.adds * self._per_word_pj(cfg.steps_per_add)
        energy.add("write", total_pj * access_share)
        energy.add("compute", total_pj * (1.0 - access_share))

        stats = RunStats(
            platform=self.name,
            workload=workload.name,
            time_ns=total_ns,
            time_breakdown=time,
            energy=energy,
        )
        stats.bump("scalar_muls", ops.muls)
        stats.bump("scalar_adds", ops.adds)
        return stats
