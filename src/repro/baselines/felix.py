"""FELIX baseline: process-in-NVM via serialized bit-level operations.

FELIX (ICCAD'18) performs in-cell logic in resistive NVM.  Like ELP2IM
it decomposes arithmetic into serialized bit-level logic steps, but NVM
cells hold state without refresh and the logic executes in-cell, so the
DRAM precharge penalty disappears and single steps are cheaper — the
paper measures it at ~8.7x over CPU-RM (vs ELP2IM's ~3.6x) while still
losing to the word-level arithmetic of CORUSCANT and StreamPIM.

FELIX's native gates (OR/NAND in one cycle, others composed) need
slightly fewer steps per bit than ELP2IM's majority sequences.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.common import Platform
from repro.sim.stats import EnergyBreakdown, RunStats, TimeBreakdown
from repro.workloads.spec import WorkloadSpec


@dataclass(frozen=True)
class FelixConfig:
    """Constants of the FELIX per-operation model.

    Attributes:
        word_bits: datapath width.
        steps_per_bit_add: in-cell logic steps per result bit of an
            addition (FELIX fuses gates, needing fewer steps than a
            majority-based DRAM sequence).
        step_ns: one in-cell logic step (no precharge).
        step_energy_pj: energy of one row-wide in-cell step.
        row_width_words: useful vector words advanced per step (sets
            throughput).
        energy_row_width_words: words over which a step's energy
            amortises (in-cell logic drives the full row).
        parallel_units: concurrently computing subarrays.
    """

    word_bits: int = 8
    steps_per_bit_add: int = 3
    step_ns: float = 49.0
    step_energy_pj: float = 30.0
    row_width_words: int = 64
    energy_row_width_words: int = 8192
    parallel_units: int = 512

    def __post_init__(self) -> None:
        if self.word_bits <= 0 or self.steps_per_bit_add <= 0:
            raise ValueError("word_bits/steps_per_bit_add must be positive")
        if self.step_ns <= 0 or self.step_energy_pj <= 0:
            raise ValueError("step cost must be positive")
        if self.row_width_words <= 0 or self.parallel_units <= 0:
            raise ValueError("widths/parallelism must be positive")

    @property
    def steps_per_add(self) -> int:
        return self.steps_per_bit_add * self.word_bits

    @property
    def steps_per_mul(self) -> int:
        partial_products = self.word_bits
        addition_steps = (
            (self.word_bits - 1) * self.steps_per_bit_add * 2 * self.word_bits
        )
        return partial_products + addition_steps


class FelixPlatform(Platform):
    """Per-operation analytic model of FELIX."""

    name = "FELIX"

    def __init__(self, config: FelixConfig | None = None) -> None:
        self.config = config or FelixConfig()

    def run(self, workload: WorkloadSpec) -> RunStats:
        cfg = self.config
        ops = workload.scalar_ops()
        per_mul_ns = cfg.steps_per_mul * cfg.step_ns / cfg.row_width_words
        per_add_ns = cfg.steps_per_add * cfg.step_ns / cfg.row_width_words
        total_ns = (
            ops.muls * per_mul_ns + ops.adds * per_add_ns
        ) / cfg.parallel_units

        # In-cell logic: each step both accesses and computes; NVM writes
        # the result state in the same step.  Charge half as write-class
        # (cell state change) and half as process.
        time = TimeBreakdown()
        time.add("write", total_ns * 0.5)
        time.add("process", total_ns * 0.5)

        per_mul_pj = (
            cfg.steps_per_mul * cfg.step_energy_pj / cfg.energy_row_width_words
        )
        per_add_pj = (
            cfg.steps_per_add * cfg.step_energy_pj / cfg.energy_row_width_words
        )
        total_pj = ops.muls * per_mul_pj + ops.adds * per_add_pj
        energy = EnergyBreakdown()
        energy.add("write", total_pj * 0.5)
        energy.add("compute", total_pj * 0.5)

        stats = RunStats(
            platform=self.name,
            workload=workload.name,
            time_ns=total_ns,
            time_breakdown=time,
            energy=energy,
        )
        stats.bump("scalar_muls", ops.muls)
        stats.bump("scalar_adds", ops.adds)
        return stats
