"""GPU platform model (for the Fig. 3b breakdown).

Fig. 3b shows that on a discrete GPU (RTX 3080 class), the small
matrix-vector kernels spend ~90 % of end-to-end time transferring data
between host and device memory — the motivating observation for PIM.
The model is additive: PCIe transfer of all operands/results, kernel
launch overhead, and the kernel itself (bandwidth-bound for these
kernels).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.common import Platform
from repro.sim.stats import EnergyBreakdown, RunStats, TimeBreakdown
from repro.workloads.spec import WorkloadSpec


@dataclass(frozen=True)
class GpuModelConfig:
    """Constants of the analytic GPU model.

    Attributes:
        pcie_gbps: sustained host-device copy bandwidth.
        hbm_gbps: sustained device-memory bandwidth.
        effective_gflops: sustained arithmetic throughput for these
            (launch-bound, unfused) kernels.
        launch_overhead_ns: per-operation kernel launch cost.
        element_bytes: bytes per element copied over PCIe.
        transfer_energy_pj_per_byte: host-device copy energy.
        compute_energy_pj_per_flop: device arithmetic energy.
    """

    pcie_gbps: float = 12.0
    hbm_gbps: float = 600.0
    effective_gflops: float = 1200.0
    launch_overhead_ns: float = 5_000.0
    element_bytes: float = 4.0
    transfer_energy_pj_per_byte: float = 10.0
    compute_energy_pj_per_flop: float = 0.5

    def __post_init__(self) -> None:
        for name in (
            "pcie_gbps",
            "hbm_gbps",
            "effective_gflops",
            "element_bytes",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.launch_overhead_ns < 0:
            raise ValueError("launch_overhead_ns must be non-negative")


class GpuPlatform(Platform):
    """Discrete GPU with explicit host-device copies."""

    name = "GPU"

    def __init__(self, config: GpuModelConfig | None = None) -> None:
        self.config = config or GpuModelConfig()

    def transfer_ns(self, workload: WorkloadSpec) -> float:
        """Host -> device operand copy plus device -> host result copy."""
        ops = workload.scalar_ops()
        volume = (ops.operand_words + ops.result_words) * self.config.element_bytes
        return volume / self.config.pcie_gbps

    def kernel_ns(self, workload: WorkloadSpec) -> float:
        """Device execution: max of compute- and bandwidth-bound times."""
        ops = workload.scalar_ops()
        compute = ops.flops / self.config.effective_gflops
        streamed = (
            ops.traffic_words * self.config.element_bytes / self.config.hbm_gbps
        )
        launches = len(workload.ops) * self.config.launch_overhead_ns
        return max(compute, streamed) + launches

    def run(self, workload: WorkloadSpec) -> RunStats:
        transfer_ns = self.transfer_ns(workload)
        kernel_ns = self.kernel_ns(workload)
        time = TimeBreakdown()
        # Host-device copies are the "Data transfer" bar of Fig. 3b.
        time.add("read", transfer_ns * 0.5)
        time.add("write", transfer_ns * 0.5)
        time.add("process", kernel_ns)

        ops = workload.scalar_ops()
        energy = EnergyBreakdown()
        volume = (ops.operand_words + ops.result_words) * self.config.element_bytes
        energy.add("read", volume * self.config.transfer_energy_pj_per_byte * 0.5)
        energy.add("write", volume * self.config.transfer_energy_pj_per_byte * 0.5)
        energy.add("compute", ops.flops * self.config.compute_energy_pj_per_flop)
        stats = RunStats(
            platform=self.name,
            workload=workload.name,
            time_ns=transfer_ns + kernel_ns,
            time_breakdown=time,
            energy=energy,
        )
        stats.bump("flops", ops.flops)
        return stats

    def transfer_fraction(self, workload: WorkloadSpec) -> float:
        """Share of end-to-end time spent on host-device transfers."""
        transfer = self.transfer_ns(workload)
        total = transfer + self.kernel_ns(workload)
        return transfer / total if total > 0 else 0.0
