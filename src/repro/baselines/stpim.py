"""StreamPIM as an evaluation platform (the paper's StPIM).

Adapts the real simulator (:mod:`repro.core`) to the common
:class:`~repro.baselines.common.Platform` interface: a workload spec's
operation list is materialised as a :class:`~repro.core.task.PimTask`
(shapes only — platform runs are timing/energy runs) and executed under
the configured placement/scheduling policy.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.common import Platform
from repro.core.device import StreamPIMConfig, StreamPIMDevice
from repro.core.task import PimTask, TaskOp, create_pim_task
from repro.sim.stats import RunStats
from repro.workloads.spec import MatrixOpKind, WorkloadSpec

_KIND_TO_TASKOP = {
    MatrixOpKind.MATMUL: TaskOp.MATMUL,
    MatrixOpKind.MATVEC: TaskOp.MATVEC,
    MatrixOpKind.MATVEC_T: TaskOp.MATVEC_T,
    MatrixOpKind.MAT_ADD: TaskOp.MAT_ADD,
    MatrixOpKind.MAT_SCALE: TaskOp.MAT_SCALE,
    MatrixOpKind.VEC_ADD: TaskOp.VEC_ADD,
    MatrixOpKind.VEC_SCALE: TaskOp.VEC_SCALE,
    MatrixOpKind.DOT: TaskOp.DOT,
}


def spec_to_task(
    spec: WorkloadSpec, device: Optional[StreamPIMDevice] = None
) -> PimTask:
    """Materialise a timing-oriented PimTask from a workload spec.

    Every operation gets fresh anonymous operands of the right shapes
    (zero-filled; platform runs disable functional evaluation), so this
    works at paper-scale dimensions without generating gigabytes of
    random data.
    """
    task = create_pim_task(device)
    task.add_scalar("alpha", 3)
    for index, op in enumerate(spec.ops):
        kind = op.kind
        a, b, out = f"a{index}", f"b{index}", f"c{index}"
        if kind is MatrixOpKind.MATMUL:
            m, k, n = op.dims
            task.add_matrix(a, shape=(m, k))
            task.add_matrix(b, shape=(k, n))
            task.add_matrix(out, shape=(m, n))
            task.add_operation(TaskOp.MATMUL, a, b, out)
        elif kind in (MatrixOpKind.MATVEC, MatrixOpKind.MATVEC_T):
            m, k = op.dims
            task.add_matrix(a, shape=(m, k))
            x_len = k if kind is MatrixOpKind.MATVEC else m
            y_len = m if kind is MatrixOpKind.MATVEC else k
            task.add_matrix(b, shape=(1, x_len))
            task.add_matrix(out, shape=(1, y_len))
            base = (
                TaskOp.MATVEC if kind is MatrixOpKind.MATVEC else TaskOp.MATVEC_T
            )
            if op.accumulate:
                base = (
                    TaskOp.MATVEC_ACC
                    if kind is MatrixOpKind.MATVEC
                    else TaskOp.MATVEC_T_ACC
                )
            task.add_operation(base, a, b, out)
        elif kind is MatrixOpKind.MAT_ADD:
            m, k = op.dims
            for name in (a, b, out):
                task.add_matrix(name, shape=(m, k))
            task.add_operation(TaskOp.MAT_ADD, a, b, out)
        elif kind is MatrixOpKind.MAT_SCALE:
            m, k = op.dims
            task.add_matrix(a, shape=(m, k))
            task.add_matrix(out, shape=(m, k))
            task.add_operation(TaskOp.MAT_SCALE, a, out, scalar="alpha")
        elif kind is MatrixOpKind.VEC_ADD:
            (k,) = op.dims
            for name in (a, b, out):
                task.add_matrix(name, shape=(1, k))
            task.add_operation(TaskOp.VEC_ADD, a, b, out)
        elif kind is MatrixOpKind.VEC_SCALE:
            (k,) = op.dims
            task.add_matrix(a, shape=(1, k))
            task.add_matrix(out, shape=(1, k))
            task.add_operation(TaskOp.VEC_SCALE, a, out, scalar="alpha")
        elif kind is MatrixOpKind.DOT:
            (k,) = op.dims
            task.add_matrix(a, shape=(1, k))
            task.add_matrix(b, shape=(1, k))
            task.add_matrix(out, shape=(1, 1))
            task.add_operation(TaskOp.DOT, a, b, out)
        else:  # pragma: no cover - exhaustive over MatrixOpKind
            raise NotImplementedError(str(kind))
    return task


class StreamPIMPlatform(Platform):
    """The paper's StPIM platform (full optimisations, RM bus)."""

    name = "StPIM"

    def __init__(self, config: Optional[StreamPIMConfig] = None) -> None:
        self.config = config or StreamPIMConfig()

    def run(self, workload: WorkloadSpec) -> RunStats:
        device = StreamPIMDevice(self.config)
        task = spec_to_task(workload, device)
        report = task.run(workload.name, functional=False)
        stats = report.stats
        stats.platform = self.name
        return stats
