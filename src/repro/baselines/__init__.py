"""Evaluation platforms (section V-A).

Seven platforms, as in the paper: CPU-RM, CPU-DRAM (traditional
computing), StPIM (this work), StPIM-e (StreamPIM with electrical
in-subarray buses), CORUSCANT (state-of-the-art process-in-RM), ELP2IM
(process-in-DRAM) and FELIX (process-in-NVM); plus the GPU platform used
for the Fig. 3b breakdown.
"""

from repro.baselines.common import Platform, PlatformRegistry
from repro.baselines.cpu import CpuPlatform, CpuRM, CpuDRAM, CpuModelConfig
from repro.baselines.gpu import GpuPlatform, GpuModelConfig
from repro.baselines.coruscant import CoruscantPlatform, CoruscantConfig
from repro.baselines.elp2im import Elp2imPlatform, Elp2imConfig
from repro.baselines.felix import FelixPlatform, FelixConfig
from repro.baselines.stpim import StreamPIMPlatform, spec_to_task
from repro.baselines.stpim_e import StpimEPlatform, StpimEConfig

__all__ = [
    "Platform",
    "PlatformRegistry",
    "CpuPlatform",
    "CpuRM",
    "CpuDRAM",
    "CpuModelConfig",
    "GpuPlatform",
    "GpuModelConfig",
    "CoruscantPlatform",
    "CoruscantConfig",
    "Elp2imPlatform",
    "Elp2imConfig",
    "FelixPlatform",
    "FelixConfig",
    "StreamPIMPlatform",
    "spec_to_task",
    "StpimEPlatform",
    "StpimEConfig",
    "default_platforms",
]


def default_platforms():
    """The Fig. 17/18 platform set, keyed by the paper's labels."""
    return PlatformRegistry.default()
