"""StPIM-e: StreamPIM with traditional electrical in-subarray buses.

The ablation platform of Figs. 17/18: the RM processor and all
optimisations stay, but data moves between mats and the processor over
an electrical bus, so every operand word undergoes electromagnetic
conversion — a read at the mat (magnetic -> electric) and a write into
the processor's input nanowires (electric -> magnetic), and the reverse
for results.  Conversion is word-granular (the processor consumes
operands serially) and cannot overlap with the shift-based compute
inside the subarray, so it serialises with the pipeline instead of
streaming through it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.baselines.common import Platform
from repro.core.device import StreamPIMConfig, StreamPIMDevice
from repro.core.subarray_engine import SubarrayEngine, VPCProfile
from repro.baselines.stpim import spec_to_task
from repro.isa.vpc import VPC, VPCOpcode
from repro.sim.stats import EnergyBreakdown, RunStats, TimeBreakdown
from repro.workloads.spec import WorkloadSpec


@dataclass(frozen=True)
class StpimEConfig:
    """Electrical-bus conversion model.

    Attributes:
        conversions_per_word: store-and-forward hops each operand word
            undergoes on its way through the electrical path (mat row
            buffer, bus interface buffer, processor input latch — each a
            sense+drive pair), setting the serialised latency.
        energy_conversions_per_word: true electromagnetic conversion
            events per word (one sense at the mat, one magnetic write at
            the processor input); only these consume access energy.
        energy_row_width_words: row width over which conversion access
            energy amortises (same accounting as everywhere else).
    """

    conversions_per_word: int = 6
    energy_conversions_per_word: int = 2
    energy_row_width_words: int = 64

    def __post_init__(self) -> None:
        if self.conversions_per_word <= 0:
            raise ValueError("conversions_per_word must be positive")
        if self.energy_row_width_words <= 0:
            raise ValueError("energy_row_width_words must be positive")


class ElectricalSubarrayEngine(SubarrayEngine):
    """Subarray engine with electrical (conversion-based) data movement."""

    def __init__(self, *args, econfig: Optional[StpimEConfig] = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.econfig = econfig or StpimEConfig()

    # ------------------------------------------------------------------
    def _conversion_ns(self, words: int) -> float:
        """Word-granular conversion latency.

        One conversion averages a read and a write (magnetic->electric is
        a sense, electric->magnetic is a write), so ``k`` conversions per
        word cost ``k * (read + write) / 2``.
        """
        t = self.timing
        per_conversion = (t.read_ns + t.write_ns) / 2.0
        return words * self.econfig.conversions_per_word * per_conversion

    def _conversion_energy(self, words: int) -> EnergyBreakdown:
        t = self.timing
        width = self.econfig.energy_row_width_words
        half = words * self.econfig.energy_conversions_per_word / 2.0
        energy = EnergyBreakdown()
        energy.add("read", half * t.read_pj / width)
        energy.add("write", half * t.write_pj / width)
        return energy

    # ------------------------------------------------------------------
    def profile(self, vpc: VPC) -> VPCProfile:
        if vpc.opcode is VPCOpcode.TRAN:
            words = vpc.size
            conv_ns = self._conversion_ns(words)
            time = TimeBreakdown()
            time.add("read", conv_ns * 0.3)
            time.add("write", conv_ns * 0.7)
            return VPCProfile(
                cycles=math.ceil(conv_ns / self.timing.cycle_ns),
                time=time,
                energy=self._conversion_energy(words),
            )
        n = vpc.size
        n_operands = len(vpc.operands)
        result_words = 1 if vpc.opcode is VPCOpcode.MUL else n
        conv_words = n * n_operands + result_words
        conv_ns = self._conversion_ns(conv_words)
        compute_cycles = self.processor.compute_cycles(vpc.opcode, n)
        compute_ns = compute_cycles * self.timing.cycle_ns
        total_ns = conv_ns + compute_ns  # conversion serialises

        time = TimeBreakdown()
        time.add("read", conv_ns * 0.3)
        time.add("write", conv_ns * 0.7)
        time.add("process", compute_ns)
        energy = self._conversion_energy(conv_words)
        energy.add(
            "compute", self.processor.compute_energy_pj(vpc.opcode, n)
        )
        return VPCProfile(
            cycles=math.ceil(total_ns / self.timing.cycle_ns),
            time=time,
            energy=energy,
        )

    def batch_profile(self, vpcs_alike: VPC, count: int) -> VPCProfile:
        """Back-to-back VPCs: conversion repeats per VPC, no streaming."""
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        single = self.profile(vpcs_alike)
        if count == 1:
            return single
        if vpcs_alike.opcode is VPCOpcode.TRAN:
            scale = float(count)
            return VPCProfile(
                cycles=single.cycles * count,
                time=single.time.scaled(scale),
                energy=single.energy.scaled(scale),
            )
        # Follow-on VPCs skip the pipeline fill of the processor but pay
        # the full conversion every time.
        n = vpcs_alike.size
        interval = self.processor.initiation_interval(vpcs_alike.opcode)
        steady_compute_ns = n * interval * self.timing.cycle_ns
        n_operands = len(vpcs_alike.operands)
        result_words = 1 if vpcs_alike.opcode is VPCOpcode.MUL else n
        conv_ns = self._conversion_ns(n * n_operands + result_words)
        steady_ns = conv_ns + steady_compute_ns
        total_ns = single.time.total_ns + (count - 1) * steady_ns
        time = TimeBreakdown(
            read_ns=single.time.read_ns + (count - 1) * conv_ns * 0.3,
            write_ns=single.time.write_ns + (count - 1) * conv_ns * 0.7,
            shift_ns=single.time.shift_ns,
            process_ns=single.time.process_ns
            + (count - 1) * steady_compute_ns,
            overlapped_ns=single.time.overlapped_ns,
        )
        return VPCProfile(
            cycles=math.ceil(total_ns / self.timing.cycle_ns),
            time=time,
            energy=single.energy.scaled(float(count)),
        )


class StpimEPlatform(Platform):
    """StreamPIM with electrical in-subarray buses (StPIM-e)."""

    name = "StPIM-e"

    def __init__(
        self,
        config: Optional[StreamPIMConfig] = None,
        econfig: Optional[StpimEConfig] = None,
    ) -> None:
        self.config = config or StreamPIMConfig()
        self.econfig = econfig or StpimEConfig()

    def run(self, workload: WorkloadSpec) -> RunStats:
        device = StreamPIMDevice(self.config)
        device.engine_model = ElectricalSubarrayEngine(
            processor=device.processor,
            bus=device.bus,
            timing=device.timing,
            econfig=self.econfig,
        )
        task = spec_to_task(workload, device)
        report = task.run(workload.name, functional=False)
        stats = report.stats
        stats.platform = self.name
        return stats
