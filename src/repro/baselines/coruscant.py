"""CORUSCANT baseline: state-of-the-art process-in-racetrack-memory.

CORUSCANT (MICRO'22) keeps CMOS arithmetic units near the RM arrays and
accelerates operand access with *Transverse Read* (one sensing operation
over several consecutive domains) and *Transverse Write* (concurrent
shift+write).  Its fundamental cost, which StreamPIM removes, is the
electromagnetic conversion on every operand fetch and intermediate-result
store: each scalar operation reads its operands out of the magnetic
domain, computes in CMOS, and writes results back.

Per-scalar-operation structure (8-bit datapath, Table III primitives):

* MUL — 2 operand transverse reads, 6 alignment shifts, 5 writes of
  partial/intermediate results, and the CMOS multiply itself.  With the
  default constants the execution-time split is ~50 % write / ~29 %
  compute / ~21 % read+shift, matching Fig. 4a.
* ADD — 1 read, 3 shifts, 2 writes plus the CMOS add; same split shape.

Latency is word-granular (the TR mechanism aligns and senses one operand
word at a time), while access *energy* amortises over the row width the
peripheral drives (see DESIGN.md's access-cost principle), which is what
lets Fig. 18's CORUSCANT-vs-StPIM energy ratio (~2.8x) coexist with
Fig. 4's write-dominated energy split.

The paper idealises CORUSCANT by ignoring inter-subarray/bank movement;
so does this model: scalar operations spread perfectly over the same 512
PIM subarrays StreamPIM uses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.common import Platform
from repro.rm.timing import RMTimingConfig
from repro.sim.stats import EnergyBreakdown, RunStats, TimeBreakdown
from repro.workloads.spec import WorkloadSpec


@dataclass(frozen=True)
class CoruscantConfig:
    """Structural constants of the CORUSCANT per-operation model.

    Attributes:
        reads_per_mul / shifts_per_mul / writes_per_mul: RM operations
            per 8-bit scalar multiply.
        mul_compute_ns / mul_compute_pj: CMOS multiplier cost.
        reads_per_add / shifts_per_add / writes_per_add: per scalar add.
        add_compute_ns / add_compute_pj: CMOS adder cost.
        parallel_units: concurrently operating PIM subarrays.
        energy_row_width_words: words over which one access's energy
            amortises (the row the periphery drives).
    """

    reads_per_mul: int = 2
    shifts_per_mul: int = 6
    writes_per_mul: int = 5
    mul_compute_ns: float = 33.0
    mul_compute_pj: float = 0.18

    reads_per_add: int = 1
    shifts_per_add: int = 2
    writes_per_add: int = 2
    add_compute_ns: float = 13.0
    add_compute_pj: float = 0.03

    parallel_units: int = 512
    energy_row_width_words: int = 128

    def __post_init__(self) -> None:
        if self.parallel_units <= 0:
            raise ValueError("parallel_units must be positive")
        if self.energy_row_width_words <= 0:
            raise ValueError("energy_row_width_words must be positive")


class CoruscantPlatform(Platform):
    """Per-operation analytic model of CORUSCANT."""

    name = "CORUSCANT"

    def __init__(
        self,
        config: CoruscantConfig | None = None,
        timing: RMTimingConfig | None = None,
    ) -> None:
        self.config = config or CoruscantConfig()
        self.timing = timing or RMTimingConfig()

    # ------------------------------------------------------------------
    # Per-operation costs
    # ------------------------------------------------------------------
    def op_time_ns(self, kind: str) -> TimeBreakdown:
        """Latency breakdown of one scalar operation ("mul"/"add")."""
        cfg, t = self.config, self.timing
        time = TimeBreakdown()
        if kind == "mul":
            time.add("read", cfg.reads_per_mul * t.read_ns)
            time.add("shift", cfg.shifts_per_mul * t.shift_ns)
            time.add("write", cfg.writes_per_mul * t.write_ns)
            time.add("process", cfg.mul_compute_ns)
        elif kind == "add":
            time.add("read", cfg.reads_per_add * t.read_ns)
            time.add("shift", cfg.shifts_per_add * t.shift_ns)
            time.add("write", cfg.writes_per_add * t.write_ns)
            time.add("process", cfg.add_compute_ns)
        else:
            raise ValueError(f"kind must be 'mul' or 'add', got {kind!r}")
        return time

    def op_energy_pj(self, kind: str) -> EnergyBreakdown:
        """Energy breakdown of one scalar operation."""
        cfg, t = self.config, self.timing
        width = cfg.energy_row_width_words
        energy = EnergyBreakdown()
        if kind == "mul":
            energy.add("read", cfg.reads_per_mul * t.read_pj / width)
            energy.add("shift", cfg.shifts_per_mul * t.shift_pj / width)
            energy.add("write", cfg.writes_per_mul * t.write_pj / width)
            energy.add("compute", cfg.mul_compute_pj)
        elif kind == "add":
            energy.add("read", cfg.reads_per_add * t.read_pj / width)
            energy.add("shift", cfg.shifts_per_add * t.shift_pj / width)
            energy.add("write", cfg.writes_per_add * t.write_pj / width)
            energy.add("compute", cfg.add_compute_pj)
        else:
            raise ValueError(f"kind must be 'mul' or 'add', got {kind!r}")
        return energy

    # ------------------------------------------------------------------
    def run(self, workload: WorkloadSpec) -> RunStats:
        ops = workload.scalar_ops()
        mul_time = self.op_time_ns("mul")
        add_time = self.op_time_ns("add")
        parallel = self.config.parallel_units

        time = TimeBreakdown()
        time.merge(mul_time.scaled(ops.muls / parallel))
        time.merge(add_time.scaled(ops.adds / parallel))

        energy = EnergyBreakdown()
        energy.merge(self.op_energy_pj("mul").scaled(float(ops.muls)))
        energy.merge(self.op_energy_pj("add").scaled(float(ops.adds)))

        stats = RunStats(
            platform=self.name,
            workload=workload.name,
            time_ns=time.total_ns,
            time_breakdown=time,
            energy=energy,
        )
        stats.bump("scalar_muls", ops.muls)
        stats.bump("scalar_adds", ops.adds)
        return stats
