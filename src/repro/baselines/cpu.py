"""Traditional computing platforms: CPU-RM and CPU-DRAM.

The paper obtains these baselines from gem5 full-system simulation of a
16-core x86 CPU (Table III) with either racetrack or DDR4-2400 main
memory.  This reproduction replaces gem5 with an additive analytic model

    time = compute + memory
    compute = flops / effective_throughput
    memory  = traffic_bytes / effective_bandwidth

whose observables match what the paper actually uses the gem5 runs for:

* Fig. 3a — on the small (matrix-vector) kernels, memory stalls are
  ~47.6 % of CPU-RM execution time;
* Fig. 17 — CPU-DRAM is ~1.5x faster than CPU-RM on average (shorter
  access latency / higher bandwidth);
* the absolute scale of a naive, cache-unfriendly PolyBench run (the
  effective throughput is far below peak because PolyBench kernels are
  unblocked triple loops).

Traffic: streaming kernels (matrix-vector class) read each operand once;
naive matrix-matrix kernels miss heavily on the column-strided operand,
modelled as ``mm_bytes_per_iter`` bytes per inner-loop iteration.

Energy: the model counts functional-unit energy per flop plus memory
energy per byte moved, the same accounting scope the PIM platforms use
(no static/control power on either side) — the paper's Fig. 18 ratios
only make sense under this scope; see DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.common import Platform
from repro.sim.stats import EnergyBreakdown, RunStats, TimeBreakdown
from repro.workloads.spec import MatrixOpKind, WorkloadSpec


@dataclass(frozen=True)
class CpuModelConfig:
    """Constants of the analytic CPU model.

    Attributes:
        effective_gflops: sustained scalar throughput of the PolyBench
            loops (naive code; far below the 16-core peak).
        memory_bandwidth_gbps: sustained main-memory bandwidth.
        element_bytes: bytes per matrix element on the CPU (PolyBench
            uses doubles; the effective figure folds in prefetch).
        mm_bytes_per_iter: memory traffic per inner-loop iteration of a
            naive matrix-matrix kernel (column-stride misses).
        flop_energy_pj: functional-unit energy per scalar operation.
        mem_energy_pj_per_byte: memory energy per byte moved.
    """

    name: str = "CPU"
    effective_gflops: float = 0.78
    memory_bandwidth_gbps: float = 1.7
    element_bytes: float = 4.0
    mm_bytes_per_iter: float = 3.6
    flop_energy_pj: float = 6.0
    mem_energy_pj_per_byte: float = 2.0

    def __post_init__(self) -> None:
        for field_name in (
            "effective_gflops",
            "memory_bandwidth_gbps",
            "element_bytes",
            "mm_bytes_per_iter",
            "flop_energy_pj",
            "mem_energy_pj_per_byte",
        ):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")


#: CPU with racetrack main memory: RM's longer effective access path
#: (shift-before-access) lowers both sustained bandwidth and raises
#: per-byte energy slightly relative to DRAM's burst interface; DRAM
#: spends extra energy on refresh/precharge.
CPU_RM_CONFIG = CpuModelConfig(
    name="CPU-RM",
    memory_bandwidth_gbps=1.7,
    mem_energy_pj_per_byte=1.9,
)
CPU_DRAM_CONFIG = CpuModelConfig(
    name="CPU-DRAM",
    memory_bandwidth_gbps=5.15,
    mem_energy_pj_per_byte=2.0,
)


class CpuPlatform(Platform):
    """Analytic CPU platform (base for CPU-RM / CPU-DRAM)."""

    def __init__(self, config: CpuModelConfig) -> None:
        self.config = config
        self.name = config.name

    # ------------------------------------------------------------------
    def traffic_bytes(self, workload: WorkloadSpec) -> float:
        """Main-memory traffic of one workload under the cache model."""
        cfg = self.config
        total = 0.0
        for op in workload.ops:
            if op.kind is MatrixOpKind.MATMUL:
                m, k, n = op.dims
                total += m * k * n * cfg.mm_bytes_per_iter
            else:
                total += (
                    (op.operand_words + op.result_words) * cfg.element_bytes
                )
        return total

    def compute_ns(self, workload: WorkloadSpec) -> float:
        return workload.scalar_ops().flops / self.config.effective_gflops

    def memory_ns(self, workload: WorkloadSpec) -> float:
        return self.traffic_bytes(workload) / self.config.memory_bandwidth_gbps

    # ------------------------------------------------------------------
    def run(self, workload: WorkloadSpec) -> RunStats:
        compute_ns = self.compute_ns(workload)
        memory_ns = self.memory_ns(workload)
        time = TimeBreakdown()
        time.add("process", compute_ns)
        # The CPU's memory stalls are read-dominated (loads on the
        # critical path); split nominally 80/20 read/write.
        time.add("read", memory_ns * 0.8)
        time.add("write", memory_ns * 0.2)

        ops = workload.scalar_ops()
        energy = EnergyBreakdown()
        energy.add("compute", ops.flops * self.config.flop_energy_pj)
        traffic = self.traffic_bytes(workload)
        energy.add(
            "read", traffic * 0.8 * self.config.mem_energy_pj_per_byte
        )
        energy.add(
            "write", traffic * 0.2 * self.config.mem_energy_pj_per_byte
        )
        stats = RunStats(
            platform=self.name,
            workload=workload.name,
            time_ns=compute_ns + memory_ns,
            time_breakdown=time,
            energy=energy,
        )
        stats.bump("flops", ops.flops)
        return stats


class CpuRM(CpuPlatform):
    """The paper's CPU-RM baseline (speed-up reference of Fig. 17)."""

    def __init__(self, config: CpuModelConfig = CPU_RM_CONFIG) -> None:
        super().__init__(config)


class CpuDRAM(CpuPlatform):
    """The paper's CPU-DRAM platform (energy reference of Fig. 18)."""

    def __init__(self, config: CpuModelConfig = CPU_DRAM_CONFIG) -> None:
        super().__init__(config)
