"""Shared platform interface for the evaluation."""

from __future__ import annotations

import abc
from typing import Dict, List

from repro.sim.stats import RunStats
from repro.workloads.spec import WorkloadSpec


class Platform(abc.ABC):
    """One evaluated computing platform.

    Subclasses implement :meth:`run`, returning a :class:`RunStats` with
    the platform's label, end-to-end time, energy, and breakdowns for a
    given workload spec.
    """

    #: Label used in the paper's figures ("CPU-RM", "StPIM", ...).
    name: str = "platform"

    @abc.abstractmethod
    def run(self, workload: WorkloadSpec) -> RunStats:
        """Execute (analytically or by simulation) one workload."""

    def run_many(self, workloads: List[WorkloadSpec]) -> Dict[str, RunStats]:
        """Run several workloads; returns {workload name: stats}."""
        return {w.name: self.run(w) for w in workloads}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r})"


class PlatformRegistry:
    """Builds the standard platform sets used by the benchmarks."""

    @staticmethod
    def default() -> Dict[str, Platform]:
        """The seven platforms of Figs. 17/18, keyed by paper label."""
        from repro.baselines.cpu import CpuRM, CpuDRAM
        from repro.baselines.coruscant import CoruscantPlatform
        from repro.baselines.elp2im import Elp2imPlatform
        from repro.baselines.felix import FelixPlatform
        from repro.baselines.stpim import StreamPIMPlatform
        from repro.baselines.stpim_e import StpimEPlatform

        platforms = [
            CpuRM(),
            CpuDRAM(),
            Elp2imPlatform(),
            FelixPlatform(),
            CoruscantPlatform(),
            StpimEPlatform(),
            StreamPIMPlatform(),
        ]
        return {p.name: p for p in platforms}
