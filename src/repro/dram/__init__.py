"""DDR4 DRAM substrate (the CPU-DRAM platform's memory system).

The paper's CPU-DRAM baseline uses "DDR4 DRAM with 2400MHz IO speed"
inside gem5.  This package provides that substrate: JEDEC-style timing
parameters, per-bank row-buffer state machines, and a simple in-order
memory controller — enough to derive the effective bandwidths the
analytic CPU model uses (streaming vs row-conflict access patterns) from
first principles instead of asserting them.
"""

from repro.dram.timing import DDR4TimingConfig, DDR4_2400
from repro.dram.bank import DRAMBank, RowBufferOutcome
from repro.dram.controller import (
    DRAMController,
    MemoryRequest,
    AccessPattern,
    sequential_pattern,
    strided_pattern,
)

__all__ = [
    "DDR4TimingConfig",
    "DDR4_2400",
    "DRAMBank",
    "RowBufferOutcome",
    "DRAMController",
    "MemoryRequest",
    "AccessPattern",
    "sequential_pattern",
    "strided_pattern",
]
