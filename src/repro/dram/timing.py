"""JEDEC-style DDR4 timing parameters.

Values follow DDR4-2400 (CL17 grade): the IO bus runs at 1200 MHz
double-data-rate, a burst of length 8 moves 64 bytes over an 8-byte
channel in four bus clocks, and the core timing parameters are the usual
tRCD / tCAS / tRP / tRAS set.  All durations in nanoseconds.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DDR4TimingConfig:
    """DDR4 device timing.

    Attributes:
        io_mhz: IO bus frequency (double data rate on top of this).
        bus_bytes: channel width in bytes.
        burst_length: beats per access burst.
        trcd_ns: activate-to-read delay.
        tcas_ns: read command to first data.
        trp_ns: precharge time.
        tras_ns: minimum row-open time (activate to precharge).
        banks: banks per channel (bank groups flattened).
    """

    io_mhz: float = 1200.0
    bus_bytes: int = 8
    burst_length: int = 8
    trcd_ns: float = 14.16
    tcas_ns: float = 14.16
    trp_ns: float = 14.16
    tras_ns: float = 32.0
    banks: int = 16
    row_bytes: int = 8192

    def __post_init__(self) -> None:
        for name in (
            "io_mhz",
            "bus_bytes",
            "burst_length",
            "trcd_ns",
            "tcas_ns",
            "trp_ns",
            "tras_ns",
            "banks",
            "row_bytes",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    @property
    def burst_bytes(self) -> int:
        """Bytes one burst moves (the cache-line granule)."""
        return self.bus_bytes * self.burst_length

    @property
    def burst_ns(self) -> float:
        """Bus occupancy of one burst (DDR: two beats per clock)."""
        return (self.burst_length / 2) / (self.io_mhz / 1e3)

    @property
    def peak_bandwidth_gbps(self) -> float:
        """Peak channel bandwidth in GB/s (= bytes/ns)."""
        return self.burst_bytes / self.burst_ns

    @property
    def row_hit_ns(self) -> float:
        """Latency of an access to an already-open row."""
        return self.tcas_ns + self.burst_ns

    @property
    def row_miss_ns(self) -> float:
        """Latency of an access to a closed bank (activate first)."""
        return self.trcd_ns + self.row_hit_ns

    @property
    def row_conflict_ns(self) -> float:
        """Latency when another row is open (precharge + activate)."""
        return self.trp_ns + self.row_miss_ns


#: The paper's configuration: "8 GiB; 2400MHz IO bus speed".
DDR4_2400 = DDR4TimingConfig()
