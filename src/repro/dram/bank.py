"""DRAM bank state machine: row buffer and timing windows."""

from __future__ import annotations

import enum
from typing import Optional

from repro.dram.timing import DDR4TimingConfig


class RowBufferOutcome(enum.Enum):
    """Classification of one access against the bank's open row."""

    HIT = "hit"
    MISS = "miss"  # bank idle (precharged)
    CONFLICT = "conflict"  # another row open


class DRAMBank:
    """One DRAM bank: open-row tracking plus a busy-until ledger."""

    def __init__(self, timing: Optional[DDR4TimingConfig] = None) -> None:
        self.timing = timing or DDR4TimingConfig()
        self.open_row: Optional[int] = None
        self.busy_until_ns = 0.0
        self.row_opened_at_ns = 0.0
        self.hits = 0
        self.misses = 0
        self.conflicts = 0

    def classify(self, row: int) -> RowBufferOutcome:
        if self.open_row is None:
            return RowBufferOutcome.MISS
        if self.open_row == row:
            return RowBufferOutcome.HIT
        return RowBufferOutcome.CONFLICT

    def access(self, row: int, now_ns: float) -> float:
        """Serve one burst to ``row``; returns the completion time.

        Applies the hit/miss/conflict latency, honours tRAS before a
        conflicting row may be closed, and leaves the row open
        (open-page policy, as in gem5's default controller).
        """
        if row < 0:
            raise ValueError(f"row must be non-negative, got {row}")
        t = self.timing
        start = max(now_ns, self.busy_until_ns)
        outcome = self.classify(row)
        if outcome is RowBufferOutcome.HIT:
            self.hits += 1
            finish = start + t.row_hit_ns
        elif outcome is RowBufferOutcome.MISS:
            self.misses += 1
            finish = start + t.row_miss_ns
            self.open_row = row
            self.row_opened_at_ns = start
        else:
            self.conflicts += 1
            # The open row must have been open for at least tRAS before
            # it can be precharged.
            earliest_precharge = self.row_opened_at_ns + t.tras_ns
            start = max(start, earliest_precharge)
            finish = start + t.row_conflict_ns
            self.open_row = row
            self.row_opened_at_ns = start + t.trp_ns + t.trcd_ns
        self.busy_until_ns = finish
        return finish

    @property
    def accesses(self) -> int:
        return self.hits + self.misses + self.conflicts
