"""Simple in-order DRAM controller serving burst requests.

Requests address the channel at burst (64 B) granularity.  Addresses
decompose bank-interleaved (low-order bank bits), the common mapping
that spreads sequential streams across banks; the shared data bus
serialises burst transfers while bank activates overlap — exactly the
structure that makes streaming reach near-peak bandwidth while
row-conflict-heavy strides collapse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.dram.bank import DRAMBank
from repro.dram.timing import DDR4TimingConfig


@dataclass(frozen=True)
class MemoryRequest:
    """One burst-granular access."""

    address: int
    is_write: bool = False

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError("address must be non-negative")


@dataclass(frozen=True)
class AccessPattern:
    """A named request stream plus its byte volume."""

    name: str
    requests: Sequence[MemoryRequest]

    @property
    def bytes(self) -> int:
        return len(self.requests) * DDR4TimingConfig().burst_bytes


class DRAMController:
    """In-order, open-page controller over one channel."""

    def __init__(self, timing: Optional[DDR4TimingConfig] = None) -> None:
        self.timing = timing or DDR4TimingConfig()
        self.banks = [DRAMBank(self.timing) for _ in range(self.timing.banks)]
        self.bus_busy_until_ns = 0.0
        self.served = 0

    # ------------------------------------------------------------------
    def decompose(self, address: int) -> tuple:
        """(bank, row) of a burst address: bank bits below row bits."""
        burst = address // self.timing.burst_bytes
        bank = burst % self.timing.banks
        row = (burst // self.timing.banks) // (
            self.timing.row_bytes // self.timing.burst_bytes
        )
        return bank, row

    def serve(self, requests: Iterable[MemoryRequest]) -> float:
        """Serve requests in order; returns the completion time (ns).

        Bank work (activate/precharge) overlaps across banks; the data
        bus is the serialising resource, occupied ``burst_ns`` per
        request.
        """
        now = 0.0
        finish = 0.0
        for request in requests:
            bank_index, row = self.decompose(request.address)
            bank = self.banks[bank_index]
            data_ready = bank.access(row, now)
            # The burst then needs the shared bus.
            bus_start = max(data_ready - self.timing.burst_ns,
                            self.bus_busy_until_ns)
            finish = bus_start + self.timing.burst_ns
            self.bus_busy_until_ns = finish
            self.served += 1
            now = bus_start - self.timing.tcas_ns
            if now < 0:
                now = 0.0
        return finish

    def achieved_bandwidth_gbps(self, pattern: AccessPattern) -> float:
        """Bytes per nanosecond the controller sustains on a pattern."""
        if not pattern.requests:
            raise ValueError("pattern has no requests")
        duration = self.serve(pattern.requests)
        if duration <= 0:
            raise RuntimeError("pattern completed in zero time")
        return pattern.bytes / duration

    # ------------------------------------------------------------------
    @property
    def row_hit_rate(self) -> float:
        hits = sum(bank.hits for bank in self.banks)
        total = sum(bank.accesses for bank in self.banks)
        return hits / total if total else 0.0


def sequential_pattern(total_bytes: int, name: str = "stream") -> AccessPattern:
    """A dense sequential read stream (best case for DRAM)."""
    timing = DDR4TimingConfig()
    count = max(1, total_bytes // timing.burst_bytes)
    return AccessPattern(
        name,
        [MemoryRequest(i * timing.burst_bytes) for i in range(count)],
    )


def strided_pattern(
    total_bytes: int, stride_bytes: int, name: str = "strided"
) -> AccessPattern:
    """A strided stream (column walks of a naive matrix kernel).

    Large strides land every access in a new row of the same small bank
    set, turning the stream into back-to-back row conflicts.
    """
    if stride_bytes <= 0:
        raise ValueError("stride must be positive")
    timing = DDR4TimingConfig()
    count = max(1, total_bytes // timing.burst_bytes)
    return AccessPattern(
        name,
        [MemoryRequest(i * stride_bytes) for i in range(count)],
    )
