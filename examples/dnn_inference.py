"""End-to-end DNN inference offload (the Fig. 23 experiment).

Offloads the matrix operations of MLP and BERT inference to StreamPIM
while the nonlinear layers stay on the CPU, and prints the end-to-end
speed-ups over CPU-DRAM for the PIM platforms.

Run:  python examples/dnn_inference.py
"""

from repro.analysis.endtoend import end_to_end_speedup
from repro.analysis.report import format_table
from repro.baselines import default_platforms
from repro.workloads import DNN_WORKLOADS

PIM_PLATFORMS = ("StPIM", "StPIM-e", "CORUSCANT", "FELIX", "ELP2IM")


def main() -> None:
    platforms = default_platforms()
    cpu = platforms["CPU-DRAM"]
    for name, spec in DNN_WORKLOADS.items():
        print(f"== {name}: {spec.description}")
        print(
            f"   nonlinear (CPU-resident) share of end-to-end time: "
            f"{spec.nonlinear_flop_fraction:.1%}"
        )
        cpu_stats = cpu.run(spec)
        rows = []
        for platform_name in PIM_PLATFORMS:
            result = end_to_end_speedup(
                platforms[platform_name], cpu, spec, cpu_stats=cpu_stats
            )
            rows.append(
                [
                    platform_name,
                    result.matrix_ns / 1e6,
                    result.nonlinear_ns / 1e6,
                    result.speedup_vs_cpu,
                ]
            )
        print(
            format_table(
                ["platform", "matrix (ms)", "nonlinear (ms)", "e2e speedup"],
                rows,
            )
        )
        print()


if __name__ == "__main__":
    main()
