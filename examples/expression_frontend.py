"""Compile whole formulas onto StreamPIM (the section-VI compiler layer).

Writes the gemm and atax computations as plain Python expressions; the
frontend extracts the computation graph, allocates temporaries, and
lowers everything onto the Fig. 16 task interface — after which the
usual distribute/unblock optimisations apply.

Run:  python examples/expression_frontend.py
"""

import numpy as np

from repro.frontend import Matrix, Program, Scalar, Vector, compile_program
from repro.workloads import random_matrix


def main() -> None:
    rng = np.random.default_rng(11)
    a = random_matrix(48, 40, rng)
    b = random_matrix(40, 32, rng)
    c = random_matrix(48, 32, rng)
    x = random_matrix(1, 40, rng)[0]

    A, B, C = Matrix("A", a), Matrix("B", b), Matrix("C", c)
    alpha, beta = Scalar("alpha", 3), Scalar("beta", 2)

    program = Program()
    program.assign("G", alpha * (A @ B) + beta * C)  # the gemm formula
    program.assign("y", A @ Vector("x", x))  # a matrix-vector product

    task = compile_program(program)
    print("lowered operations:")
    for op in task._operations:
        print(f"  {op.output} <- {op.op.value}{op.inputs}")

    report = task.run("expression-demo")
    assert np.array_equal(report.results["G"], 3 * (a @ b) + 2 * c)
    assert np.array_equal(report.results["y"][0], a @ x)
    print()
    print("results verified against numpy")
    print(f"simulated time   : {report.time_ns / 1e3:.1f} us")
    print(f"simulated energy : {report.energy_pj / 1e3:.1f} nJ")
    print(
        f"VPCs             : {report.counts.pim_vpcs} compute, "
        f"{report.counts.move_vpcs} move"
    )


if __name__ == "__main__":
    main()
