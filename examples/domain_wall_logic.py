"""Tour of the domain-wall logic substrate (sections III-A and III-C).

Demonstrates the bit-level building blocks StreamPIM's processor is made
of: DMI gates, the full adder, the fan-out duplicator, the shift-based
multiplier and the circle adder — and shows the per-gate energy scaling
across fabrication processes (section V-F).

Run:  python examples/domain_wall_logic.py
"""

from repro.dwlogic import (
    CircleAdder,
    Duplicator,
    GateCounter,
    ShiftMultiplier,
    dw_nand,
    dw_nor,
    dw_not,
    int_to_bits,
)
from repro.dwlogic.adder import full_adder
from repro.rm.timing import energy_per_gate_pj


def main() -> None:
    print("DMI gates (Fig. 5/6): a domain inverts as it shifts across a")
    print("domain-wall inverter; two inputs + one bias give NAND or NOR.")
    print(f"  NOT(1) = {dw_not(1)}")
    print(f"  NAND(1, 1) = {dw_nand(1, 1)}   NOR(0, 0) = {dw_nor(0, 0)}")
    print()

    counter = GateCounter()
    s, carry = full_adder(1, 1, 1, counter)
    print(f"full adder (Fig. 6): 1+1+1 -> sum={s} carry={carry}, built")
    print(f"from {counter.total} primitive domain-wall gates")
    print()

    dup = Duplicator()
    dup.load(int_to_bits(0b1011, 4))
    replicas = dup.duplicate_n(4)
    print("duplicator (Fig. 9): fan-out + diode replicate an operand;")
    print(
        f"4 duplications of 0b1011 took "
        f"{dup.step_count} shift steps -> {len(replicas)} replicas"
    )
    print()

    counter = GateCounter()
    multiplier = ShiftMultiplier(8)
    product = multiplier.multiply(201, 57, counter)
    print(
        f"shift multiplier (Fig. 8): 201 * 57 = {product} "
        f"({counter.total} gate evaluations)"
    )
    print()

    circle = CircleAdder(32)
    products = [3 * 7, 11 * 13, 200 * 250]
    total = circle.dot_product_tail(products)
    print(
        f"circle adder (Fig. 10): accumulated {products} -> {total} "
        f"in {circle.accumulate_count} four-step loops"
    )
    print()

    print("per-gate energy vs fabrication process (section V-F):")
    for nm in (1000, 250, 65, 32):
        print(f"  {nm:5d} nm : {energy_per_gate_pj(nm):.6f} pJ/gate")


if __name__ == "__main__":
    main()
