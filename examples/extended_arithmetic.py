"""The section-VI extensions: divider, square root, floating point.

The paper leaves these processors as future work; this example runs the
repository's implementations — all built from the same domain-wall
primitives as the core datapath — and shows the structural step counts a
pipelined integration would use.

Run:  python examples/extended_arithmetic.py
"""

import math

from repro.dwlogic import (
    DWFloat,
    DWFloatUnit,
    GateCounter,
    RestoringDivider,
    SquareRootExtractor,
)


def main() -> None:
    counter = GateCounter()
    divider = RestoringDivider(8)
    q, r = divider.divide(250, 7, counter)
    print(f"restoring divider: 250 / 7 = {q} remainder {r}")
    print(
        f"  {divider.steps} subtract-and-restore steps, "
        f"{counter.total} gate evaluations"
    )
    print()

    counter = GateCounter()
    extractor = SquareRootExtractor(16)
    value = 3025
    root = extractor.isqrt(value, counter)
    print(f"square-root extractor: isqrt({value}) = {root}")
    assert root == math.isqrt(value)
    print(
        f"  {extractor.steps} digit iterations, "
        f"{counter.total} gate evaluations"
    )
    print()

    unit = DWFloatUnit()
    a = DWFloat.from_float(3.25)
    b = DWFloat.from_float(-1.5)
    product = unit.multiply(a, b)
    total = unit.add(a, b)
    print("bfloat16-style floating point on the integer datapath:")
    print(f"  3.25 * -1.5 = {product.to_float()}")
    print(f"  3.25 + -1.5 = {total.to_float()}")
    print(
        f"  format: 1 sign + {a.fmt.exponent_bits} exponent + "
        f"{a.fmt.mantissa_bits} mantissa bits, bias {a.fmt.bias}"
    )


if __name__ == "__main__":
    main()
