"""Compare all evaluation platforms on a PolyBench kernel (Fig. 17 row).

Runs one kernel (default: gemm at paper dimensions) on every platform of
the paper's evaluation and prints the speed-up over CPU-RM and the
energy relative to StPIM — one row of Figs. 17 and 18.

Run:  python examples/polybench_comparison.py [kernel] [scale]
"""

import sys

from repro.analysis.report import format_table
from repro.baselines import default_platforms
from repro.workloads import polybench_workload


def main(kernel: str = "gemm", scale: float = 1.0) -> None:
    spec = polybench_workload(kernel, scale=scale)
    print(f"kernel: {kernel}  ({spec.description}), scale {scale}")
    ops = spec.scalar_ops()
    print(
        f"scalar ops: {ops.muls:,} muls + {ops.adds:,} adds; "
        f"VPCs: {spec.vpc_counts()[0]:,} PIM / {spec.vpc_counts()[1]:,} move"
    )
    print()

    platforms = default_platforms()
    stats = {name: p.run(spec) for name, p in platforms.items()}
    cpu_rm = stats["CPU-RM"]
    stpim = stats["StPIM"]

    rows = []
    for name, s in stats.items():
        rows.append(
            [
                name,
                s.time_ns / 1e6,
                cpu_rm.time_ns / s.time_ns,
                s.energy.total_pj / 1e9,
                s.energy.total_pj / stpim.energy.total_pj,
            ]
        )
    print(
        format_table(
            ["platform", "time (ms)", "speedup", "energy (mJ)", "vs StPIM"],
            rows,
        )
    )


if __name__ == "__main__":
    kernel = sys.argv[1] if len(sys.argv) > 1 else "gemm"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 1.0
    main(kernel, scale)
