"""Visualise the unblock optimisation as a schedule timeline.

Builds the round plan of a matrix multiplication, reconstructs when
preparation and compute actually run under the blocked (`distribute`)
and overlapped (`unblock`) schedules, and renders both as Gantt charts —
the mechanism behind Fig. 22's ~200x.

Run:  python examples/unblock_timeline.py
"""

from repro.analysis.timeline import render_gantt, schedule_timeline
from repro.baselines.stpim import spec_to_task
from repro.core.device import StreamPIMConfig, StreamPIMDevice
from repro.core.scheduler import Scheduler, SchedulerPolicy
from repro.workloads import polybench_workload


def main() -> None:
    spec = polybench_workload("gemm", scale=0.01)
    device = StreamPIMDevice(StreamPIMConfig())
    task = spec_to_task(spec, device)
    placer = task._build_placer()
    handles = task._place_all(placer)
    rounds = []
    for operation in task._operations:
        op_rounds, _ = task._lower(operation, handles, placer)
        rounds.extend(op_rounds)
    rounds = rounds[:12]  # a readable window

    print(f"first {len(rounds)} rounds of {spec.name} (scale 0.01)")
    print()
    for policy in (SchedulerPolicy.DISTRIBUTE, SchedulerPolicy.UNBLOCK):
        scheduler = Scheduler(policy, prep_model=device.scheduler.prep_model)
        timeline = schedule_timeline(scheduler, rounds)
        end = max(interval.end_ns for interval in timeline)
        print(f"-- {policy.value}: {end / 1e3:.1f} us")
        print(render_gantt(timeline))
        print()
    print(
        "under unblock the preparation stream (▒) hides behind compute "
        "(█);\nblocked scheduling serialises them, which is the gap "
        "Fig. 22 measures."
    )


if __name__ == "__main__":
    main()
