"""Quickstart: run a matrix multiplication on StreamPIM.

Builds a PIM task with the Fig. 16 programming interface, executes it on
a simulated StreamPIM device, verifies the numerical result against
numpy, and prints the timing/energy report.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import TaskOp, create_pim_task
from repro.workloads import random_matrix


def main() -> None:
    rng = np.random.default_rng(1)
    a = random_matrix(64, 48, rng)
    b = random_matrix(48, 32, rng)

    # Step 1 (Fig. 16): create a PIM task on a default device
    # (8 GiB racetrack memory, 512 PIM subarrays, unblock scheduling).
    task = create_pim_task()

    # Step 2: register operands and operations.
    task.add_matrix("A", a)
    task.add_matrix("B", b)
    task.add_matrix("C", shape=(64, 32))
    task.add_operation(TaskOp.MATMUL, "A", "B", "C")

    # Step 3: run.
    report = task.run("quickstart")

    assert np.array_equal(report.results["C"], a @ b), "wrong result!"
    print("C == A @ B verified against numpy")
    print(f"simulated execution time : {report.time_ns / 1e3:.2f} us")
    print(f"simulated energy         : {report.energy_pj / 1e3:.2f} nJ")
    print(
        f"VPCs issued              : {report.counts.pim_vpcs} compute, "
        f"{report.counts.move_vpcs} data-movement"
    )
    fractions = report.stats.time_breakdown.fractions()
    print("time breakdown           :", end=" ")
    print(", ".join(f"{k} {v:.1%}" for k, v in fractions.items() if v > 0))


if __name__ == "__main__":
    main()
