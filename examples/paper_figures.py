"""Render the paper's headline figures as terminal bar charts.

Reproduces Figs. 17, 18, 21 and 22 at paper dimensions and draws them
with the dependency-free ASCII chart helpers.

Run:  python examples/paper_figures.py        (takes ~15 s)
"""

from repro.analysis.figures import bar_chart, sparkline
from repro.baselines import default_platforms
from repro.baselines.stpim import StreamPIMPlatform
from repro.core.device import StreamPIMConfig
from repro.core.scheduler import SchedulerPolicy
from repro.rm.address import DeviceGeometry
from repro.workloads import POLYBENCH

NAMES = list(POLYBENCH)


def average(values):
    values = list(values)
    return sum(values) / len(values)


def main() -> None:
    platforms = default_platforms()
    results = {
        pname: {w: platform.run(POLYBENCH[w]) for w in NAMES}
        for pname, platform in platforms.items()
    }

    speedups = {
        pname: average(
            results["CPU-RM"][w].time_ns / results[pname][w].time_ns
            for w in NAMES
        )
        for pname in platforms
    }
    print(
        bar_chart(
            speedups,
            title="Fig. 17 — average speedup over CPU-RM",
            unit="x",
            reference="CPU-RM",
        )
    )
    print()

    energies = {
        pname: average(
            results[pname][w].energy.total_pj
            / results["StPIM"][w].energy.total_pj
            for w in NAMES
        )
        for pname in platforms
    }
    print(
        bar_chart(
            energies,
            title="Fig. 18 — average energy normalised to StPIM",
            unit="x",
            reference="StPIM",
        )
    )
    print()

    scaling = {}
    base = None
    for count in (128, 256, 512, 1024):
        geometry = DeviceGeometry().with_pim_subarrays(count)
        platform = StreamPIMPlatform(StreamPIMConfig(geometry=geometry))
        times = {w: platform.run(POLYBENCH[w]).time_ns for w in NAMES}
        if base is None:
            base = times
        scaling[str(count)] = average(base[w] / times[w] for w in NAMES)
    print(
        bar_chart(
            scaling,
            title="Fig. 21 — speedup vs PIM subarray count (vs 128)",
            unit="x",
        )
    )
    print(f"trend: {sparkline(list(scaling.values()))}")
    print()

    gains = {}
    base_times = None
    for policy in SchedulerPolicy:
        platform = StreamPIMPlatform(
            StreamPIMConfig(scheduler_policy=policy)
        )
        times = {w: platform.run(POLYBENCH[w]).time_ns for w in NAMES}
        if base_times is None:
            base_times = times
        gains[policy.value] = average(
            base_times[w] / times[w] for w in NAMES
        )
    print(
        bar_chart(
            gains,
            title="Fig. 22 — optimisation gains over base",
            unit="x",
        )
    )


if __name__ == "__main__":
    main()
