"""Ablation of the parallelism optimisations (Figs. 21 and 22).

Sweeps the scheduler policy (base / distribute / unblock) and the PIM
subarray budget for a matrix-vector workload, showing how StreamPIM's
performance comes from the interplay of placement, blocking, and
subarray-level parallelism.

Run:  python examples/optimization_ablation.py
"""

from repro.analysis.report import format_table
from repro.baselines.stpim import StreamPIMPlatform
from repro.core.device import StreamPIMConfig
from repro.core.scheduler import SchedulerPolicy
from repro.rm.address import DeviceGeometry
from repro.workloads import polybench_workload


def main() -> None:
    spec = polybench_workload("gemm", scale=0.25)
    print(f"workload: gemm at quarter scale ({spec.description})")
    print()

    print("Fig. 22 — optimisation ablation:")
    rows = []
    base_time = None
    for policy in SchedulerPolicy:
        platform = StreamPIMPlatform(
            StreamPIMConfig(scheduler_policy=policy)
        )
        time_ns = platform.run(spec).time_ns
        if base_time is None:
            base_time = time_ns
        rows.append([policy.value, time_ns / 1e6, base_time / time_ns])
    print(format_table(["policy", "time (ms)", "speedup vs base"], rows))
    print()

    print("Fig. 21 — PIM subarray scaling (unblock policy):")
    rows = []
    reference = None
    for count in (128, 256, 512, 1024):
        geometry = DeviceGeometry().with_pim_subarrays(count)
        platform = StreamPIMPlatform(StreamPIMConfig(geometry=geometry))
        time_ns = platform.run(spec).time_ns
        if reference is None:
            reference = time_ns
        rows.append([count, time_ns / 1e6, reference / time_ns])
    print(format_table(["subarrays", "time (ms)", "speedup vs 128"], rows))
    print()
    print(
        "note the saturation at 1024 subarrays: data preparation grows "
        "with the broadcast fan-out while per-subarray compute shrinks."
    )


if __name__ == "__main__":
    main()
