"""Shared plumbing for the ``tools/bench_*.py`` harnesses.

Importing this module puts ``<repo>/src`` on ``sys.path`` (every bench
script runs from a source checkout, not an installed package), and the
helpers below factor out the patterns each harness used to re-implement:
best-of-N timing, the RunStats comparison field list, percentile
summaries, JSON artifact writing, and the FAIL/PASS exit protocol.
"""

from __future__ import annotations

import json
import math
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = str(REPO_ROOT / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

#: (name, getter) pairs covering every numeric field of a RunStats that
#: engine-equivalence gates compare.
STAT_FIELDS = (
    ("time_ns", lambda s: s.time_ns),
    ("read_ns", lambda s: s.time_breakdown.read_ns),
    ("write_ns", lambda s: s.time_breakdown.write_ns),
    ("shift_ns", lambda s: s.time_breakdown.shift_ns),
    ("process_ns", lambda s: s.time_breakdown.process_ns),
    ("overlapped_ns", lambda s: s.time_breakdown.overlapped_ns),
    ("read_pj", lambda s: s.energy.read_pj),
    ("write_pj", lambda s: s.energy.write_pj),
    ("shift_pj", lambda s: s.energy.shift_pj),
    ("compute_pj", lambda s: s.energy.compute_pj),
)


def stat_values(stats) -> list:
    """The :data:`STAT_FIELDS` values of one RunStats, in order."""
    return [get(stats) for _, get in STAT_FIELDS]


def stat_mismatches(a, b) -> list:
    """Names of the :data:`STAT_FIELDS` where ``a`` and ``b`` differ."""
    return [name for name, get in STAT_FIELDS if get(a) != get(b)]


def best_of(repeats: int, fn, *args, **kwargs):
    """Best-of-N wall time of ``fn(*args, **kwargs)``.

    Runs ``fn`` ``repeats`` times and returns ``(best_seconds, result)``
    — the minimum is the least noise-contaminated estimate of the cost
    (as ``timeit`` reports), the first iteration doubles as warmup, and
    the last call's return value is handed back for correctness checks.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    best = math.inf
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - t0)
    return best, result


def percentile(values, q):
    """Linear-interpolated percentile ``q`` (0-100); None when empty."""
    if not values:
        return None
    ordered = sorted(values)
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


def write_json(path, payload, default_name: str, **dump_kwargs) -> Path:
    """Write the benchmark artifact and announce it; returns the path."""
    out = Path(path or default_name)
    dump_kwargs.setdefault("indent", 2)
    out.write_text(
        json.dumps(payload, **dump_kwargs) + "\n", encoding="utf-8"
    )
    print(f"wrote {out}")
    return out


def report_failures(failures) -> int:
    """Print FAIL lines (or PASS) and return the exit status."""
    for failure in failures:
        print(f"FAIL: {failure}")
    if failures:
        return 1
    print("PASS")
    return 0


__all__ = [
    "REPO_ROOT",
    "STAT_FIELDS",
    "best_of",
    "percentile",
    "report_failures",
    "stat_mismatches",
    "stat_values",
    "write_json",
]
