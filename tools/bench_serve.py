#!/usr/bin/env python
"""Load generator and chaos gate for the simulation service.

Starts a real ``repro-streampim serve`` process on a private unix
socket, drives it from concurrent client threads, and asserts the
serving layer's resilience contract (``docs/serving.md``):

* **exactly-once**: every issued request resolves to exactly one
  response carrying its own id — nothing lost, nothing duplicated;
* **deadlines**: every request resolves within its deadline plus the
  server's hang grace (plus a transport margin);
* **chaos survival** (``--chaos``): with worker crashes injected
  through the queue (``x-crash``) and a slice of slow requests
  (``x-sleep``), the above still holds, the pool respawns the killed
  workers, and the p99 latency of *normal* requests stays within
  ``--max-p99-ratio`` (default 3x) of the no-chaos baseline;
* **bit-identity**: every successful ``run`` result equals the
  in-process one-shot ``default_platforms()[p].run(spec)`` numbers
  exactly, and every ``compile`` result's ``trace_sha256`` equals a
  local one-shot compile's — serving adds no numeric drift;
* **clean drain**: after the load the server drains on request and
  exits 0.

Run directly or via ``make serve-smoke``::

    PYTHONPATH=src python tools/bench_serve.py --chaos \
        --requests 80 --threads 6 --crashes 2 --slow-fraction 0.08 \
        --out BENCH_serve.json

Without ``--chaos`` only the baseline load phase runs.  Measurements
and gate verdicts land in the JSON artifact; exit status is non-zero
when any gate fails.

``--sustained`` (``make serve-throughput``) instead runs the
batching/fairness gates: the same batchable load is driven against an
unbatched (``--max-batch 1``) and a batched server at equal worker
count and the batched throughput must reach ``--min-speedup`` (1.5x)
of the unbatched one with sha256-bit-identical per-request results in
both phases; then a two-tenant 10:1 pipelined mix must be served with
a Jain fairness index of at least ``--min-jain`` (0.9) while both
tenants are backlogged.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from bench_common import REPO_ROOT, percentile, write_json

from repro.serve import ServeClient, ServeClientError  # noqa: E402

#: (method, params, deadline_ms) templates for the normal load mix;
#: request i uses template i % len(MIX).
MIX = [
    ("run", {"workload": "atax", "platform": "StPIM", "scale": 0.01}),
    ("run", {"workload": "bicg", "platform": "CPU-RM", "scale": 0.01}),
    ("compile", {"workload": "atax", "scale": 0.01}),
    ("run", {"workload": "mvt", "platform": "FELIX", "scale": 0.01}),
    ("compile", {"workload": "bicg", "scale": 0.01}),
    ("run", {"workload": "atax", "platform": "CORUSCANT", "scale": 0.01}),
]

#: Batchable load for ``--sustained``: run-only, one platform, three
#: distinct batch keys (one per workload) so grouping is exercised
#: without collapsing the whole run into a single key.
SUSTAINED_MIX = [
    ("run", {"workload": "atax", "platform": "StPIM", "scale": 0.01}),
    ("run", {"workload": "bicg", "platform": "StPIM", "scale": 0.01}),
    ("run", {"workload": "mvt", "platform": "StPIM", "scale": 0.01}),
]

#: Codes acceptable for an ``x-crash`` injection: the worker died, so
#: the request dead-letters after redelivery — or the crash class's
#: breaker already opened and shed it fast.
CRASH_CODES = {"DEAD_LETTER", "CIRCUIT_OPEN", "WORKER_CRASH"}


# ----------------------------------------------------------------------
# Server lifecycle
# ----------------------------------------------------------------------
def start_server(socket_path, cache_dir, args, chaos, extra=()):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["REPRO_STREAMPIM_CACHE_DIR"] = str(cache_dir)
    cmd = [
        sys.executable,
        "-m",
        "repro.cli",
        "serve",
        "--socket",
        str(socket_path),
        "--workers",
        str(args.workers),
        "--queue-limit",
        "512",
        "--tenant-rate",
        "100000",
        "--tenant-burst",
        "100000",
        "--hang-grace",
        str(args.hang_grace),
        "--drain-timeout",
        "30",
    ]
    cmd.extend(extra)
    if chaos:
        cmd.append("--chaos")
    process = subprocess.Popen(
        cmd,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.time() + 30.0
    while time.time() < deadline:
        if process.poll() is not None:
            out = process.stdout.read() if process.stdout else ""
            raise SystemExit(
                f"server died during startup (rc={process.returncode}):\n{out}"
            )
        if os.path.exists(socket_path):
            try:
                with ServeClient(socket_path=str(socket_path)) as probe:
                    stats = probe.stats()
                    if stats.ok and _pool_warm(stats.result):
                        return process
            except ServeClientError:
                pass
        time.sleep(0.1)
    process.kill()
    raise SystemExit("server did not become ready within 30s")


def _pool_warm(stats_result):
    """True once every worker process finished importing.

    The socket accepts connections while spawned workers are still
    importing the simulator (~1s); load issued before their first
    heartbeat just sits in the dispatch pipes and would be billed to
    the measured phase.
    """
    workers = stats_result.get("pool", {}).get("workers", {})
    if not workers:
        return False
    return all(
        w.get("alive") and not w.get("starting") for w in workers.values()
    )


def stop_server(process, socket_path):
    """Drain via the control method; returns the exit code."""
    try:
        with ServeClient(socket_path=str(socket_path)) as client:
            client.drain()
    except ServeClientError:
        pass
    try:
        return process.wait(timeout=45.0)
    except subprocess.TimeoutExpired:
        process.kill()
        return -9


# ----------------------------------------------------------------------
# Load generation
# ----------------------------------------------------------------------
def build_plan(args, chaos):
    """The full request list, each entry one descriptor dict."""
    plan = []
    for i in range(args.requests):
        method, params = MIX[i % len(MIX)]
        plan.append(
            {
                "kind": "normal",
                "method": method,
                "params": dict(params),
                "deadline_ms": args.deadline_ms,
            }
        )
    if chaos:
        slow = max(1, int(round(args.requests * args.slow_fraction)))
        for i in range(slow):
            plan.insert(
                (i * 7) % len(plan),
                {
                    "kind": "slow",
                    "method": "x-sleep",
                    "params": {"ms": args.slow_ms},
                    "deadline_ms": args.deadline_ms,
                },
            )
        for i in range(args.crashes):
            # One breaker class per crash (distinct workload label), so
            # every injection actually reaches a worker and kills it
            # instead of being shed by the previous crash's open
            # breaker.
            plan.insert(
                (i * 13 + 3) % len(plan),
                {
                    "kind": "crash",
                    "method": "x-crash",
                    "params": {"workload": f"chaos{i}"},
                    "deadline_ms": args.deadline_ms,
                },
            )
    return plan


def run_load(socket_path, plan, threads):
    """Issue the plan from N threads; returns per-request records."""
    lock = threading.Lock()
    cursor = {"next": 0}
    records = [None] * len(plan)

    def worker(thread_index):
        try:
            client = ServeClient(
                socket_path=str(socket_path), timeout_s=120.0
            )
        except ServeClientError as exc:
            with lock:
                for i, record in enumerate(records):
                    if record is None:
                        records[i] = {"error": f"connect: {exc}"}
            return
        with client:
            while True:
                with lock:
                    index = cursor["next"]
                    if index >= len(plan):
                        return
                    cursor["next"] = index + 1
                item = plan[index]
                request_id = f"t{thread_index}-r{index}"
                started = time.time()
                try:
                    response = client.call(
                        item["method"],
                        item["params"],
                        deadline_ms=item["deadline_ms"],
                        request_id=request_id,
                    )
                    records[index] = {
                        "kind": item["kind"],
                        "method": item["method"],
                        "params": item["params"],
                        "id": request_id,
                        "response_id": response.id,
                        "ok": response.ok,
                        "code": (
                            None
                            if response.ok
                            else response.error.code.value
                        ),
                        "result": response.result if response.ok else None,
                        "latency_ms": (time.time() - started) * 1000.0,
                        "deadline_ms": item["deadline_ms"],
                    }
                except ServeClientError as exc:
                    records[index] = {
                        "kind": item["kind"],
                        "id": request_id,
                        "error": str(exc),
                        "latency_ms": (time.time() - started) * 1000.0,
                    }

    pool = [
        threading.Thread(target=worker, args=(t,), daemon=True)
        for t in range(threads)
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    return records


# ----------------------------------------------------------------------
# Gates
# ----------------------------------------------------------------------
def check_exactly_once(records, failures):
    """One response per request, correlated by its own id."""
    seen = set()
    for record in records:
        if record is None or "error" in record:
            failures.append(
                f"lost response: {record!r}"
                if record
                else "request never issued"
            )
            continue
        if record["response_id"] not in ("", record["id"]):
            failures.append(
                f"response id mismatch: sent {record['id']} "
                f"got {record['response_id']}"
            )
        if record["id"] in seen:
            failures.append(f"duplicate response for {record['id']}")
        seen.add(record["id"])


def check_deadlines(records, hang_grace_s, margin_s, failures):
    for record in records:
        if record is None or "error" in record:
            continue
        budget_ms = (
            record["deadline_ms"] + (hang_grace_s + margin_s) * 1000.0
        )
        if record["latency_ms"] > budget_ms:
            failures.append(
                f"{record['id']} resolved after {record['latency_ms']:.0f}ms "
                f"(> deadline {record['deadline_ms']:.0f}ms + grace)"
            )


def check_outcomes(records, failures):
    """Normal requests succeed; injections get their typed codes."""
    for record in records:
        if record is None or "error" in record:
            continue
        if record["kind"] == "normal" and not record["ok"]:
            failures.append(
                f"normal request {record['id']} failed: {record['code']}"
            )
        if record["kind"] == "crash" and record["ok"]:
            failures.append(
                f"crash injection {record['id']} reported success"
            )
        if (
            record["kind"] == "crash"
            and not record["ok"]
            and record["code"] not in CRASH_CODES
        ):
            failures.append(
                f"crash injection {record['id']} got {record['code']}, "
                f"expected one of {sorted(CRASH_CODES)}"
            )
        if record["kind"] == "slow" and not record["ok"]:
            # A slow request may legitimately hit its deadline; any
            # other code is a bug.
            if record["code"] != "DEADLINE_EXCEEDED":
                failures.append(
                    f"slow injection {record['id']} got {record['code']}"
                )


def check_bit_identity(records, failures):
    """Server results must equal one-shot in-process results exactly."""
    from repro.baselines import default_platforms
    from repro.core.compile import compile_workload
    from repro.workloads import find_workload

    import hashlib

    platforms = default_platforms()
    run_expected = {}
    compile_expected = {}
    for record in records:
        if (
            record is None
            or "error" in record
            or record["kind"] != "normal"
            or not record["ok"]
        ):
            continue
        params = record["params"]
        key = (
            params.get("workload"),
            params.get("platform"),
            params.get("scale"),
        )
        if record["method"] == "run":
            if key not in run_expected:
                spec = find_workload(key[0], scale=key[2])
                stats = platforms[key[1]].run(spec)
                run_expected[key] = (stats.time_ns, stats.energy.total_pj)
            time_ns, energy_pj = run_expected[key]
            got = record["result"]
            if got["time_ns"] != time_ns or got["energy_pj"] != energy_pj:
                failures.append(
                    f"run result drift for {key}: served "
                    f"({got['time_ns']}, {got['energy_pj']}) vs one-shot "
                    f"({time_ns}, {energy_pj})"
                )
        elif record["method"] == "compile":
            if key not in compile_expected:
                spec = find_workload(key[0], scale=key[2])
                compiled = compile_workload(spec, use_cache=False)
                compile_expected[key] = hashlib.sha256(
                    compiled.trace.to_bytes()
                ).hexdigest()
            if record["result"]["trace_sha256"] != compile_expected[key]:
                failures.append(
                    f"compile trace drift for {key}: served sha "
                    f"{record['result']['trace_sha256']} vs one-shot "
                    f"{compile_expected[key]}"
                )
    return len(run_expected), len(compile_expected)


def summarize(records):
    normal = [
        r
        for r in records
        if r is not None and "error" not in r and r["kind"] == "normal"
    ]
    latencies = [r["latency_ms"] for r in normal]
    codes = {}
    for record in records:
        if record is None or "error" in record:
            codes["TRANSPORT"] = codes.get("TRANSPORT", 0) + 1
        elif not record["ok"]:
            codes[record["code"]] = codes.get(record["code"], 0) + 1
    return {
        "requests": len(records),
        "normal": len(normal),
        "normal_ok": sum(1 for r in normal if r["ok"]),
        "error_codes": codes,
        "p50_ms": percentile(latencies, 50.0),
        "p99_ms": percentile(latencies, 99.0),
        "max_ms": max(latencies) if latencies else None,
    }


# ----------------------------------------------------------------------
def run_phase(args, chaos, cache_dir, failures):
    """One server lifetime: start, load, stats, drain. Returns report."""
    tag = "chaos" if chaos else "baseline"
    with tempfile.TemporaryDirectory(prefix=f"serve-{tag}-") as tmp:
        socket_path = Path(tmp) / "bench.sock"
        process = start_server(socket_path, cache_dir, args, chaos)
        plan = build_plan(args, chaos)
        started = time.time()
        records = run_load(socket_path, plan, args.threads)
        elapsed = time.time() - started
        restarts = dead_letters = None
        try:
            with ServeClient(socket_path=str(socket_path)) as client:
                stats = client.stats()
                if stats.ok:
                    restarts = stats.result["pool"]["restarts"]
                    dead_letters = stats.result["core"]["dead_letters"]
        except ServeClientError as exc:
            failures.append(f"[{tag}] stats call failed: {exc}")
        exit_code = stop_server(process, socket_path)
        if exit_code != 0:
            failures.append(
                f"[{tag}] server exit code {exit_code} (wanted clean drain)"
            )
        check_exactly_once(records, failures)
        check_deadlines(
            records, args.hang_grace, args.deadline_margin, failures
        )
        check_outcomes(records, failures)
        runs, compiles = check_bit_identity(records, failures)
        report = summarize(records)
        report.update(
            {
                "elapsed_s": round(elapsed, 3),
                "worker_restarts": restarts,
                "dead_letters": dead_letters,
                "clean_drain": exit_code == 0,
                "identity_checked": {"run": runs, "compile": compiles},
            }
        )
        if chaos:
            report["injected"] = {
                "crashes": args.crashes,
                "slow": sum(
                    1
                    for r in records
                    if r is not None and r.get("kind") == "slow"
                ),
            }
            if restarts is not None and restarts < args.crashes:
                failures.append(
                    f"[chaos] only {restarts} worker restart(s) observed, "
                    f"expected >= {args.crashes}"
                )
        return report


# ----------------------------------------------------------------------
# Sustained mode: batching throughput + fairness gates
# ----------------------------------------------------------------------
def jain(counts):
    values = [float(v) for v in counts]
    total = sum(values)
    if not total:
        return 1.0
    return total * total / (len(values) * sum(v * v for v in values))


def result_sha(result):
    import hashlib

    return hashlib.sha256(
        json.dumps(result, sort_keys=True).encode("utf-8")
    ).hexdigest()


def pipelined_exchange(socket_path, requests, failures, tag):
    """Write every request up front, then read until all answered.

    Sustained load needs a deep server-side backlog (that is what the
    batch planner feeds on), which thread-per-blocking-call clients
    cannot produce.  Returns (records in arrival order, elapsed_s):
    each record is ``{id, ok, code, result, latency_ms}`` with latency
    measured from the submission burst.
    """
    import socket as socketlib

    from repro.serve.protocol import decode_line, encode_message

    records = []
    conn = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
    conn.settimeout(120.0)
    started = time.time()
    try:
        conn.connect(str(socket_path))
        conn.sendall(
            b"".join(encode_message(r.to_dict()) for r in requests)
        )
        buffer = b""
        while len(records) < len(requests):
            chunk = conn.recv(65536)
            if not chunk:
                failures.append(
                    f"[{tag}] connection closed with "
                    f"{len(requests) - len(records)} responses missing"
                )
                break
            arrived = time.time()
            buffer += chunk
            while b"\n" in buffer:
                line, buffer = buffer.split(b"\n", 1)
                obj = decode_line(line)
                error = obj.get("error") or {}
                records.append(
                    {
                        "id": obj.get("id"),
                        "ok": bool(obj.get("ok")),
                        "code": error.get("code"),
                        "result": obj.get("result"),
                        "latency_ms": (arrived - started) * 1000.0,
                    }
                )
    except OSError as exc:
        failures.append(f"[{tag}] transport error: {exc}")
    finally:
        conn.close()
    return records, time.time() - started


def check_pipelined(requests, records, deadline_budget_ms, tag, failures):
    """Exactly-once + all-ok + deadline gates for a pipelined phase."""
    answered = [r["id"] for r in records]
    if sorted(answered) != sorted(r.id for r in requests):
        failures.append(
            f"[{tag}] response ids do not match issued ids "
            f"({len(answered)} answered, {len(requests)} issued)"
        )
    for record in records:
        if not record["ok"]:
            failures.append(
                f"[{tag}] request {record['id']} failed: {record['code']}"
            )
        if record["latency_ms"] > deadline_budget_ms:
            failures.append(
                f"[{tag}] request {record['id']} resolved after "
                f"{record['latency_ms']:.0f}ms (> {deadline_budget_ms:.0f}ms)"
            )


def sustained_requests(args):
    from repro.serve.protocol import Request

    return [
        Request(
            id=f"s-{i}",
            method=method,
            params=dict(params),
            deadline_ms=args.deadline_ms,
        )
        for i, (method, params) in (
            (i, SUSTAINED_MIX[i % len(SUSTAINED_MIX)])
            for i in range(args.requests)
        )
    ]


def run_sustained_phase(args, cache_dir, max_batch, tag, failures):
    """One server lifetime under the pipelined batchable run mix."""
    with tempfile.TemporaryDirectory(prefix=f"serve-{tag}-") as tmp:
        socket_path = Path(tmp) / "bench.sock"
        extra = ["--max-batch", str(max_batch)]
        if args.batch_linger_ms > 0 and max_batch > 1:
            extra += ["--batch-linger-ms", str(args.batch_linger_ms)]
        process = start_server(socket_path, cache_dir, args, False, extra)
        try:
            # Warm the shared compile cache so the timed phase measures
            # steady-state serving, not one-time trace compilation.
            with ServeClient(
                socket_path=str(socket_path), timeout_s=60.0
            ) as warm:
                for method, params in SUSTAINED_MIX:
                    warm.call(method, dict(params))
        except ServeClientError as exc:
            failures.append(f"[{tag}] warmup failed: {exc}")
        requests = sustained_requests(args)
        records, elapsed = pipelined_exchange(
            socket_path, requests, failures, tag
        )
        batch_counters = None
        try:
            with ServeClient(socket_path=str(socket_path)) as client:
                stats = client.stats()
                if stats.ok:
                    batch_counters = stats.result["core"].get("batch")
        except ServeClientError as exc:
            failures.append(f"[{tag}] stats call failed: {exc}")
        exit_code = stop_server(process, socket_path)
        if exit_code != 0:
            failures.append(f"[{tag}] server exit code {exit_code}")
        budget_ms = (
            args.deadline_ms
            + (args.hang_grace + args.deadline_margin) * 1000.0
        )
        check_pipelined(requests, records, budget_ms, tag, failures)
        ok_count = sum(1 for r in records if r["ok"])
        latencies = [r["latency_ms"] for r in records]
        report = {
            "max_batch": max_batch,
            "requests": len(requests),
            "ok": ok_count,
            "elapsed_s": round(elapsed, 3),
            "throughput_rps": (
                round(ok_count / elapsed, 2) if elapsed > 0 else None
            ),
            "p50_ms": percentile(latencies, 50.0),
            "p99_ms": percentile(latencies, 99.0),
            "max_ms": max(latencies) if latencies else None,
            "batch": batch_counters,
            "clean_drain": exit_code == 0,
        }
        return report, {r["id"]: r for r in records}


def check_sustained_identity(args, by_id_a, by_id_b, failures):
    """Per-request results: batched == unbatched == one-shot in-process.

    Both phases executed the same request list (matched by id), so
    each id's result payload must hash identically across phases, and
    both must match the in-process ``execute_request`` reference for
    that workload — serving and batching add no numeric drift.
    """
    from repro.serve.supervisor import execute_request

    reference = {}
    checked = 0
    for request in sustained_requests(args):
        a = by_id_a.get(request.id)
        b = by_id_b.get(request.id)
        if not (a and b and a["ok"] and b["ok"]):
            continue  # already reported by the per-phase gates
        checked += 1
        sha_a = result_sha(a["result"])
        sha_b = result_sha(b["result"])
        if sha_a != sha_b:
            failures.append(
                f"[sustained] {request.id}: batched result sha "
                f"{sha_b[:12]} != unbatched {sha_a[:12]}"
            )
            continue
        key = json.dumps(request.params, sort_keys=True)
        if key not in reference:
            envelope = execute_request(
                "run", dict(request.params), None, {}
            )
            reference[key] = (
                result_sha(envelope["result"]) if envelope["ok"] else None
            )
        if reference[key] is not None and sha_a != reference[key]:
            failures.append(
                f"[sustained] {request.id}: served sha {sha_a[:12]} "
                f"!= in-process {reference[key][:12]} for {key}"
            )
    return checked


def run_fairness_phase(args, cache_dir, failures):
    """Two-tenant 10:1 pipelined mix against one batched server.

    All heavy-tenant requests are written first, then the light
    tenant's, on one pipelined connection — the adversarial order for
    a FIFO (the light tenant would wait behind the whole heavy
    backlog).  While both tenants are backlogged (the first
    ``2 * light`` completions) the served mix must be ~1:1.
    """
    from repro.serve.protocol import Request

    heavy_n, light_n = args.fairness_heavy, args.fairness_light
    with tempfile.TemporaryDirectory(prefix="serve-fair-") as tmp:
        socket_path = Path(tmp) / "bench.sock"
        # Batch granularity coarser than 4 would dominate a window of
        # ~2*light completions; DRR fairness itself is batch-agnostic.
        extra = ["--max-batch", str(min(args.max_batch, 4))]
        process = start_server(socket_path, cache_dir, args, False, extra)
        requests = [
            Request(
                id=f"heavy-{i}",
                method="run",
                params={"workload": "atax", "platform": "StPIM", "scale": 0.01},
                tenant="heavy",
                deadline_ms=args.deadline_ms,
            )
            for i in range(heavy_n)
        ] + [
            # A different workload per tenant: distinct batch keys, so
            # a batch never mixes tenants and grouping cannot mask an
            # unfair pick order.
            Request(
                id=f"light-{i}",
                method="run",
                params={"workload": "bicg", "platform": "StPIM", "scale": 0.01},
                tenant="light",
                deadline_ms=args.deadline_ms,
            )
            for i in range(light_n)
        ]
        records, _ = pipelined_exchange(
            socket_path, requests, failures, "fairness"
        )
        exit_code = stop_server(process, socket_path)
        if exit_code != 0:
            failures.append(f"[fairness] server exit code {exit_code}")
        not_ok = [r["id"] for r in records if not r["ok"]]
        if not_ok:
            failures.append(
                f"[fairness] {len(not_ok)} request(s) failed, "
                f"first: {not_ok[0]}"
            )
        window = [r["id"] for r in records[: 2 * light_n]]
        served = {
            "heavy": sum(1 for rid in window if rid.startswith("heavy")),
            "light": sum(1 for rid in window if rid.startswith("light")),
        }
        index = round(jain(served.values()), 4)
        if index < args.min_jain:
            failures.append(
                f"[fairness] Jain index {index} < {args.min_jain} "
                f"(window served: {served})"
            )
        return {
            "heavy_offered": heavy_n,
            "light_offered": light_n,
            "completed": len(records),
            "window": len(window),
            "window_served": served,
            "jain": index,
            "min_jain": args.min_jain,
        }


def run_sustained(args, payload, failures):
    with tempfile.TemporaryDirectory(prefix="serve-cache-") as cache_dir:
        print(
            f"sustained: {args.requests} requests, {args.threads} "
            f"threads, {args.workers} workers"
        )
        unbatched, by_id_u = run_sustained_phase(
            args, cache_dir, 1, "unbatched", failures
        )
        print(
            f"  unbatched: {unbatched['throughput_rps']} rps, "
            f"p99 {unbatched['p99_ms']:.1f}ms"
        )
        batched, by_id_b = run_sustained_phase(
            args, cache_dir, args.max_batch, "batched", failures
        )
        print(
            f"  batched (max {args.max_batch}): "
            f"{batched['throughput_rps']} rps, "
            f"p99 {batched['p99_ms']:.1f}ms"
        )
        speedup = None
        if unbatched["throughput_rps"] and batched["throughput_rps"]:
            speedup = round(
                batched["throughput_rps"] / unbatched["throughput_rps"], 3
            )
            if speedup < args.min_speedup:
                failures.append(
                    f"[sustained] batched throughput is only {speedup}x "
                    f"the unbatched baseline (min {args.min_speedup}x)"
                )
        identity_checked = check_sustained_identity(
            args, by_id_u, by_id_b, failures
        )
        fairness = run_fairness_phase(args, cache_dir, failures)
        print(
            f"  fairness: Jain {fairness['jain']} over window "
            f"{fairness['window_served']}"
        )
        payload["sustained"] = {
            "unbatched": unbatched,
            "batched": batched,
            "speedup": speedup,
            "min_speedup": args.min_speedup,
            "identity_checked": identity_checked,
            "fairness": fairness,
        }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=120)
    parser.add_argument("--threads", type=int, default=6)
    parser.add_argument("--workers", type=int, default=3)
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="also run the chaos phase (crashes + slow injection) and "
        "gate p99 against the baseline",
    )
    parser.add_argument(
        "--sustained",
        action="store_true",
        help="run the batching/fairness gates instead of the "
        "baseline/chaos phases: batched vs unbatched throughput, "
        "bit-identity, and two-tenant DRR fairness",
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=8,
        help="batch size for the batched sustained phase",
    )
    parser.add_argument(
        "--batch-linger-ms",
        type=float,
        default=0.0,
        help="batch linger for the batched sustained phase",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.5,
        help="batched throughput must reach this multiple of unbatched",
    )
    parser.add_argument(
        "--min-jain",
        type=float,
        default=0.9,
        help="minimum Jain fairness index over the backlogged window",
    )
    parser.add_argument(
        "--fairness-heavy",
        type=int,
        default=100,
        help="heavy-tenant request count in the fairness phase",
    )
    parser.add_argument(
        "--fairness-light",
        type=int,
        default=10,
        help="light-tenant request count in the fairness phase",
    )
    parser.add_argument(
        "--crashes",
        type=int,
        default=2,
        help="x-crash injections (forced worker kills) in chaos mode",
    )
    parser.add_argument(
        "--slow-fraction",
        type=float,
        default=0.05,
        help="fraction of the load injected as x-sleep slow requests",
    )
    parser.add_argument(
        "--slow-ms",
        type=float,
        default=250.0,
        help="duration of each injected slow request",
    )
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=60000.0,
        help="per-request deadline for generated load",
    )
    parser.add_argument(
        "--hang-grace",
        type=float,
        default=2.0,
        help="server hang grace (also part of the deadline gate budget)",
    )
    parser.add_argument(
        "--deadline-margin",
        type=float,
        default=5.0,
        help="transport slack (s) allowed on top of deadline + grace",
    )
    parser.add_argument(
        "--max-p99-ratio",
        type=float,
        default=3.0,
        help="chaos p99 must stay within this multiple of baseline p99",
    )
    parser.add_argument(
        "--p99-floor-ms",
        type=float,
        default=250.0,
        help="baseline p99 is clamped up to this floor before the "
        "ratio gate (keeps tiny absolute latencies from flaking it)",
    )
    parser.add_argument("--out", default="BENCH_serve.json")
    args = parser.parse_args(argv)

    failures = []
    payload = {
        "config": {
            "requests": args.requests,
            "threads": args.threads,
            "workers": args.workers,
            "chaos": args.chaos,
            "sustained": args.sustained,
            "max_batch": args.max_batch,
            "crashes": args.crashes,
            "slow_fraction": args.slow_fraction,
            "deadline_ms": args.deadline_ms,
            "max_p99_ratio": args.max_p99_ratio,
        }
    }
    if args.sustained:
        run_sustained(args, payload, failures)
        payload["failures"] = failures
        payload["ok"] = not failures
        write_json(
            args.out, payload, "BENCH_serve.json", indent=1, sort_keys=True
        )
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}")
            return 1
        print("all sustained gates passed")
        return 0
    with tempfile.TemporaryDirectory(prefix="serve-cache-") as cache_dir:
        print(
            f"baseline phase: {args.requests} requests, "
            f"{args.threads} threads, {args.workers} workers"
        )
        payload["baseline"] = run_phase(args, False, cache_dir, failures)
        print(
            f"  p50 {payload['baseline']['p50_ms']:.1f}ms, "
            f"p99 {payload['baseline']['p99_ms']:.1f}ms, "
            f"{payload['baseline']['normal_ok']}/"
            f"{payload['baseline']['normal']} ok"
        )
        if args.chaos:
            print(
                f"chaos phase: +{args.crashes} crashes, "
                f"{args.slow_fraction:.0%} slow injection"
            )
            payload["chaos"] = run_phase(args, True, cache_dir, failures)
            print(
                f"  p50 {payload['chaos']['p50_ms']:.1f}ms, "
                f"p99 {payload['chaos']['p99_ms']:.1f}ms, "
                f"restarts {payload['chaos']['worker_restarts']}, "
                f"dead-letters {payload['chaos']['dead_letters']}"
            )
            base_p99 = max(
                payload["baseline"]["p99_ms"] or 0.0, args.p99_floor_ms
            )
            chaos_p99 = payload["chaos"]["p99_ms"] or 0.0
            ratio = chaos_p99 / base_p99
            payload["p99_ratio"] = round(ratio, 3)
            if ratio > args.max_p99_ratio:
                failures.append(
                    f"chaos p99 {chaos_p99:.1f}ms is {ratio:.2f}x the "
                    f"baseline (max {args.max_p99_ratio}x)"
                )

    payload["failures"] = failures
    payload["ok"] = not failures
    write_json(
        args.out, payload, "BENCH_serve.json", indent=1, sort_keys=True
    )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("all serving gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
