#!/usr/bin/env python
"""Accuracy and speedup gates for the closed-form performance predictor.

Two sections, both written into one JSON artifact (``BENCH_predict.json``)
and both gating the exit status:

* **Calibration** — the full buildable workload set through the vector
  engine and the analytic model (:mod:`repro.analysis.calibrate`); every
  workload must stay inside its documented per-class time bound
  (``docs/modeling.md``: chained-matvec 3%, matmul 8%, dnn 10%) and the
  global 10%/15% time/energy acceptance bounds.

* **Analytic-sweep speedup** — per sweep workload: compile once, then
  (a) time one *simulated* design point — fresh device + operand
  materialisation + functional vector execution, the default execution
  path — and (b) time the analytic side of an N-point timing sweep:
  one TracePredictor build plus N closed-form evaluations.  The gated
  figure is the aggregate wall-time reduction of the sweep::

      speedup = sum_w(sim_point_s[w]) * N / analytic_total_s

  i.e. what simulating every point of the sweep would cost versus what
  the analytic sweep actually cost.  Floor: ``--min-speedup`` (100x).

Run directly or via ``make bench-predict``::

    PYTHONPATH=src python tools/bench_predict.py \
        --timing-points 8 --min-speedup 100 --out BENCH_predict.json
"""

from __future__ import annotations

import argparse
import sys
import time

from bench_common import report_failures, write_json

from repro.analysis.calibrate import run_calibration  # noqa: E402
from repro.analysis.predictor import (  # noqa: E402
    AnalyticDevice,
    TracePredictor,
)

#: (read_scale, write_scale, vpc_decode_ns) timing points of the sweep
#: side; the first entry is the paper's default configuration.
TIMING_POINTS = [
    (1.0, 1.0, 10.0),
    (0.5, 1.0, 10.0),
    (2.0, 1.0, 10.0),
    (1.0, 0.5, 10.0),
    (1.0, 2.0, 10.0),
    (1.0, 1.0, 5.0),
    (1.0, 1.0, 40.0),
    (2.0, 2.0, 20.0),
]

SWEEP_WORKLOADS = [("gemm", 0.05), ("3mm", 0.05), ("mlp", None)]


def _parse_cases(items):
    cases = []
    for item in items:
        name, sep, scale = item.partition(":")
        cases.append((name, float(scale) if sep else None))
    return cases


def _point_config(base, read_scale, write_scale, decode_ns):
    from dataclasses import replace

    timing = replace(
        base.timing,
        read_ns=base.timing.read_ns * read_scale,
        write_ns=base.timing.write_ns * write_scale,
    )
    return replace(base, timing=timing, vpc_decode_ns=decode_ns)


def run_sweep_gate(args, failures):
    """Measured analytic-sweep speedup over the simulated baseline."""
    from repro.core.compile import compile_workload
    from repro.core.device import StreamPIMConfig, StreamPIMDevice
    from repro.sim.vector_exec import execute_columnar
    from repro.workloads import find_workload

    base = StreamPIMConfig()
    points = list(TIMING_POINTS)
    while len(points) < args.timing_points:
        # Extend cyclically with distinct decode offsets so any
        # requested width is honoured.
        r, w, d = TIMING_POINTS[len(points) % len(TIMING_POINTS)]
        points.append(
            (r, w, d + 2.5 * (len(points) // len(TIMING_POINTS)))
        )
    points = points[: args.timing_points]
    workloads = (
        _parse_cases(args.sweep_workloads)
        if args.sweep_workloads
        else SWEEP_WORKLOADS
    )

    per_workload = {}
    sim_total_s = 0.0
    analytic_total_s = 0.0
    for name, scale in workloads:
        spec = (
            find_workload(name, scale=scale)
            if scale is not None
            else find_workload(name)
        )
        compiled = compile_workload(spec, seed=args.seed)

        # Simulated design point: the default execution path end to end
        # (fresh device, operand materialisation, functional vector
        # execution) — what a sweep would pay per point without the
        # analytic model.
        t0 = time.perf_counter()
        device = StreamPIMDevice(base)
        compiled.task.materialize(device)
        stats = execute_columnar(
            device, compiled.trace, workload=spec.name, functional=True
        )
        sim_s = time.perf_counter() - t0

        # Analytic sweep: one predictor build + N closed-form points.
        t0 = time.perf_counter()
        predictor = TracePredictor(
            compiled.trace, device.address_map.words_per_subarray
        )
        build_s = time.perf_counter() - t0
        predict_s = 0.0
        default_predicted = None
        for read_scale, write_scale, decode_ns in points:
            config = _point_config(
                base, read_scale, write_scale, decode_ns
            )
            t0 = time.perf_counter()
            predicted = predictor.predict(
                AnalyticDevice(config), workload=spec.name
            )
            predict_s += time.perf_counter() - t0
            if (read_scale, write_scale, decode_ns) == (1.0, 1.0, 10.0):
                default_predicted = predicted

        time_err = None
        if default_predicted is not None:
            time_err = (
                default_predicted.time_ns - stats.time_ns
            ) / stats.time_ns
            if abs(time_err) > args.max_sweep_error:
                failures.append(
                    f"sweep cross-check: {spec.name} predicted time off "
                    f"by {time_err * 100:+.2f}% at the default point "
                    f"(max {args.max_sweep_error * 100:.0f}%)"
                )
        sim_total_s += sim_s
        analytic_total_s += build_s + predict_s
        per_workload[f"{name}" + (f"@{scale:g}" if scale else "")] = {
            "commands": predictor.commands,
            "sim_point_s": round(sim_s, 4),
            "predictor_build_s": round(build_s, 4),
            "predict_total_s": round(predict_s, 4),
            "predict_per_point_ms": round(
                predict_s / len(points) * 1e3, 3
            ),
            "default_point_time_error": time_err,
        }
        print(
            f"  {spec.name:<6} {predictor.commands:>8,} cmds  "
            f"sim point {sim_s:6.2f}s  build {build_s * 1e3:6.1f}ms  "
            f"{len(points)} predictions {predict_s * 1e3:7.1f}ms"
        )

    estimated_sim_sweep_s = sim_total_s * len(points)
    speedup = (
        estimated_sim_sweep_s / analytic_total_s
        if analytic_total_s > 0
        else float("inf")
    )
    print(
        f"sweep: {len(points)} points x {len(workloads)} workloads  "
        f"simulated ~{estimated_sim_sweep_s:.1f}s vs analytic "
        f"{analytic_total_s:.2f}s  speedup {speedup:.0f}x "
        f"(floor {args.min_speedup}x)"
    )
    if speedup < args.min_speedup:
        failures.append(
            f"analytic-sweep speedup {speedup:.0f}x below the "
            f"{args.min_speedup}x floor"
        )
    return {
        "timing_points": len(points),
        "workloads": per_workload,
        "sim_point_total_s": round(sim_total_s, 4),
        "estimated_sim_sweep_s": round(estimated_sim_sweep_s, 2),
        "analytic_total_s": round(analytic_total_s, 4),
        "speedup": round(speedup, 1),
        "min_speedup": args.min_speedup,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workloads",
        nargs="*",
        default=None,
        metavar="NAME[:SCALE]",
        help="calibration cases (default: the full buildable set)",
    )
    parser.add_argument(
        "--heavy",
        action="store_true",
        help="include bert in the calibration (~10 extra minutes)",
    )
    parser.add_argument(
        "--sweep-workloads",
        nargs="*",
        default=None,
        metavar="NAME[:SCALE]",
        help="workloads of the speedup gate (default: gemm:0.05, "
        "3mm:0.05, mlp)",
    )
    parser.add_argument(
        "--timing-points",
        type=int,
        default=32,
        help="timing points per workload on the analytic sweep side "
        "(wide enough to amortise the one-time predictor builds, as "
        "the explorer's 1,000+-point grids do)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=100.0,
        help="fail if the analytic-sweep speedup drops below this",
    )
    parser.add_argument(
        "--max-sweep-error",
        type=float,
        default=0.10,
        help="max |predicted-simulated|/simulated time error at the "
        "sweep gate's default point",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", default=None)
    args = parser.parse_args(argv)

    failures = []

    print("calibration: analytic model vs the vector engine")
    cases = _parse_cases(args.workloads) if args.workloads else None

    def show(result):
        scale = "" if result.scale is None else f"@{result.scale:g}"
        print(
            f"  {result.workload + scale:<12} "
            f"[{result.workload_class:<14}] "
            f"{result.commands:>9,} cmds  "
            f"time {result.time_rel_error * 100:+7.3f}% "
            f"(bound {result.class_time_bound * 100:.0f}%)  "
            f"energy {result.energy_rel_error * 100:+.1e}%"
        )

    report = run_calibration(
        cases, seed=args.seed, heavy=args.heavy, progress=show
    )
    print(
        f"calibration: max |time err| "
        f"{report.max_abs_time_error * 100:.3f}%, max |energy err| "
        f"{report.max_abs_energy_error * 100:.2e}%"
    )
    if not report.ok():
        failures.append(
            "calibration out of bounds: "
            + ", ".join(
                f"{r.workload}@{r.scale} time "
                f"{r.time_rel_error * 100:+.2f}%"
                for r in report.results
                if not r.ok
            )
        )

    print("analytic-sweep speedup gate")
    sweep = run_sweep_gate(args, failures)

    payload = {
        "calibration": report.to_dict(),
        "sweep": sweep,
        "failures": failures,
        "ok": not failures,
    }
    write_json(args.out, payload, "BENCH_predict.json", indent=1)
    return report_failures(failures)


if __name__ == "__main__":
    sys.exit(main())
