#!/usr/bin/env python
"""Perf-regression harness for the event-mode trace executors.

Default mode builds one large matmul trace (2*m*n VPCs: a TRAN + MUL
per output element), replays it through both the scalar reference
executor and the columnar vector engine, checks the results are
identical, and writes the measurements to a JSON file so the speedup
trajectory is tracked across changes.

Run directly or via ``make bench-perf``::

    PYTHONPATH=src python tools/bench_trace_exec.py \
        --vpcs 100000 --min-speedup 10 --out BENCH_trace_exec.json

``--compile`` benchmarks the *compile* phase instead
(``make bench-compile``): scalar vs vectorized trace lowering on gemm,
a differential gate proving both lowering engines emit bit-identical
traces for every PolyBench kernel and both DNN workloads at two
dataset scales each, and a cold-vs-cached compile of the Fig. 17
workload set through the content-addressed trace cache::

    PYTHONPATH=src python tools/bench_trace_exec.py --compile \
        --min-compile-speedup 5 --min-cache-speedup 20 \
        --out BENCH_trace_compile.json

``--stream`` benchmarks the streamed compile/execute pipeline
(``make bench-stream``): cold end-to-end (lowering + functional vector
execution) phased vs streamed on gemm and the Fig. 17 PolyBench set,
with bit-identity asserted on ``RunStats``, the concatenated trace,
and the word store for every workload::

    PYTHONPATH=src python tools/bench_trace_exec.py --stream \
        --min-stream-speedup 1.15 --out BENCH_trace_stream.json

``--deep`` benchmarks the whole-trace dataflow analysis
(``make bench-deep``): the SPV008–SPV012 pass over the ~93k-VPC gemm
trace must finish well under one functional vector-engine execution of
the same trace (``--max-deep-ratio``) and under an absolute budget
(``--deep-budget``), and must report the trace clean::

    PYTHONPATH=src python tools/bench_trace_exec.py --deep \
        --max-deep-ratio 0.5 --deep-budget 10 \
        --out BENCH_deep_check.json

Exit status is non-zero when the engines disagree or a measured
speedup falls below its floor.
"""

from __future__ import annotations

import argparse
import math
import sys
import time

from bench_common import (
    best_of,
    report_failures,
    stat_mismatches,
    stat_values,
    write_json,
)

import numpy as np  # noqa: E402

from repro.core.device import StreamPIMDevice  # noqa: E402
from repro.core.task import PimTask, TaskOp  # noqa: E402
from repro.isa.columnar import ColumnarTrace  # noqa: E402


def build_trace(target_vpcs: int):
    """A matmul trace of at least ``target_vpcs`` commands.

    With B stored transposed the lowering emits one TRAN (column
    delivery) plus one MUL (dot product) per output element, so an
    m x n result yields exactly 2*m*n trace commands.
    """
    side = max(2, math.ceil(math.sqrt(target_vpcs / 2)))
    k = 64
    rng = np.random.default_rng(2024)
    a = rng.integers(0, 200, size=(side, k))
    b = rng.integers(0, 200, size=(k, side))
    task = PimTask(StreamPIMDevice())
    task.add_matrix("A", a)
    task.add_matrix("B", b)
    task.add_matrix("C", shape=(side, side))
    task.add_operation(TaskOp.MATMUL, "A", "B", "C")
    return task.to_trace(), side


def run(args: argparse.Namespace) -> int:
    t0 = time.perf_counter()
    trace, side = build_trace(args.vpcs)
    gen_s = time.perf_counter() - t0
    n_vpcs = len(trace)
    print(f"trace: matmul {side}x64 @ 64x{side} -> {n_vpcs:,} VPCs "
          f"(generated in {gen_s:.2f}s)")

    t0 = time.perf_counter()
    cols = ColumnarTrace.from_trace(trace)
    columnarize_s = time.perf_counter() - t0

    payload = cols.to_bytes()
    t0 = time.perf_counter()
    decoded = ColumnarTrace.from_bytes(payload)
    decode_s = time.perf_counter() - t0
    if decoded != cols:
        print("FAIL: columnar binary round-trip mismatch")
        return 1

    scalar_s, scalar_stats = best_of(
        args.repeats,
        lambda: StreamPIMDevice().execute_trace(
            trace, workload="bench", functional=False
        ),
    )
    vector_s, vector_stats = best_of(
        args.repeats,
        lambda: StreamPIMDevice().execute_trace(
            cols, workload="bench", functional=False, engine="vector"
        ),
    )
    mismatches = stat_mismatches(scalar_stats, vector_stats)
    if scalar_stats.counters != vector_stats.counters:
        mismatches.append("counters")
    speedup = scalar_s / vector_s if vector_s > 0 else float("inf")

    # Observability overhead: the public vector path with the collector
    # disabled (NULL_COLLECTOR: one enabled check per run) against a
    # direct engine call that bypasses the obs plumbing entirely.  Both
    # skip verification so the delta isolates the dispatch overhead.
    from repro.obs import Collector
    from repro.sim.vector_exec import execute_columnar

    obs_control_s, control_stats = best_of(
        args.repeats,
        lambda: execute_columnar(
            StreamPIMDevice(), cols, workload="bench", functional=False
        ),
    )
    obs_disabled_s, disabled_stats = best_of(
        args.repeats,
        lambda: StreamPIMDevice().execute_trace(
            cols,
            workload="bench",
            functional=False,
            verify=False,
            engine="vector",
        ),
    )
    if stat_values(control_stats) != stat_values(disabled_stats):
        mismatches.append("obs_disabled_stats")
    obs_overhead_pct = (
        (obs_disabled_s - obs_control_s) / obs_control_s * 100.0
        if obs_control_s > 0
        else 0.0
    )

    # Informational: one fully instrumented run (spans + metrics).
    t0 = time.perf_counter()
    StreamPIMDevice().observe(Collector()).execute_trace(
        cols,
        workload="bench",
        functional=False,
        verify=False,
        engine="vector",
    )
    obs_profiled_s = time.perf_counter() - t0

    result = {
        "trace_vpcs": n_vpcs,
        "matmul_side": side,
        "generate_s": round(gen_s, 4),
        "columnarize_s": round(columnarize_s, 4),
        "binary_decode_s": round(decode_s, 4),
        "scalar_exec_s": round(scalar_s, 4),
        "vector_exec_s": round(vector_s, 4),
        "speedup": round(speedup, 2),
        "min_speedup": args.min_speedup,
        "stats_identical": not mismatches,
        "time_ns": scalar_stats.time_ns,
        "energy_pj": scalar_stats.energy.total_pj,
        "obs_control_s": round(obs_control_s, 4),
        "obs_disabled_s": round(obs_disabled_s, 4),
        "obs_disabled_overhead_pct": round(obs_overhead_pct, 2),
        "obs_profiled_s": round(obs_profiled_s, 4),
        "max_obs_overhead_pct": args.max_obs_overhead,
    }
    print(f"columnarize {columnarize_s:.3f}s  "
          f"binary decode {decode_s:.3f}s")
    print(f"scalar {scalar_s:.3f}s  vector {vector_s:.3f}s  "
          f"speedup {speedup:.1f}x (floor {args.min_speedup}x)")
    print(f"obs: control {obs_control_s:.3f}s  "
          f"disabled {obs_disabled_s:.3f}s  "
          f"(overhead {obs_overhead_pct:+.1f}%)  "
          f"profiled {obs_profiled_s:.3f}s")
    write_json(args.out, result, "BENCH_trace_exec.json")

    failures = []
    if mismatches:
        failures.append(f"scalar/vector stats differ in {mismatches}")
    if speedup < args.min_speedup:
        failures.append(
            f"speedup {speedup:.1f}x below the {args.min_speedup}x floor"
        )
    if (
        args.max_obs_overhead is not None
        and obs_overhead_pct > args.max_obs_overhead
    ):
        failures.append(
            f"disabled-mode observability overhead "
            f"{obs_overhead_pct:.1f}% exceeds the "
            f"{args.max_obs_overhead}% ceiling"
        )
    return report_failures(failures)


def _differential_specs(scales):
    """Every lowering-relevant workload at reduced, comparable sizes.

    PolyBench kernels come at each of ``scales``; the DNN workloads
    come at two shapes each (their own notion of dataset scale).
    """
    from repro.workloads import POLYBENCH, polybench_workload
    from repro.workloads.dnn import (
        BERTShape,
        MLPShape,
        bert_spec,
        mlp_spec,
    )

    for scale in scales:
        for name in POLYBENCH:
            spec = polybench_workload(name, scale=scale)
            if spec.build is not None:
                yield f"{name}@{scale}", spec
    yield "mlp@small", mlp_spec(MLPShape(batch=4, layers=(16, 12, 8)))
    yield "mlp@medium", mlp_spec(MLPShape(batch=8, layers=(24, 16, 12)))
    yield "bert@small", bert_spec(
        BERTShape(seq_len=4, hidden=8, ffn=16, heads=2, layers=1)
    )
    yield "bert@medium", bert_spec(
        BERTShape(seq_len=8, hidden=16, ffn=32, heads=2, layers=1)
    )


def run_compile(args: argparse.Namespace) -> int:
    """Compile-phase benchmark: lowering speedup, differential gate,
    and cold-vs-cached compilation of the Fig. 17 workload set."""
    import tempfile

    from repro.core.compile import compile_workload
    from repro.isa.trace_cache import TraceCache
    from repro.workloads import POLYBENCH, polybench_workload

    failures = []

    # ------------------------------------------------------------------
    # 1. Lowering: scalar per-element emission vs batched columnar
    #    array expressions, on the largest gemm we can afford here.
    # ------------------------------------------------------------------
    spec = polybench_workload("gemm", scale=args.compile_scale)
    scalar_s = math.inf
    for _ in range(args.repeats):
        task = spec.build_task(seed=7)
        t0 = time.perf_counter()
        scalar_trace = task.to_trace(engine="scalar")
        scalar_s = min(scalar_s, time.perf_counter() - t0)
    columnar_s = math.inf
    for _ in range(args.repeats):
        # Task build stays outside the timed region, so best_of (which
        # would time the build too) does not apply here.
        task = spec.build_task(seed=7)
        t0 = time.perf_counter()
        columnar_trace = task.to_trace(engine="columnar")
        columnar_s = min(columnar_s, time.perf_counter() - t0)
    if ColumnarTrace.from_trace(scalar_trace).to_bytes() != (
        columnar_trace.to_bytes()
    ):
        failures.append("gemm lowering engines emit different bytes")
    compile_speedup = (
        scalar_s / columnar_s if columnar_s > 0 else float("inf")
    )
    print(f"lowering: gemm @ scale {args.compile_scale} "
          f"({len(columnar_trace):,} VPCs)  scalar {scalar_s:.3f}s  "
          f"columnar {columnar_s:.3f}s  speedup {compile_speedup:.1f}x "
          f"(floor {args.min_compile_speedup}x)")

    # ------------------------------------------------------------------
    # 2. Differential gate: bit-identical traces from both lowering
    #    engines for every kernel and both DNN workloads.
    # ------------------------------------------------------------------
    differential = {}
    for label, diff_spec in _differential_specs(args.diff_scales):
        scalar_task = diff_spec.build_task(seed=7)
        columnar_task = diff_spec.build_task(seed=7)
        identical = ColumnarTrace.from_trace(
            scalar_task.to_trace(engine="scalar")
        ).to_bytes() == columnar_task.to_trace(engine="columnar").to_bytes()
        differential[label] = identical
        if not identical:
            failures.append(f"differential mismatch on {label}")
    matched = sum(differential.values())
    print(f"differential: {matched}/{len(differential)} workloads "
          f"bit-identical across lowering engines")

    # ------------------------------------------------------------------
    # 3. Trace cache: cold compile-and-store vs cached reload of the
    #    Fig. 17 PolyBench set (fresh temp store; the user cache is
    #    never touched).
    # ------------------------------------------------------------------
    with tempfile.TemporaryDirectory(prefix="sptc-bench-") as temp_dir:
        cache = TraceCache(temp_dir)
        cold_s = warm_s = 0.0
        cached_vpcs = 0
        for name in POLYBENCH:
            fig_spec = polybench_workload(name, scale=args.cache_scale)
            if fig_spec.build is None:
                continue
            t0 = time.perf_counter()
            cold = compile_workload(fig_spec, cache=cache)
            cold_s += time.perf_counter() - t0
            t0 = time.perf_counter()
            cached = compile_workload(fig_spec, cache=cache)
            warm_s += time.perf_counter() - t0
            cached_vpcs += len(cached.trace)
            if cold.cache_hit or not cached.cache_hit:
                failures.append(f"unexpected cache behaviour on {name}")
            if cached.trace.to_bytes() != cold.trace.to_bytes():
                failures.append(f"cached trace differs on {name}")
        cache_stats = cache.stats()
    cache_speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    print(f"cache: fig17 set @ scale {args.cache_scale} "
          f"({cached_vpcs:,} VPCs)  cold {cold_s:.3f}s  "
          f"cached {warm_s:.3f}s  speedup {cache_speedup:.1f}x "
          f"(floor {args.min_cache_speedup}x)")

    result = {
        "compile_scale": args.compile_scale,
        "gemm_vpcs": len(columnar_trace),
        "scalar_lowering_s": round(scalar_s, 4),
        "columnar_lowering_s": round(columnar_s, 4),
        "compile_speedup": round(compile_speedup, 2),
        "min_compile_speedup": args.min_compile_speedup,
        "differential": differential,
        "cache_scale": args.cache_scale,
        "cache_cold_s": round(cold_s, 4),
        "cache_warm_s": round(warm_s, 4),
        "cache_speedup": round(cache_speedup, 2),
        "min_cache_speedup": args.min_cache_speedup,
        "cache_stats": {
            k: v for k, v in cache_stats.items() if k != "cache_dir"
        },
    }
    write_json(args.out, result, "BENCH_trace_compile.json")

    if compile_speedup < args.min_compile_speedup:
        failures.append(
            f"compile speedup {compile_speedup:.1f}x below the "
            f"{args.min_compile_speedup}x floor"
        )
    if cache_speedup < args.min_cache_speedup:
        failures.append(
            f"cache speedup {cache_speedup:.1f}x below the "
            f"{args.min_cache_speedup}x floor"
        )
    return report_failures(failures)


def _phased_cold(spec):
    """One cold phased run: lower the whole trace, then execute it."""
    t0 = time.perf_counter()
    task = spec.build_task(seed=7)
    trace = task.to_trace()
    task.materialize()
    stats = task.device.execute_trace(
        trace, workload=spec.name, functional=True, engine="vector"
    )
    return time.perf_counter() - t0, task, trace, stats


def _streamed_cold(spec, chunk_vpcs):
    """One cold streamed run: chunks execute as lowering produces them."""
    from repro.core.stream import run_stream, task_chunk_producer

    t0 = time.perf_counter()
    task = spec.build_task(seed=7)
    result, telemetry = run_stream(
        task.device,
        task_chunk_producer(task, chunk_vpcs=chunk_vpcs),
        workload=spec.name,
        functional=True,
    )
    return time.perf_counter() - t0, task, result, telemetry


def run_stream_bench(args: argparse.Namespace) -> int:
    """Streamed-pipeline benchmark: cold end-to-end phased vs streamed
    on gemm and the Fig. 17 set, with bit-identity asserted on stats,
    trace bytes, and the word store."""
    from repro.core.stream import DEFAULT_CHUNK_VPCS
    from repro.workloads import POLYBENCH, polybench_workload

    chunk_vpcs = args.chunk_vpcs or DEFAULT_CHUNK_VPCS
    failures = []
    per_workload = {}
    phased_total = streamed_total = 0.0
    fig17_names = [
        name
        for name in POLYBENCH
        if polybench_workload(name, scale=args.stream_scale).build
        is not None
    ]
    for name in fig17_names:
        spec = polybench_workload(name, scale=args.stream_scale)
        phased_s = math.inf
        for _ in range(args.repeats):
            elapsed, p_task, p_trace, p_stats = _phased_cold(spec)
            phased_s = min(phased_s, elapsed)
        streamed_s = math.inf
        for _ in range(args.repeats):
            elapsed, s_task, result, telemetry = _streamed_cold(
                spec, chunk_vpcs
            )
            streamed_s = min(streamed_s, elapsed)
        identical = (
            p_stats == result.stats
            and p_trace.to_bytes() == result.trace.to_bytes()
            and p_task.device.store._words == s_task.device.store._words
        )
        if not identical:
            failures.append(f"streamed run not bit-identical on {name}")
        speedup = phased_s / streamed_s if streamed_s > 0 else float("inf")
        phased_total += phased_s
        streamed_total += streamed_s
        per_workload[name] = {
            "vpcs": len(p_trace),
            "phased_s": round(phased_s, 4),
            "streamed_s": round(streamed_s, 4),
            "speedup": round(speedup, 2),
            "chunks": telemetry.chunks,
            "fallbacks": telemetry.fallbacks,
            "identical": identical,
        }
        print(f"  {name:<12} {len(p_trace):>8,} VPCs  "
              f"phased {phased_s:.3f}s  streamed {streamed_s:.3f}s  "
              f"{speedup:.2f}x  ({telemetry.chunks} chunks)")
    aggregate = (
        phased_total / streamed_total
        if streamed_total > 0
        else float("inf")
    )
    print(f"stream: fig17 set @ scale {args.stream_scale}, "
          f"chunk {chunk_vpcs}  phased {phased_total:.3f}s  "
          f"streamed {streamed_total:.3f}s  aggregate {aggregate:.2f}x "
          f"(floor {args.min_stream_speedup}x)")

    result = {
        "stream_scale": args.stream_scale,
        "chunk_vpcs": chunk_vpcs,
        "workloads": per_workload,
        "phased_total_s": round(phased_total, 4),
        "streamed_total_s": round(streamed_total, 4),
        "stream_speedup": round(aggregate, 2),
        "min_stream_speedup": args.min_stream_speedup,
        "all_identical": all(
            row["identical"] for row in per_workload.values()
        ),
    }
    write_json(args.out, result, "BENCH_trace_stream.json")

    if aggregate < args.min_stream_speedup:
        failures.append(
            f"stream speedup {aggregate:.2f}x below the "
            f"{args.min_stream_speedup}x floor"
        )
    return report_failures(failures)


def run_deep(args: argparse.Namespace) -> int:
    """Deep-analysis benchmark: the dataflow pass must stay a small
    fraction of one functional vector-engine execution and the gemm
    trace must come back clean."""
    from repro.obs import MetricsRegistry
    from repro.verify.dataflow import DataflowAnalyzer
    from repro.workloads import polybench_workload

    spec = polybench_workload("gemm", scale=args.deep_scale)
    t0 = time.perf_counter()
    task = spec.build_task(seed=7)
    trace = task.to_trace()
    gen_s = time.perf_counter() - t0
    n_vpcs = len(trace)
    print(f"trace: gemm @ scale {args.deep_scale} -> {n_vpcs:,} VPCs "
          f"(compiled in {gen_s:.2f}s)")

    # Baseline: one functional vector-engine execution — the thing a
    # deep check would gate in front of, so the analysis must cost a
    # small fraction of it.
    t0 = time.perf_counter()
    task.device.execute_trace(
        trace, workload="bench", functional=True, engine="vector"
    )
    vector_s = time.perf_counter() - t0

    registry = MetricsRegistry()
    analyzer = DataflowAnalyzer(
        geometry=task.device.config.geometry,
        plan=task.placement_plan,
        scalar_slots=task.trace_scalar_slots,
        registry=registry,
    )
    deep_s, report = best_of(
        args.repeats, analyzer.analyze, trace, subject="bench gemm"
    )
    ratio = deep_s / vector_s if vector_s > 0 else float("inf")

    snapshot = registry.snapshot()
    dataflow_metrics = {
        name: value
        for name, value in snapshot.items()
        if name.startswith("dataflow.")
    }
    result = {
        "deep_scale": args.deep_scale,
        "trace_vpcs": n_vpcs,
        "generate_s": round(gen_s, 4),
        "vector_exec_functional_s": round(vector_s, 4),
        "deep_analysis_s": round(deep_s, 4),
        "deep_ratio": round(ratio, 4),
        "max_deep_ratio": args.max_deep_ratio,
        "deep_budget_s": args.deep_budget,
        "findings": {
            rule_id: len(report.by_rule(rule_id))
            for rule_id in report.rule_ids()
        },
        "clean": report.ok(strict=True),
        "dataflow_metrics": dataflow_metrics,
    }
    print(f"vector exec (functional) {vector_s:.3f}s  "
          f"deep analysis {deep_s:.3f}s  "
          f"ratio {ratio:.3f} (ceiling {args.max_deep_ratio})")
    write_json(args.out, result, "BENCH_deep_check.json")

    failures = []
    if not report.ok(strict=True):
        failures.append(
            "gemm trace has dataflow findings: "
            + ", ".join(sorted(result["findings"]))
        )
    if ratio > args.max_deep_ratio:
        failures.append(
            f"deep analysis took {ratio:.2f}x of a vector execution "
            f"(ceiling {args.max_deep_ratio}x)"
        )
    if deep_s > args.deep_budget:
        failures.append(
            f"deep analysis {deep_s:.2f}s exceeds the "
            f"{args.deep_budget}s budget"
        )
    return report_failures(failures)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--vpcs",
        type=int,
        default=100_000,
        help="target trace length in VPCs (default: 100000)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.0,
        help="fail if vector/scalar speedup drops below this",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timed runs per engine; the best is reported",
    )
    parser.add_argument(
        "--max-obs-overhead",
        type=float,
        default=None,
        help="fail if the disabled-mode observability overhead on the "
        "vector path exceeds this percentage",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="output JSON path (default: BENCH_trace_exec.json, or "
        "BENCH_trace_compile.json with --compile)",
    )
    parser.add_argument(
        "--compile",
        action="store_true",
        help="benchmark the compile phase (lowering + trace cache) "
        "instead of trace execution",
    )
    parser.add_argument(
        "--compile-scale",
        type=float,
        default=0.1,
        help="gemm dataset scale for the lowering benchmark",
    )
    parser.add_argument(
        "--min-compile-speedup",
        type=float,
        default=1.0,
        help="fail if columnar/scalar lowering speedup drops below this",
    )
    parser.add_argument(
        "--cache-scale",
        type=float,
        default=0.15,
        help="dataset scale of the fig17 set for the cache benchmark",
    )
    parser.add_argument(
        "--min-cache-speedup",
        type=float,
        default=1.0,
        help="fail if the cold/cached compile speedup drops below this",
    )
    parser.add_argument(
        "--diff-scales",
        type=float,
        nargs="+",
        default=[0.01, 0.04],
        help="PolyBench scales for the scalar-vs-columnar "
        "differential gate",
    )
    parser.add_argument(
        "--stream",
        action="store_true",
        help="benchmark the streamed compile/execute pipeline (cold "
        "end-to-end, phased vs streamed) instead of trace execution",
    )
    parser.add_argument(
        "--stream-scale",
        type=float,
        default=0.1,
        help="dataset scale of the fig17 set for the stream benchmark",
    )
    parser.add_argument(
        "--min-stream-speedup",
        type=float,
        default=1.0,
        help="fail if the streamed/phased cold end-to-end speedup "
        "drops below this",
    )
    parser.add_argument(
        "--chunk-vpcs",
        type=int,
        default=None,
        help="records per streamed chunk (default: the pipeline's "
        "DEFAULT_CHUNK_VPCS)",
    )
    parser.add_argument(
        "--deep",
        action="store_true",
        help="benchmark the whole-trace dataflow analysis "
        "(SPV008-SPV012) instead of trace execution",
    )
    parser.add_argument(
        "--deep-scale",
        type=float,
        default=0.1,
        help="gemm dataset scale for the deep-analysis benchmark "
        "(0.1 -> ~93k VPCs)",
    )
    parser.add_argument(
        "--max-deep-ratio",
        type=float,
        default=0.5,
        help="fail if deep analysis exceeds this fraction of one "
        "functional vector-engine execution",
    )
    parser.add_argument(
        "--deep-budget",
        type=float,
        default=10.0,
        help="fail if deep analysis exceeds this many seconds",
    )
    args = parser.parse_args(argv)
    if args.compile:
        return run_compile(args)
    if args.stream:
        return run_stream_bench(args)
    if args.deep:
        return run_deep(args)
    return run(args)


if __name__ == "__main__":
    sys.exit(main())
