"""Tests for the redundancy / error-tolerance models (section VI)."""

import pytest

from repro.core.redundancy import (
    RedundancyAnalysis,
    RedundancyConfig,
    RedundancyMode,
)
from repro.rm.faults import ShiftFaultConfig

WORDS = 2000


def _analysis(mode, **kwargs):
    return RedundancyAnalysis(RedundancyConfig(mode=mode, **kwargs))


class TestTransferFaults:
    def test_guard_retry_reduces_undetected_faults(self):
        unprotected = _analysis(RedundancyMode.NONE).transfer_fault(WORDS)
        guarded = _analysis(RedundancyMode.GUARD_RETRY).transfer_fault(WORDS)
        assert guarded < unprotected / 10

    def test_tmr_keeps_transfer_protection(self):
        guarded = _analysis(RedundancyMode.GUARD_RETRY)
        tmr = _analysis(RedundancyMode.GUARD_RETRY_TMR)
        assert tmr.transfer_fault(WORDS) == pytest.approx(
            guarded.transfer_fault(WORDS)
        )


class TestComputeFaults:
    def test_tmr_squares_the_upset_rate(self):
        single = _analysis(RedundancyMode.GUARD_RETRY).compute_fault()
        voted = _analysis(RedundancyMode.GUARD_RETRY_TMR).compute_fault()
        assert voted < single / 1000

    def test_total_combines_both_sources(self):
        report = _analysis(RedundancyMode.GUARD_RETRY).report(WORDS)
        assert report.total_undetected >= report.undetected_transfer_fault
        assert report.total_undetected >= report.residual_compute_fault


class TestOverheads:
    def test_unprotected_has_no_time_overhead(self):
        assert _analysis(RedundancyMode.NONE).time_overhead(WORDS) == 0.0

    def test_retry_overhead_small(self):
        overhead = _analysis(RedundancyMode.GUARD_RETRY).time_overhead(WORDS)
        assert 0.0 < overhead < 0.01

    def test_retry_overhead_scales_with_fault_rate(self):
        noisy = RedundancyAnalysis(
            RedundancyConfig(mode=RedundancyMode.GUARD_RETRY),
            faults=ShiftFaultConfig(p_per_step=1e-5),
        )
        quiet = _analysis(RedundancyMode.GUARD_RETRY)
        assert noisy.time_overhead(WORDS) > quiet.time_overhead(WORDS)

    def test_tmr_area_small_because_processor_is_tiny(self):
        """Section V-G: the processor is 0.1% of the device, so even
        triplicating it costs well under 1% of area."""
        overhead = _analysis(RedundancyMode.GUARD_RETRY_TMR).area_overhead()
        assert 0.0 < overhead < 0.01

    def test_spares_add_area(self):
        none = _analysis(
            RedundancyMode.GUARD_RETRY, spare_tracks_per_mat=0
        ).area_overhead()
        spares = _analysis(
            RedundancyMode.GUARD_RETRY, spare_tracks_per_mat=16
        ).area_overhead()
        assert spares > none

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RedundancyConfig(retry_cycles=-1)
        with pytest.raises(ValueError):
            RedundancyConfig(processor_upset_probability=1.0)
        with pytest.raises(ValueError):
            RedundancyConfig(spare_tracks_per_mat=-1)


class TestHopAccounting:
    def test_transfer_hops_counts_segment_chunks(self):
        analysis = _analysis(RedundancyMode.NONE)
        bus = analysis.bus
        one_chunk = analysis.transfer_hops(1)
        assert one_chunk == bus.n_segments
        assert (
            analysis.transfer_hops(bus.words_per_segment) == one_chunk
        )
        assert (
            analysis.transfer_hops(bus.words_per_segment + 1)
            == 2 * one_chunk
        )

    def test_transfer_hops_rejects_non_positive_words(self):
        analysis = _analysis(RedundancyMode.NONE)
        with pytest.raises(ValueError):
            analysis.transfer_hops(0)
        with pytest.raises(ValueError):
            analysis.transfer_hops(-3)

    def test_expected_undetected_faults_matches_hop_model(self):
        faults = ShiftFaultConfig(p_per_step=1e-6, guard_detection=0.9)
        analysis = RedundancyAnalysis(
            RedundancyConfig(mode=RedundancyMode.GUARD_RETRY),
            faults=faults,
        )
        hop = analysis.fault_model.shift_fault_probability(
            analysis.bus.segment_domains
        )
        expected = analysis.transfer_hops(WORDS) * hop * (1.0 - 0.9)
        assert analysis.expected_undetected_faults(WORDS) == pytest.approx(
            expected
        )

    def test_expected_undetected_faults_rejects_non_positive(self):
        with pytest.raises(ValueError):
            _analysis(RedundancyMode.NONE).expected_undetected_faults(0)

    def test_perfect_guard_leaves_no_undetected_faults(self):
        analysis = RedundancyAnalysis(
            RedundancyConfig(mode=RedundancyMode.GUARD_RETRY),
            faults=ShiftFaultConfig(guard_detection=1.0),
        )
        assert analysis.expected_undetected_faults(WORDS) == 0.0

    def test_zero_rate_leaves_no_undetected_faults(self):
        analysis = RedundancyAnalysis(
            RedundancyConfig(mode=RedundancyMode.GUARD_RETRY),
            faults=ShiftFaultConfig(p_per_step=0.0),
        )
        assert analysis.expected_undetected_faults(WORDS) == 0.0


class TestReport:
    def test_report_fields_populated(self):
        report = _analysis(RedundancyMode.GUARD_RETRY_TMR).report(WORDS)
        assert report.mode is RedundancyMode.GUARD_RETRY_TMR
        assert report.expected_time_overhead > 0
        assert report.area_overhead > 0

    def test_protection_ordering_across_modes(self):
        reports = {
            mode: _analysis(mode).report(WORDS) for mode in RedundancyMode
        }
        assert (
            reports[RedundancyMode.GUARD_RETRY_TMR].total_undetected
            < reports[RedundancyMode.GUARD_RETRY].total_undetected
            < reports[RedundancyMode.NONE].total_undetected
        )
