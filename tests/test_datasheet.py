"""Tests for the derived device datasheet."""

import pytest

from repro.analysis.datasheet import Datasheet, build_datasheet
from repro.core.device import StreamPIMConfig
from repro.core.processor import RMProcessorConfig
from repro.rm.address import DeviceGeometry


class TestDatasheet:
    @pytest.fixture(scope="class")
    def sheet(self):
        return build_datasheet()

    def test_paper_headline_figures(self, sheet):
        assert sheet.capacity_gib == 8.0
        assert sheet.pim_subarrays == 512
        assert sheet.core_mhz == 100.0

    def test_peak_rate_derivation(self, sheet):
        # 100 MHz / II=4 cycles per element = 25 M elem/s/processor.
        assert sheet.processor_element_rate == pytest.approx(25e6)
        assert sheet.peak_macs_per_second == pytest.approx(512 * 25e6)

    def test_energy_per_mac_is_table3(self, sheet):
        assert sheet.energy_per_mac_pj == pytest.approx(0.21)

    def test_efficiency_consistent(self, sheet):
        assert sheet.macs_per_joule == pytest.approx(
            1e12 / sheet.energy_per_mac_pj
        )

    def test_more_duplicators_raise_peak(self):
        fast = build_datasheet(
            StreamPIMConfig(processor=RMProcessorConfig(duplicators=8))
        )
        assert fast.peak_macs_per_second == pytest.approx(4 * 512 * 25e6)

    def test_more_subarrays_scale_device_rate(self):
        big = build_datasheet(
            StreamPIMConfig(
                geometry=DeviceGeometry().with_pim_subarrays(1024)
            )
        )
        assert big.peak_macs_per_second == pytest.approx(1024 * 25e6)

    def test_render_mentions_everything(self, sheet):
        text = sheet.render()
        for fragment in ("GiB", "GMAC/s", "pJ", "TMAC/J", "bus area"):
            assert fragment in text
