"""Tests for domain-wall logic gates and bit utilities."""

import pytest
from hypothesis import given, strategies as st

from repro.dwlogic.bitutils import bit_width, bits_to_int, int_to_bits
from repro.dwlogic.gates import (
    GATE_COSTS,
    GateCounter,
    dw_and,
    dw_nand,
    dw_nor,
    dw_not,
    dw_or,
    dw_xor,
)

BITS = [0, 1]


class TestBitUtils:
    @given(st.integers(min_value=0, max_value=2**30 - 1))
    def test_roundtrip(self, value):
        assert bits_to_int(int_to_bits(value, 30)) == value

    def test_lsb_first(self):
        assert int_to_bits(6, 4) == [0, 1, 1, 0]

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            int_to_bits(16, 4)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            int_to_bits(-1, 4)

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            int_to_bits(0, 0)

    def test_bits_to_int_rejects_non_bits(self):
        with pytest.raises(ValueError):
            bits_to_int([0, 2])

    def test_bit_width(self):
        assert bit_width(0) == 1
        assert bit_width(1) == 1
        assert bit_width(255) == 8
        assert bit_width(256) == 9


class TestTruthTables:
    @pytest.mark.parametrize("a", BITS)
    def test_not(self, a):
        assert dw_not(a) == 1 - a

    @pytest.mark.parametrize("a", BITS)
    @pytest.mark.parametrize("b", BITS)
    def test_nand(self, a, b):
        assert dw_nand(a, b) == 1 - (a & b)

    @pytest.mark.parametrize("a", BITS)
    @pytest.mark.parametrize("b", BITS)
    def test_nor(self, a, b):
        assert dw_nor(a, b) == 1 - (a | b)

    @pytest.mark.parametrize("a", BITS)
    @pytest.mark.parametrize("b", BITS)
    def test_and(self, a, b):
        assert dw_and(a, b) == (a & b)

    @pytest.mark.parametrize("a", BITS)
    @pytest.mark.parametrize("b", BITS)
    def test_or(self, a, b):
        assert dw_or(a, b) == (a | b)

    @pytest.mark.parametrize("a", BITS)
    @pytest.mark.parametrize("b", BITS)
    def test_xor(self, a, b):
        assert dw_xor(a, b) == (a ^ b)

    def test_rejects_non_bits(self):
        with pytest.raises(ValueError):
            dw_not(2)
        with pytest.raises(ValueError):
            dw_nand(0, 3)


class TestGateCounting:
    def test_primitive_gates_tick_once(self):
        counter = GateCounter()
        dw_not(1, counter)
        dw_nand(0, 1, counter)
        dw_nor(1, 1, counter)
        assert counter.counts == {"not": 1, "nand": 1, "nor": 1}
        assert counter.total == 3

    def test_and_costs_two_primitives(self):
        counter = GateCounter()
        dw_and(1, 1, counter)
        assert counter.total == GATE_COSTS["and"]

    def test_xor_costs_four_nands(self):
        counter = GateCounter()
        dw_xor(1, 0, counter)
        assert counter.counts == {"nand": 4}
        assert counter.total == GATE_COSTS["xor"]

    def test_merge(self):
        a, b = GateCounter(), GateCounter()
        dw_nand(1, 1, a)
        dw_nand(1, 1, b)
        dw_not(1, b)
        a.merge(b)
        assert a.counts == {"nand": 2, "not": 1}

    def test_reset(self):
        counter = GateCounter()
        dw_not(0, counter)
        counter.reset()
        assert counter.total == 0

    def test_tick_rejects_negative(self):
        with pytest.raises(ValueError):
            GateCounter().tick("nand", -1)

    def test_none_counter_is_fine(self):
        # Gates work without instrumentation.
        assert dw_xor(1, 1) == 0


@given(st.integers(min_value=0, max_value=1), st.integers(min_value=0, max_value=1))
def test_property_de_morgan(a, b):
    """NOT(a AND b) == (NOT a) OR (NOT b), built from DW primitives."""
    assert dw_nand(a, b) == dw_or(dw_not(a), dw_not(b))
