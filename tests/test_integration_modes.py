"""Cross-validation of the two execution modes.

The analytic (round-composition) mode is how paper-scale workloads are
simulated; the event-driven mode executes every VPC with per-subarray
blocking and real data movement.  At reduced dimensions the two must
agree: identical functional results, identical VPC counts, and timing
within a modest factor with the same workload ordering.
"""

import numpy as np
import pytest

from repro.core.device import StreamPIMConfig, StreamPIMDevice
from repro.core.task import PimTask, TaskOp
from repro.workloads import polybench_workload
from repro.workloads.generator import random_matrix


def _fresh_device(small_geometry, small_bus_config):
    return StreamPIMDevice(
        StreamPIMConfig(geometry=small_geometry, bus=small_bus_config)
    )


def _build_matmul_task(device, rng, m=6, k=5, n=4):
    a = random_matrix(m, k, rng)
    b = random_matrix(k, n, rng)
    task = PimTask(device)
    task.add_matrix("A", a)
    task.add_matrix("B", b)
    task.add_matrix("C", shape=(m, n))
    task.add_operation(TaskOp.MATMUL, "A", "B", "C")
    return task, a, b


class TestFunctionalAgreement:
    def test_event_mode_reproduces_analytic_results(
        self, small_geometry, small_bus_config, rng
    ):
        device = _fresh_device(small_geometry, small_bus_config)
        task, a, b = _build_matmul_task(device, rng)
        analytic = task.run().results["C"]

        # Event mode: enumerate the trace, seed the word store with the
        # placed operands, execute, and read the result back.
        event_device = _fresh_device(small_geometry, small_bus_config)
        event_task, a2, b2 = _build_matmul_task(
            event_device, np.random.default_rng(42)
        )
        assert np.array_equal(a, a2) and np.array_equal(b, b2)
        trace = event_task.to_trace()
        event_task.materialize(event_device)
        event_device.execute_trace(trace)
        event_result = event_task.fetch_results(event_device)["C"]
        assert np.array_equal(event_result, analytic)
        assert np.array_equal(event_result, a @ b)

    @pytest.mark.parametrize("name", ["gemm", "atax", "bicg", "gesu", "mvt"])
    def test_event_mode_kernels_compute_correctly(
        self, name, small_geometry, small_bus_config
    ):
        """Full kernels through the event engine equal the analytic run.

        Exercises the layout machinery end-to-end: transposed-stored
        matmul operands, transposed mirrors for A^T x access, scalar
        staging slots, and accumulation traces.
        """
        spec = polybench_workload(name, scale=0.004)
        analytic_device = _fresh_device(small_geometry, small_bus_config)
        analytic_task = spec.build_task(analytic_device, seed=3)
        analytic = analytic_task.run().results

        event_device = _fresh_device(small_geometry, small_bus_config)
        event_task = spec.build_task(event_device, seed=3)
        trace = event_task.to_trace()
        event_task.materialize(event_device)
        event_device.execute_trace(trace)
        event = event_task.fetch_results(event_device)
        outputs = {op.output for op in event_task._operations}
        for output in outputs:
            assert np.array_equal(event[output], analytic[output]), (
                name,
                output,
            )

    def test_vpc_counts_identical(self, small_geometry, small_bus_config, rng):
        device = _fresh_device(small_geometry, small_bus_config)
        task, _, _ = _build_matmul_task(device, rng)
        report = task.run(functional=False)
        trace = task.to_trace()
        assert trace.stats.pim_vpcs == report.counts.pim_vpcs
        assert trace.stats.move_vpcs == report.counts.move_vpcs


class TestTimingAgreement:
    @pytest.mark.parametrize("name", ["gemm", "atax", "mvt"])
    def test_modes_within_modest_factor(
        self, name, small_geometry, small_bus_config
    ):
        """Event-mode and analytic-mode times agree within 5x.

        The models differ (the event mode serialises at VPC granularity
        while the analytic mode uses steady-state pipeline algebra), but
        at small scale they must land in the same regime.
        """
        spec = polybench_workload(name, scale=0.004)
        analytic_device = _fresh_device(small_geometry, small_bus_config)
        task = spec.build_task(analytic_device)
        analytic_ns = task.run(functional=False).time_ns

        event_device = _fresh_device(small_geometry, small_bus_config)
        event_task = spec.build_task(event_device)
        trace = event_task.to_trace()
        event_ns = event_device.execute_trace(
            trace, functional=False
        ).time_ns

        ratio = event_ns / analytic_ns
        assert 1 / 5 < ratio < 5, (name, analytic_ns, event_ns)

    def test_workload_ordering_consistent(
        self, small_geometry, small_bus_config
    ):
        """Both modes rank a big kernel above a small one."""
        big = polybench_workload("gemm", scale=0.004)
        small = polybench_workload("atax", scale=0.004)
        times = {}
        for mode in ("analytic", "event"):
            times[mode] = {}
            for spec in (big, small):
                device = _fresh_device(small_geometry, small_bus_config)
                task = spec.build_task(device)
                if mode == "analytic":
                    times[mode][spec.name] = task.run(
                        functional=False
                    ).time_ns
                else:
                    trace = task.to_trace()
                    times[mode][spec.name] = device.execute_trace(
                        trace, functional=False
                    ).time_ns
        for mode in times:
            assert times[mode]["gemm"] > times[mode]["atax"], mode
