"""Tests for the RM latency/energy model (Table III constants)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.rm.timing import (
    DEFAULT_TIMING,
    EnergyModel,
    RMTimingConfig,
    energy_per_gate_pj,
)


class TestGateEnergyScaling:
    def test_reference_point_one_micron(self):
        assert energy_per_gate_pj(1000.0) == pytest.approx(20.0)

    def test_paper_32nm_figure(self):
        # Section V-F: "from 20 pJ to 0.0008 pJ when the domain scale
        # shrinks from 1.0 um to 32 nm".
        assert energy_per_gate_pj(32.0) == pytest.approx(0.0008, rel=0.25)

    def test_cubic_law(self):
        assert energy_per_gate_pj(500.0) == pytest.approx(
            energy_per_gate_pj(1000.0) / 8.0
        )

    @given(st.floats(min_value=1.0, max_value=10_000.0))
    def test_monotone_in_process(self, nm):
        assert energy_per_gate_pj(nm) <= energy_per_gate_pj(nm * 2) + 1e-12

    @pytest.mark.parametrize("bad", [0.0, -1.0, -32.0])
    def test_rejects_nonpositive(self, bad):
        with pytest.raises(ValueError):
            energy_per_gate_pj(bad)


class TestRMTimingConfig:
    def test_table3_defaults(self):
        t = DEFAULT_TIMING
        assert t.read_ns == 3.91
        assert t.write_ns == 10.27
        assert t.shift_ns == 2.13
        assert t.read_pj == 3.80
        assert t.write_pj == 11.79
        assert t.shift_pj == 3.26
        assert t.pim_add_pj == 0.03
        assert t.pim_mul_pj == 0.18
        assert t.core_freq_mhz == 100.0
        assert t.process_nm == 32.0

    def test_cycle_duration_100mhz(self):
        assert DEFAULT_TIMING.cycle_ns == pytest.approx(10.0)

    def test_cycles_for_exact_multiple(self):
        assert DEFAULT_TIMING.cycles_for_ns(30.0) == 3

    def test_cycles_for_rounds_up(self):
        assert DEFAULT_TIMING.cycles_for_ns(30.1) == 4

    def test_cycles_for_zero(self):
        assert DEFAULT_TIMING.cycles_for_ns(0.0) == 0

    def test_cycles_for_rejects_negative(self):
        with pytest.raises(ValueError):
            DEFAULT_TIMING.cycles_for_ns(-1.0)

    def test_write_slower_than_read_than_shift(self):
        # Section II-A: writes are the expensive RM operation.
        t = DEFAULT_TIMING
        assert t.write_ns > t.read_ns > t.shift_ns
        assert t.write_pj > t.read_pj > t.shift_pj

    def test_scaled_to_process_only_changes_gate_energy(self):
        scaled = DEFAULT_TIMING.scaled_to_process(64.0)
        assert scaled.read_ns == DEFAULT_TIMING.read_ns
        assert scaled.gate_energy_pj > DEFAULT_TIMING.gate_energy_pj

    @pytest.mark.parametrize(
        "field", ["read_ns", "write_ns", "shift_ns", "core_freq_mhz"]
    )
    def test_rejects_nonpositive_fields(self, field):
        with pytest.raises(ValueError):
            RMTimingConfig(**{field: 0.0})


class TestEnergyModel:
    def test_starts_empty(self):
        model = EnergyModel()
        assert model.total_pj == 0.0
        assert model.transfer_pj == 0.0

    def test_charges_by_category(self):
        model = EnergyModel()
        model.charge_read(2)
        model.charge_write(1)
        model.charge_shift(3)
        model.charge_add(4)
        model.charge_mul(5)
        t = model.timing
        assert model.read_pj == pytest.approx(2 * t.read_pj)
        assert model.write_pj == pytest.approx(t.write_pj)
        assert model.shift_pj == pytest.approx(3 * t.shift_pj)
        assert model.compute_pj == pytest.approx(
            4 * t.pim_add_pj + 5 * t.pim_mul_pj
        )

    def test_total_is_sum_of_categories(self):
        model = EnergyModel()
        model.charge_read(7)
        model.charge_mul(7)
        assert model.total_pj == pytest.approx(
            model.read_pj + model.compute_pj
        )

    def test_transfer_excludes_compute(self):
        model = EnergyModel()
        model.charge_shift(10)
        model.charge_add(10)
        assert model.transfer_pj == pytest.approx(model.shift_pj)

    def test_gate_charges_use_process_energy(self):
        model = EnergyModel()
        model.charge_gates(1000)
        assert model.compute_pj == pytest.approx(
            1000 * model.timing.gate_energy_pj
        )

    def test_merge_accumulates(self):
        a, b = EnergyModel(), EnergyModel()
        a.charge_read(1)
        b.charge_read(2)
        b.charge_write(5)
        a.merge(b)
        assert a.n_reads == 3
        assert a.n_writes == 5

    def test_reset_clears_everything(self):
        model = EnergyModel()
        model.charge_write(9)
        model.reset()
        assert model.total_pj == 0.0
        assert model.n_writes == 0

    def test_rejects_negative_counts(self):
        model = EnergyModel()
        with pytest.raises(ValueError):
            model.charge_read(-1)

    @given(
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=0, max_value=1000),
    )
    def test_counts_match_charges(self, reads, shifts):
        model = EnergyModel()
        model.charge_read(reads)
        model.charge_shift(shifts)
        assert model.n_reads == reads
        assert model.n_shifts == shifts
        assert model.total_pj == pytest.approx(
            reads * model.timing.read_pj + shifts * model.timing.shift_pj
        )
