"""Columnar trace codec: lossless round-trips + scalar-reader parity."""

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import TraceFormatError
from repro.isa.columnar import (
    RECORD_DTYPE,
    ColumnarTrace,
    read_trace_columnar,
)
from repro.isa.encoding import (
    NO_OPERAND_SENTINEL,
    VPC_ENCODED_BYTES,
)
from repro.isa.trace import (
    VPCTrace,
    read_trace,
    read_trace_binary,
    write_trace,
    write_trace_binary,
)
from repro.isa.vpc import VPC, VPCOpcode

_MAGIC = b"VPCT\x01"

_FIELD_MAX = (1 << 40) - 2
addresses = st.integers(min_value=0, max_value=_FIELD_MAX)
sizes = st.integers(min_value=1, max_value=_FIELD_MAX)


@st.composite
def vpcs(draw):
    opcode = draw(st.sampled_from(list(VPCOpcode)))
    src2 = None if opcode is VPCOpcode.TRAN else draw(addresses)
    return VPC(opcode, draw(addresses), src2, draw(addresses), draw(sizes))


def binary_bytes(trace):
    buffer = io.BytesIO()
    write_trace_binary(trace, buffer)
    return buffer.getvalue()


_SAMPLE = VPCTrace(
    [
        VPC.mul(0, 8, 16, 4),
        VPC.smul(1, 8, 16, 4),
        VPC.add(0, 8, 16, 4),
        VPC.tran(16, 32, 4),
    ]
)


class TestRoundTripProperties:
    @settings(max_examples=100, deadline=None)
    @given(st.lists(vpcs(), max_size=20))
    def test_trace_round_trip(self, commands):
        cols = ColumnarTrace.from_trace(VPCTrace(commands))
        assert list(cols.to_trace()) == commands
        assert list(cols) == commands
        assert len(cols) == len(commands)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(vpcs(), max_size=20))
    def test_bytes_match_scalar_writer(self, commands):
        trace = VPCTrace(commands)
        cols = ColumnarTrace.from_trace(trace)
        assert cols.to_bytes() == binary_bytes(trace)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(vpcs(), max_size=20))
    def test_bytes_round_trip(self, commands):
        cols = ColumnarTrace.from_trace(VPCTrace(commands))
        assert ColumnarTrace.from_bytes(cols.to_bytes()) == cols

    @settings(max_examples=50, deadline=None)
    @given(st.lists(vpcs(), max_size=20))
    def test_stats_match_scalar_trace(self, commands):
        trace = VPCTrace(commands)
        cols = ColumnarTrace.from_trace(trace)
        assert cols.stats == trace.stats

    @settings(max_examples=50, deadline=None)
    @given(st.lists(vpcs(), min_size=1, max_size=20))
    def test_getitem_matches_scalar_trace(self, commands):
        cols = ColumnarTrace.from_trace(VPCTrace(commands))
        assert cols[0] == commands[0]
        assert cols[-1] == commands[-1]

    def test_text_parses_like_scalar_reader(self, tmp_path):
        path = tmp_path / "t.trace"
        write_trace(_SAMPLE, path)
        cols = ColumnarTrace.from_text(path)
        assert list(cols) == list(read_trace(path))

    def test_read_sniffs_binary_and_text(self, tmp_path):
        binary = tmp_path / "t.bin"
        text = tmp_path / "t.trace"
        ColumnarTrace.from_trace(_SAMPLE).write_binary(binary)
        write_trace(_SAMPLE, text)
        assert list(read_trace_columnar(binary)) == list(_SAMPLE)
        assert list(read_trace_columnar(text)) == list(_SAMPLE)

    def test_write_binary_accepts_stream(self):
        buffer = io.BytesIO()
        ColumnarTrace.from_trace(_SAMPLE).write_binary(buffer)
        assert buffer.getvalue() == binary_bytes(_SAMPLE)


class TestBinaryErrorParity:
    """from_bytes raises the scalar reader's exact diagnostics."""

    def _both(self, data):
        with pytest.raises(TraceFormatError) as scalar:
            read_trace_binary(io.BytesIO(data))
        with pytest.raises(TraceFormatError) as columnar:
            ColumnarTrace.from_bytes(data)
        return scalar.value, columnar.value

    def test_bad_magic_reports_offset_zero(self):
        scalar, columnar = self._both(b"NOPE\x01" + b"\x00" * 21)
        assert columnar.offset == 0
        assert "magic" in str(columnar)
        assert str(columnar) == str(scalar)

    def test_empty_file_is_bad_magic(self):
        scalar, columnar = self._both(b"")
        assert columnar.offset == 0
        assert str(columnar) == str(scalar)

    def test_truncated_record_reports_byte_offset(self):
        trace = VPCTrace([VPC.tran(0, 8, 4), VPC.add(0, 8, 16, 4)])
        scalar, columnar = self._both(binary_bytes(trace)[:-7])
        assert columnar.offset == len(_MAGIC) + VPC_ENCODED_BYTES
        assert "truncated" in str(columnar)
        assert str(columnar) == str(scalar)

    def test_trailing_garbage_is_rejected(self):
        data = binary_bytes(VPCTrace([VPC.tran(0, 8, 4)]))
        scalar, columnar = self._both(data + b"\xff\xff")
        assert str(columnar) == str(scalar)

    def test_unknown_opcode_byte_reports_offset(self):
        corrupt = bytearray(binary_bytes(VPCTrace([VPC.tran(0, 8, 4)])))
        corrupt[len(_MAGIC)] = 0x7F
        scalar, columnar = self._both(bytes(corrupt))
        assert columnar.offset == len(_MAGIC)
        assert "0x7f" in str(columnar)
        assert str(columnar) == str(scalar)

    def test_bad_record_after_good_ones_reports_offset(self):
        trace = VPCTrace([VPC.tran(0, 8, 4), VPC.mul(0, 8, 16, 4)])
        corrupt = bytearray(binary_bytes(trace))
        corrupt[len(_MAGIC) + VPC_ENCODED_BYTES] = 0x7F
        scalar, columnar = self._both(bytes(corrupt))
        assert columnar.offset == len(_MAGIC) + VPC_ENCODED_BYTES
        assert str(columnar) == str(scalar)

    def test_zero_size_record_is_rejected(self):
        # A TRAN with size forced to zero on the wire.
        good = binary_bytes(VPCTrace([VPC.tran(0, 8, 1)]))
        corrupt = bytearray(good)
        corrupt[len(_MAGIC) + 16 : len(_MAGIC) + 21] = b"\x00" * 5
        scalar, columnar = self._both(bytes(corrupt))
        assert str(columnar) == str(scalar)


class TestTextErrorParity:
    def _both(self, text):
        with pytest.raises(TraceFormatError) as scalar:
            read_trace(io.StringIO(text))
        with pytest.raises(TraceFormatError) as columnar:
            ColumnarTrace.from_text(io.StringIO(text))
        return scalar.value, columnar.value

    def test_bad_line_reports_line_number(self):
        scalar, columnar = self._both(
            "# header\nTRAN 0 8 4\nMUL 1 2 oops 4\n"
        )
        assert columnar.line == 3
        assert str(columnar) == str(scalar)

    def test_wrong_field_count_is_flagged(self):
        scalar, columnar = self._both("TRAN 0 8\n")
        assert str(columnar) == str(scalar)
        scalar, columnar = self._both("ADD 0 8 16\n")
        assert str(columnar) == str(scalar)

    def test_unknown_opcode_is_flagged(self):
        scalar, columnar = self._both("FROB 0 8 16 4\n")
        assert str(columnar) == str(scalar)

    def test_negative_field_is_flagged(self):
        scalar, columnar = self._both("ADD 0 -8 16 4\n")
        assert str(columnar) == str(scalar)

    def test_zero_size_is_flagged(self):
        scalar, columnar = self._both("TRAN 0 8 0\n")
        assert str(columnar) == str(scalar)

    def test_comments_and_blanks_are_skipped(self):
        cols = ColumnarTrace.from_text(io.StringIO("# c\n\nTRAN 0 8 4\n"))
        assert len(cols) == 1

    def test_sentinel_src2_not_representable(self):
        # The scalar reader accepts this VPC object, but neither the
        # wire format nor the columnar form can represent a compute
        # command whose src2 equals the TRAN sentinel.
        line = f"ADD 0 {NO_OPERAND_SENTINEL} 16 4\n"
        with pytest.raises(TraceFormatError) as excinfo:
            ColumnarTrace.from_text(io.StringIO(line))
        assert excinfo.value.line == 1


class TestConstructionGuards:
    def test_records_dtype_is_checked(self):
        with pytest.raises(TypeError):
            ColumnarTrace(np.zeros(3, dtype=np.int64))

    def test_records_must_be_one_dimensional(self):
        with pytest.raises(ValueError):
            ColumnarTrace(np.zeros((2, 2), dtype=RECORD_DTYPE))

    def test_eq_against_other_types(self):
        cols = ColumnarTrace.from_trace(_SAMPLE)
        assert cols != "not a trace"
        assert cols == ColumnarTrace.from_trace(_SAMPLE)

    def test_is_compute_mask(self):
        cols = ColumnarTrace.from_trace(_SAMPLE)
        assert cols.is_compute.tolist() == [True, True, True, False]
