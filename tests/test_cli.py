"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.isa.trace import read_trace


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "gemm"])
        assert args.platform == "StPIM"
        assert args.scale == 1.0

    def test_trace_output_flag(self):
        args = build_parser().parse_args(
            ["trace", "atax", "-o", "out.trace"]
        )
        assert args.output == "out.trace"


class TestCommands:
    def test_run_small_workload(self, capsys):
        assert main(["run", "atax", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "atax" in out
        assert "time" in out
        assert "energy" in out

    def test_run_other_platform(self, capsys):
        assert main(
            ["run", "bicg", "--platform", "CORUSCANT", "--scale", "0.05"]
        ) == 0
        assert "CORUSCANT" in capsys.readouterr().out

    def test_run_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["run", "cholesky"])

    def test_run_unknown_platform(self):
        with pytest.raises(SystemExit):
            main(["run", "gemm", "--platform", "TPU"])

    def test_dnn_rejects_scale(self):
        with pytest.raises(SystemExit):
            main(["run", "mlp", "--scale", "0.5"])

    def test_sweep_small(self, capsys):
        assert main(
            ["sweep", "--workloads", "atax", "bicg", "--scale", "0.05"]
        ) == 0
        out = capsys.readouterr().out
        assert "StPIM" in out
        assert "CPU-RM" in out

    def test_counts(self, capsys):
        assert main(["counts"]) == 0
        out = capsys.readouterr().out
        assert "gemm" in out
        assert "4,606,000" in out

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "512" in out  # PIM subarrays
        assert "10.27" in out  # write latency

    def test_trace_roundtrips(self, tmp_path, capsys):
        path = tmp_path / "atax.trace"
        assert main(
            ["trace", "atax", "--scale", "0.01", "-o", str(path)]
        ) == 0
        trace = read_trace(path)
        assert trace.stats.pim_vpcs > 0
        assert trace.stats.move_vpcs > 0

    def test_trace_without_output(self, capsys):
        assert main(["trace", "mvt", "--scale", "0.01"]) == 0
        assert "PIM VPCs" in capsys.readouterr().out


class TestReplay:
    def test_replay_saved_trace(self, tmp_path, capsys):
        path = tmp_path / "t.trace"
        assert main(["trace", "atax", "--scale", "0.01", "-o", str(path)]) == 0
        capsys.readouterr()
        assert main(["replay", str(path)]) == 0
        out = capsys.readouterr().out
        assert "replayed" in out
        assert "time breakdown" in out

    def test_replay_missing_file(self):
        with pytest.raises(FileNotFoundError):
            main(["replay", "/nonexistent/trace.txt"])


class TestFaults:
    def test_run_prints_reliability_report(self, capsys):
        assert main(
            [
                "faults",
                "run",
                "gemm",
                "--scale",
                "0.01",
                "--seed",
                "42",
                "--p-per-step",
                "2e-6",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "injected" in out
        assert "SDC" in out
        assert "policy   : retry" in out

    def test_run_engines_print_identical_reports(self, capsys):
        argv = ["faults", "run", "gemm", "--scale", "0.01",
                "--seed", "3", "--p-per-step", "2e-6"]
        assert main(argv) == 0
        scalar_out = capsys.readouterr().out
        assert main(argv + ["--engine", "vector"]) == 0
        vector_out = capsys.readouterr().out
        assert scalar_out == vector_out

    def test_campaign_writes_json_report(self, tmp_path, capsys):
        import json

        target = tmp_path / "campaign.json"
        assert main(
            [
                "faults",
                "campaign",
                "gemm",
                "--scale",
                "0.01",
                "--runs",
                "3",
                "--p-per-step",
                "2e-6",
                "-o",
                str(target),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "observed" in out
        payload = json.loads(target.read_text())
        assert payload["n_runs"] == 3
        assert len(payload["runs"]) == 3

    def test_rejects_bad_policy_parameters(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "faults",
                    "run",
                    "gemm",
                    "--scale",
                    "0.01",
                    "--max-retries",
                    "0",
                ]
            )

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["faults", "run", "cholesky"])


class TestWorkloadsListing:
    def test_lists_all_suites(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("gemm", "mvt", "mlp", "bert", "trmm", "power_iter"):
            assert name in out
        for suite in ("polybench", "dnn", "extra"):
            assert suite in out


# ----------------------------------------------------------------------
# sweep robustness: per-cell timeouts and inert-flag warnings
# ----------------------------------------------------------------------
import time as _time

import repro.cli as _cli

_REAL_SWEEP_WORKER = _cli._sweep_worker


def _hang_one_cell_worker(job):
    """Sweep worker that hangs on exactly one (platform, workload) cell.

    Top level so the pool can pickle it by reference; the forked child
    inherits the monkeypatched ``repro.cli._sweep_worker`` binding.
    """
    pname, wname, _scale = job
    if (pname, wname) == ("ELP2IM", "atax"):
        _time.sleep(120.0)
    return _REAL_SWEEP_WORKER(job)


class TestSweepRobustness:
    def test_job_timeout_surfaces_instead_of_hanging(
        self, capsys, monkeypatch
    ):
        monkeypatch.setattr(_cli, "_sweep_worker", _hang_one_cell_worker)
        rc = main(
            [
                "sweep",
                "--workloads",
                "atax",
                "--scale",
                "0.05",
                "--jobs",
                "2",
                "--job-timeout",
                "3",
            ]
        )
        captured = capsys.readouterr()
        assert rc == 1  # a timed-out cell fails the sweep loudly
        assert "JobTimeout: ELP2IM/atax exceeded 3s" in captured.err
        # The stuck platform's row says so; the others still report.
        assert "timeout" in captured.out
        assert "StPIM" in captured.out
        assert "CPU-RM" in captured.out

    def test_generous_timeout_passes_through_the_pool_path(self, capsys):
        rc = main(
            [
                "sweep",
                "--workloads",
                "atax",
                "--scale",
                "0.05",
                "--jobs",
                "2",
                "--job-timeout",
                "300",
            ]
        )
        captured = capsys.readouterr()
        assert rc == 0
        assert "JobTimeout" not in captured.err
        assert "StPIM" in captured.out

    @pytest.mark.parametrize(
        "flags",
        [["--stream"], ["--chunk-vpcs", "512"]],
    )
    def test_inert_stream_flags_warn_on_stderr(self, capsys, flags):
        rc = main(
            ["sweep", "--workloads", "atax", "--scale", "0.05", *flags]
        )
        captured = capsys.readouterr()
        assert rc == 0
        assert "have no effect here" in captured.err

    def test_no_warning_without_the_inert_flags(self, capsys):
        assert main(["sweep", "--workloads", "atax", "--scale", "0.05"]) == 0
        assert "no effect" not in capsys.readouterr().err
