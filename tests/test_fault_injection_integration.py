"""Integration: fault injection through the mat and device layers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import (
    VPC,
    VPCTrace,
    read_trace_binary,
    write_trace_binary,
)
from repro.rm.address import DeviceGeometry
from repro.rm.bank import BankConfig
from repro.rm.faults import FaultInjector, FaultyRacetrack, ShiftFaultConfig
from repro.rm.mat import Mat, MatConfig
from repro.rm.subarray import SubarrayConfig
from repro.core.placement import Placer, PlacementPolicy


def _tiny_geometry() -> DeviceGeometry:
    mat = MatConfig(
        save_tracks=16,
        transfer_tracks=16,
        domains_per_track=64,
        word_bits=8,
        ports_per_track=2,
    )
    return DeviceGeometry(
        banks=2,
        pim_banks=1,
        bank=BankConfig(
            subarrays=4,
            subarray=SubarrayConfig(mats=2, pim_mats=1, mat=mat),
            pim_bank=True,
        ),
    )


def _faulty_mat(p_per_step: float, seed: int = 1) -> Mat:
    injector = FaultInjector(ShiftFaultConfig(p_per_step=p_per_step), seed)
    mat = Mat(
        MatConfig(
            save_tracks=8,
            transfer_tracks=0,
            domains_per_track=32,
            word_bits=8,
            ports_per_track=2,
        ),
        track_factory=lambda n, ports: FaultyRacetrack(
            n, ports=ports, injector=injector
        ),
    )
    mat.injector = injector  # test-side handle
    return mat


class TestFaultyMats:
    def test_fault_free_factory_behaves_normally(self):
        mat = _faulty_mat(0.0)
        mat.write_vector(0, 0, [9, 8, 7])
        assert mat.read_vector(0, 0, 3) == [9, 8, 7]
        assert mat.injector.injected == 0

    def test_heavy_faults_corrupt_reads(self):
        """With an absurd fault rate, word accesses visibly corrupt —
        either wrong data or a boundary violation a real device would
        flag — the failure modes guard-domain schemes exist for."""
        corrupted = False
        for seed in range(30):
            mat = _faulty_mat(0.3, seed)
            try:
                mat.write_vector(0, 0, [0xAA, 0x55, 0xFF, 0x00])
                readback = mat.read_vector(0, 0, 4)
            except IndexError:
                # Drift pushed an access outside the data region: a
                # detected (not silent) fault.
                corrupted = True
                break
            if readback != [0xAA, 0x55, 0xFF, 0x00]:
                corrupted = True
                assert mat.injector.injected > 0
                break
        assert corrupted, "no corruption across 30 seeds at 30% rate"

    def test_misalignment_is_observable(self):
        """The drift that guard domains would detect is exposed."""
        for seed in range(20):
            mat = _faulty_mat(0.4, seed=seed)
            try:
                mat.write_vector(0, 0, [1, 2, 3, 4, 5])
                mat.read_vector(0, 0, 5)
            except IndexError:
                pass
            tracks = [mat.save_track(i) for i in range(8)]
            drifts = [getattr(t, "misalignment", 0) for t in tracks]
            if any(d != 0 for d in drifts):
                return
        assert False, "no drift observed across 20 seeds at 40% rate"

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_property_zero_rate_never_corrupts(self, seed):
        mat = _faulty_mat(0.0, seed)
        values = [(seed * 7 + i) % 256 for i in range(6)]
        mat.write_vector(0, 2, values)
        assert mat.read_vector(0, 2, 6) == values


class TestBinaryTraces:
    def test_roundtrip(self, tmp_path):
        trace = VPCTrace(
            [
                VPC.mul(10, 20, 30, 40),
                VPC.smul(1, 2, 3, 4),
                VPC.add(5, 6, 7, 8),
                VPC.tran(100, 200, 300),
            ]
        )
        path = tmp_path / "trace.bin"
        write_trace_binary(trace, path)
        loaded = read_trace_binary(path)
        assert list(loaded) == list(trace)
        assert loaded.stats == trace.stats

    def test_size_is_link_capture(self, tmp_path):
        from repro.isa import VPC_ENCODED_BYTES

        trace = VPCTrace([VPC.tran(0, 1, 2)] * 10)
        path = tmp_path / "t.bin"
        write_trace_binary(trace, path)
        assert path.stat().st_size == 5 + 10 * VPC_ENCODED_BYTES

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"JUNK" * 10)
        with pytest.raises(ValueError, match="magic"):
            read_trace_binary(path)

    def test_truncation_detected(self, tmp_path):
        trace = VPCTrace([VPC.mul(1, 2, 3, 4)])
        path = tmp_path / "cut.bin"
        write_trace_binary(trace, path)
        data = path.read_bytes()
        path.write_bytes(data[:-3])
        with pytest.raises(ValueError, match="truncated"):
            read_trace_binary(path)


class TestPlacementBalance:
    @settings(max_examples=20, deadline=None)
    @given(
        rows=st.integers(min_value=1, max_value=32),
        cols=st.integers(min_value=1, max_value=16),
    )
    def test_property_distribute_is_balanced(self, rows, cols):
        """Round-robin placement never skews rows per subarray by more
        than one (when every row fits everywhere)."""
        placer = Placer(_tiny_geometry(), PlacementPolicy.DISTRIBUTE)
        try:
            handle = placer.place_matrix("A", rows, cols)
        except MemoryError:
            return
        per_subarray = {}
        for slices in handle.rows_placement:
            key = slices[0].subarray_key
            per_subarray[key] = per_subarray.get(key, 0) + 1
        counts = list(per_subarray.values())
        assert max(counts) - min(counts) <= 1
