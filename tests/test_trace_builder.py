"""Batched trace builder, vectorized lowering, scratch free lists.

Three contracts from the vectorized compile path:

* :class:`ColumnarTraceBuilder` assembles exactly the trace the
  record-at-a-time path would (round-trips are bit-identical);
* ``PimTask.to_trace(engine="columnar")`` emits byte-for-byte the same
  stream as the scalar reference lowering, for every shipped workload
  at multiple dataset scales;
* :class:`ScratchAllocator` recycles freed staging slots across
  operation boundaries (bounded scratch) and its batched entry points
  evolve the allocator state exactly like the scalar call sequence.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.device import StreamPIMDevice
from repro.core.task import PimTask, ScratchAllocator, TaskOp
from repro.isa.columnar import (
    MUL_BYTE,
    OPCODE_TO_BYTE,
    RECORD_DTYPE,
    TRAN_BYTE,
    ColumnarTrace,
    ColumnarTraceBuilder,
)
from repro.isa.encoding import NO_OPERAND_SENTINEL
from repro.isa.trace import VPCTrace
from repro.isa.vpc import VPC, VPCOpcode
from repro.workloads import (
    EXTRA_WORKLOADS,
    POLYBENCH,
    extra_workload,
    polybench_workload,
)

_FIELD_MAX = (1 << 40) - 2
addresses = st.integers(min_value=0, max_value=_FIELD_MAX)
sizes = st.integers(min_value=1, max_value=_FIELD_MAX)


@st.composite
def vpcs(draw):
    opcode = draw(st.sampled_from(list(VPCOpcode)))
    src2 = None if opcode is VPCOpcode.TRAN else draw(addresses)
    return VPC(opcode, draw(addresses), src2, draw(addresses), draw(sizes))


def _emit_scalar(builder, command):
    builder.emit(
        OPCODE_TO_BYTE[command.opcode],
        command.src1,
        command.src2,
        command.des,
        command.size,
    )


class TestBuilderUnit:
    def test_emit_matches_from_trace(self):
        commands = [
            VPC.mul(0, 8, 16, 4),
            VPC.smul(1, 8, 16, 4),
            VPC.add(0, 8, 16, 4),
            VPC.tran(16, 32, 4),
        ]
        builder = ColumnarTraceBuilder()
        for command in commands:
            _emit_scalar(builder, command)
        assert len(builder) == len(commands)
        built = builder.build()
        reference = ColumnarTrace.from_trace(VPCTrace(commands))
        assert built == reference
        assert built.to_bytes() == reference.to_bytes()

    def test_emit_block_broadcasts_scalars(self):
        builder = ColumnarTraceBuilder()
        builder.emit_block(MUL_BYTE, np.arange(5), 7, np.arange(5) + 10, 3)
        built = builder.build()
        assert list(built) == [
            VPC.mul(i, 7, i + 10, 3) for i in range(5)
        ]

    def test_emit_block_none_src2_means_tran(self):
        builder = ColumnarTraceBuilder()
        builder.emit_block(TRAN_BYTE, np.arange(3), None, 20, 2)
        built = builder.build()
        assert (built.src2 == NO_OPERAND_SENTINEL).all()
        assert list(built) == [VPC.tran(i, 20, 2) for i in range(3)]

    def test_chunk_growth_preserves_order(self):
        builder = ColumnarTraceBuilder(capacity=2)
        reference = VPCTrace()
        for i in range(100):
            command = VPC.tran(i, i + 1, 1)
            reference.append(command)
            _emit_scalar(builder, command)
            if i % 7 == 0:
                block = np.zeros(3, dtype=RECORD_DTYPE)
                block["opcode"] = MUL_BYTE
                block["src1"] = i
                block["src2"] = i + 1
                block["des"] = i + 2
                block["size"] = 1
                builder.emit_records(block)
                reference.extend(
                    VPC.mul(i, i + 1, i + 2, 1) for _ in range(3)
                )
        built = builder.build()
        expected = ColumnarTrace.from_trace(reference)
        assert built == expected
        assert built.to_bytes() == expected.to_bytes()

    def test_empty_build(self):
        built = ColumnarTraceBuilder().build()
        assert len(built) == 0
        assert built == ColumnarTrace.from_trace(VPCTrace())

    def test_sealed_builder_rejects_use(self):
        builder = ColumnarTraceBuilder()
        builder.build()
        with pytest.raises(RuntimeError, match="already built"):
            builder.emit(TRAN_BYTE, 0, None, 1, 1)
        with pytest.raises(RuntimeError, match="already built"):
            builder.build()

    @pytest.mark.parametrize(
        "record",
        [
            (0x7F, 0, 5, 1, 1),  # unknown opcode
            (MUL_BYTE, 0, 5, 1, 0),  # size < 1
            (MUL_BYTE, -1, 5, 1, 1),  # negative src1
            (MUL_BYTE, 0, NO_OPERAND_SENTINEL, 1, 1),  # sentinel non-TRAN
            (TRAN_BYTE, 0, 5, 1, 1),  # TRAN with a real src2
        ],
    )
    def test_invalid_records_rejected(self, record):
        builder = ColumnarTraceBuilder()
        block = np.array([record], dtype=RECORD_DTYPE)
        with pytest.raises(ValueError, match="invalid trace record"):
            builder.emit_records(block)

    def test_validation_reports_first_bad_index(self):
        block = np.zeros(4, dtype=RECORD_DTYPE)
        block["opcode"] = MUL_BYTE
        block["size"] = 1
        block["size"][2] = 0
        with pytest.raises(ValueError, match="emission index 2"):
            ColumnarTraceBuilder().emit_records(block)


class TestBuilderRoundTripProperties:
    @settings(max_examples=100, deadline=None)
    @given(st.lists(vpcs(), max_size=30))
    def test_builder_matches_scalar_writer(self, commands):
        builder = ColumnarTraceBuilder(capacity=4)
        for command in commands:
            _emit_scalar(builder, command)
        built = builder.build()
        assert built.to_bytes() == ColumnarTrace.from_trace(
            VPCTrace(commands)
        ).to_bytes()

    @settings(max_examples=100, deadline=None)
    @given(st.lists(vpcs(), max_size=30))
    def test_scalar_iterate_rebuild_is_bit_identical(self, commands):
        """builder -> columnar -> scalar iterate -> rebuild round-trip."""
        builder = ColumnarTraceBuilder(capacity=4)
        for command in commands:
            _emit_scalar(builder, command)
        built = builder.build()
        rebuilt = ColumnarTraceBuilder()
        for command in built:  # scalar VPC objects
            _emit_scalar(rebuilt, command)
        assert rebuilt.build().to_bytes() == built.to_bytes()

    @settings(max_examples=100, deadline=None)
    @given(st.lists(vpcs(), max_size=30))
    def test_len_iter_equality_consistency(self, commands):
        trace = VPCTrace(commands)
        cols = ColumnarTrace.from_trace(trace)
        assert len(cols) == len(trace)
        assert list(cols) == list(trace)
        assert cols == ColumnarTrace.from_trace(VPCTrace(commands))


def _differential_specs():
    for scale in (0.01, 0.04):
        for name in POLYBENCH:
            spec = polybench_workload(name, scale=scale)
            if spec.build is not None:
                yield pytest.param(spec, id=f"{name}-{scale}")
        for name in EXTRA_WORKLOADS:
            spec = extra_workload(name, scale=scale)
            if spec.build is not None:
                yield pytest.param(spec, id=f"{name}-{scale}")
    from repro.workloads.dnn import (
        BERTShape,
        MLPShape,
        bert_spec,
        mlp_spec,
    )

    yield pytest.param(
        mlp_spec(MLPShape(batch=4, layers=(16, 12, 8))), id="mlp-small"
    )
    yield pytest.param(
        mlp_spec(MLPShape(batch=8, layers=(24, 16, 12))), id="mlp-medium"
    )
    yield pytest.param(
        bert_spec(BERTShape(seq_len=4, hidden=8, ffn=16, heads=2, layers=1)),
        id="bert-small",
    )
    yield pytest.param(
        bert_spec(
            BERTShape(seq_len=8, hidden=16, ffn=32, heads=2, layers=1)
        ),
        id="bert-medium",
    )


class TestLoweringDifferential:
    """engine="columnar" must emit the scalar lowering's exact bytes."""

    @pytest.mark.parametrize("spec", _differential_specs())
    def test_workload_traces_bit_identical(self, spec):
        scalar_trace = spec.build_task(seed=7).to_trace(engine="scalar")
        columnar_trace = spec.build_task(seed=7).to_trace(engine="columnar")
        assert isinstance(scalar_trace, VPCTrace)
        assert isinstance(columnar_trace, ColumnarTrace)
        assert (
            ColumnarTrace.from_trace(scalar_trace).to_bytes()
            == columnar_trace.to_bytes()
        )

    def test_gather_matmul_path_bit_identical(self):
        """Matmul whose B operand cannot be mirrored (used elsewhere)
        exercises the per-element gather lowering."""

        def build():
            rng = np.random.default_rng(11)
            task = PimTask(StreamPIMDevice())
            task.add_matrix("A", rng.integers(0, 50, size=(6, 5)))
            task.add_matrix("B", rng.integers(0, 50, size=(5, 7)))
            task.add_matrix("B2", rng.integers(0, 50, size=(5, 7)))
            task.add_matrix("C", shape=(6, 7))
            task.add_matrix("D", shape=(5, 7))
            task.add_operation(TaskOp.MAT_ADD, "B", "B2", "D")
            task.add_operation(TaskOp.MATMUL, "A", "B", "C")
            return task

        scalar_trace = build().to_trace(engine="scalar")
        columnar_trace = build().to_trace(engine="columnar")
        assert (
            ColumnarTrace.from_trace(scalar_trace).to_bytes()
            == columnar_trace.to_bytes()
        )

    def test_unknown_engine_rejected(self):
        task = PimTask(StreamPIMDevice())
        task.add_matrix("A", np.ones((2, 2), dtype=np.int64))
        task.add_matrix("B", np.ones((2, 2), dtype=np.int64))
        task.add_matrix("C", shape=(2, 2))
        task.add_operation(TaskOp.MAT_ADD, "A", "B", "C")
        with pytest.raises(ValueError, match="unknown trace engine"):
            task.to_trace(engine="fortran")


class _Slice:
    """Minimal stand-in carrying the subarray key near()/unique() read."""

    def __init__(self, bank, subarray):
        self.subarray_key = (bank, subarray)


def _allocator():
    return ScratchAllocator(PimTask(StreamPIMDevice())._build_placer())


class TestScratchFreeList:
    def test_recycle_reuses_freed_slots(self):
        alloc = _allocator()
        row = _Slice(0, 0)
        first = [alloc.near(row, 8) for _ in range(4)]
        assert len(set(first)) == 4
        cursor_after_first = dict(alloc._cursors)
        alloc.recycle()
        second = [alloc.near(row, 8) for _ in range(4)]
        # Same addresses, same order, and no new capacity consumed.
        assert second == first
        assert alloc._cursors == cursor_after_first

    def test_cursor_bounded_across_many_operations(self):
        """The regression: before the free list, every operation
        advanced the cursor and long chains exhausted the subarray."""
        alloc = _allocator()
        row = _Slice(0, 0)
        for _ in range(4):
            alloc.near(row, 16)
        consumed_one_op = dict(alloc._cursors)
        for _ in range(200):
            alloc.recycle()
            for _ in range(4):
                alloc.near(row, 16)
        assert alloc._cursors == consumed_one_op

    def test_exhaustion_without_recycle(self):
        alloc = _allocator()
        row = _Slice(0, 0)
        capacity = alloc._placer.subarray_capacity_words
        with pytest.raises(MemoryError, match="scratch exhausted"):
            # Each new size class allocates fresh words; without
            # recycling nothing is ever returned.
            for words in range(1, capacity + 2):
                alloc.near(row, words)

    def test_unique_never_reuses_freed_addresses(self):
        alloc = _allocator()
        row = _Slice(0, 0)
        staged = alloc.near(row, 4)
        alloc.recycle()
        constant = alloc.unique(row, 4)
        assert constant != staged
        # The freed staging slot is still first in line for near().
        assert alloc.near(row, 4) == staged

    def test_free_lists_are_per_size_class(self):
        alloc = _allocator()
        row = _Slice(0, 0)
        small = alloc.near(row, 2)
        alloc.recycle()
        large = alloc.near(row, 32)
        assert large != small
        assert alloc.near(row, 2) == small


_KEYS = [(0, 0), (0, 1), (1, 0)]
calls_strategy = st.lists(
    st.tuples(
        st.sampled_from(range(len(_KEYS))),
        st.integers(min_value=1, max_value=5),
    ),
    min_size=1,
    max_size=40,
)


class TestBlockParity:
    """near_block/unique_block == the equivalent scalar call sequence,
    including end state (cursors, pools, free lists)."""

    @settings(max_examples=60, deadline=None)
    @given(calls_strategy, calls_strategy)
    def test_near_block_parity_with_recycle(self, batch_a, batch_b):
        scalar = _allocator()
        block = _allocator()
        for batch in (batch_a, batch_b):
            expected = [
                scalar.near(_Slice(*_KEYS[ki]), words)
                for ki, words in batch
            ]
            scalar.recycle()
            got = block.near_block(
                np.array(
                    [
                        ScratchAllocator.encode_key(*_KEYS[ki])
                        for ki, _ in batch
                    ]
                ),
                np.array([words for _, words in batch]),
            )
            block.recycle()
            assert got.tolist() == expected
        assert block._cursors == scalar._cursors
        assert block._free == scalar._free

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.sampled_from(range(len(_KEYS))), max_size=12))
    def test_unique_block_parity(self, key_ids):
        scalar = _allocator()
        block = _allocator()
        expected = [
            scalar.unique(_Slice(*_KEYS[ki]), 3) for ki in key_ids
        ]
        got = block.unique_block(
            np.array(
                [ScratchAllocator.encode_key(*_KEYS[ki]) for ki in key_ids],
                dtype=np.int64,
            ),
            3,
        )
        assert got.tolist() == expected
        assert block._cursors == scalar._cursors

    def test_near_block_2d_broadcast(self):
        scalar = _allocator()
        block = _allocator()
        keys = np.full((3, 2), ScratchAllocator.encode_key(0, 0))
        sizes = np.array([[4, 1]] * 3)
        expected = [
            scalar.near(_Slice(0, 0), int(words))
            for words in sizes.ravel()
        ]
        assert block.near_block(keys, sizes).tolist() == expected
