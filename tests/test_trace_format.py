"""Hardened trace readers, VPC operand validation, encode round-trips."""

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import TraceFormatError
from repro.isa.encoding import VPC_ENCODED_BYTES, decode_vpc, encode_vpc
from repro.isa.trace import (
    VPCTrace,
    read_trace,
    read_trace_binary,
    write_trace,
    write_trace_binary,
)
from repro.isa.vpc import VPC, VPCOpcode

_MAGIC = b"VPCT\x01"


def binary_bytes(trace):
    buffer = io.BytesIO()
    write_trace_binary(trace, buffer)
    return buffer.getvalue()


class TestBinaryReaderErrors:
    def test_bad_magic_reports_offset_zero(self):
        with pytest.raises(TraceFormatError) as excinfo:
            read_trace_binary(io.BytesIO(b"NOPE\x01" + b"\x00" * 21))
        assert excinfo.value.offset == 0
        assert "magic" in str(excinfo.value)

    def test_empty_file_is_bad_magic(self):
        with pytest.raises(TraceFormatError) as excinfo:
            read_trace_binary(io.BytesIO(b""))
        assert excinfo.value.offset == 0

    def test_truncated_record_reports_byte_offset(self):
        trace = VPCTrace([VPC.tran(0, 8, 4), VPC.add(0, 8, 16, 4)])
        data = binary_bytes(trace)
        with pytest.raises(TraceFormatError) as excinfo:
            read_trace_binary(io.BytesIO(data[:-7]))
        # The second record starts after magic + one full record.
        assert excinfo.value.offset == len(_MAGIC) + VPC_ENCODED_BYTES
        assert "truncated" in str(excinfo.value)
        assert f"offset {excinfo.value.offset}" in str(excinfo.value)

    def test_trailing_garbage_is_rejected(self):
        data = binary_bytes(VPCTrace([VPC.tran(0, 8, 4)]))
        with pytest.raises(TraceFormatError):
            read_trace_binary(io.BytesIO(data + b"\xff\xff"))

    def test_unknown_opcode_byte_reports_offset(self):
        good = binary_bytes(VPCTrace([VPC.tran(0, 8, 4)]))
        corrupt = bytearray(good)
        corrupt[len(_MAGIC)] = 0x7F
        with pytest.raises(TraceFormatError) as excinfo:
            read_trace_binary(io.BytesIO(bytes(corrupt)))
        assert excinfo.value.offset == len(_MAGIC)
        assert "0x7f" in str(excinfo.value)

    def test_error_is_a_value_error(self):
        # Callers that predate the dedicated type still catch it.
        assert issubclass(TraceFormatError, ValueError)


class TestTextReaderErrors:
    def test_bad_line_reports_line_number(self):
        source = io.StringIO("# header\nTRAN 0 8 4\nMUL 1 2 oops 4\n")
        with pytest.raises(TraceFormatError) as excinfo:
            read_trace(source)
        assert excinfo.value.line == 3
        assert "line 3" in str(excinfo.value)

    def test_wrong_field_count_is_flagged(self):
        with pytest.raises(TraceFormatError):
            read_trace(io.StringIO("TRAN 0 8\n"))
        with pytest.raises(TraceFormatError):
            read_trace(io.StringIO("ADD 0 8 16\n"))

    def test_unknown_opcode_is_flagged(self):
        with pytest.raises(TraceFormatError):
            read_trace(io.StringIO("FROB 0 8 16 4\n"))

    def test_comments_and_blanks_are_skipped(self):
        source = io.StringIO("# c\n\nTRAN 0 8 4\n")
        assert len(read_trace(source)) == 1


class TestRoundTrips:
    def test_text_round_trip(self, tmp_path):
        trace = VPCTrace(
            [
                VPC.mul(0, 8, 16, 4),
                VPC.smul(1, 8, 16, 4),
                VPC.add(0, 8, 16, 4),
                VPC.tran(16, 32, 4),
            ]
        )
        path = tmp_path / "t.trace"
        write_trace(trace, path)
        assert list(read_trace(path)) == list(trace)

    def test_binary_round_trip(self, tmp_path):
        trace = VPCTrace([VPC.tran(0, 8, 4), VPC.mul(0, 8, 16, 4)])
        path = tmp_path / "t.bin"
        write_trace_binary(trace, path)
        assert list(read_trace_binary(path)) == list(trace)


class TestVPCValidation:
    def test_float_operand_rejected(self):
        with pytest.raises(TypeError):
            VPC.tran(0.5, 8, 4)
        with pytest.raises(TypeError):
            VPC.mul(0, 8, 16, 4.0)

    def test_string_operand_rejected(self):
        with pytest.raises(TypeError):
            VPC.add("0", 8, 16, 4)

    def test_bool_operand_rejected(self):
        with pytest.raises(TypeError):
            VPC.tran(True, 8, 4)

    def test_opcode_type_checked(self):
        with pytest.raises(TypeError):
            VPC("MUL", 0, 8, 16, 4)

    def test_numpy_integers_normalised(self):
        vpc = VPC.tran(np.int64(3), np.int32(9), np.uint16(4))
        assert vpc.src1 == 3 and type(vpc.src1) is int
        assert type(vpc.des) is int and type(vpc.size) is int
        # and the binary encoder accepts the result
        assert decode_vpc(encode_vpc(vpc)) == VPC.tran(3, 9, 4)

    def test_size_must_be_positive(self):
        with pytest.raises(ValueError):
            VPC.tran(0, 8, 0)
        with pytest.raises(ValueError):
            VPC.mul(0, 8, 16, -1)

    def test_addresses_must_be_non_negative(self):
        with pytest.raises(ValueError):
            VPC.tran(-1, 8, 4)
        with pytest.raises(ValueError):
            VPC.add(0, -8, 16, 4)

    def test_src2_is_none_iff_tran(self):
        with pytest.raises(ValueError):
            VPC(VPCOpcode.TRAN, 0, 8, 16, 4)
        with pytest.raises(ValueError):
            VPC(VPCOpcode.MUL, 0, None, 16, 4)


_FIELD_MAX = (1 << 40) - 2
addresses = st.integers(min_value=0, max_value=_FIELD_MAX)
sizes = st.integers(min_value=1, max_value=_FIELD_MAX)


@st.composite
def vpcs(draw):
    opcode = draw(st.sampled_from(list(VPCOpcode)))
    src2 = None if opcode is VPCOpcode.TRAN else draw(addresses)
    return VPC(opcode, draw(addresses), src2, draw(addresses), draw(sizes))


class TestEncodingProperties:
    @settings(max_examples=200, deadline=None)
    @given(vpcs())
    def test_encode_decode_round_trip(self, vpc):
        packet = encode_vpc(vpc)
        assert len(packet) == VPC_ENCODED_BYTES
        assert decode_vpc(packet) == vpc

    @settings(max_examples=50, deadline=None)
    @given(st.lists(vpcs(), max_size=20))
    def test_binary_trace_round_trip(self, commands):
        trace = VPCTrace(commands)
        restored = read_trace_binary(io.BytesIO(binary_bytes(trace)))
        assert list(restored) == commands
        assert restored.stats == trace.stats
