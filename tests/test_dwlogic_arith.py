"""Tests for domain-wall adders, multiplier, duplicator, circle adder."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dwlogic.adder import AdderTree, full_adder, ripple_carry_add
from repro.dwlogic.bitutils import bits_to_int, int_to_bits
from repro.dwlogic.circle_adder import CircleAdder
from repro.dwlogic.diode import DiodeDirectionError, DomainWallDiode
from repro.dwlogic.duplicator import Duplicator
from repro.dwlogic.gates import GateCounter
from repro.dwlogic.multiplier import ShiftMultiplier


class TestFullAdder:
    @pytest.mark.parametrize("a", [0, 1])
    @pytest.mark.parametrize("b", [0, 1])
    @pytest.mark.parametrize("cin", [0, 1])
    def test_exhaustive(self, a, b, cin):
        s, carry = full_adder(a, b, cin)
        assert 2 * carry + s == a + b + cin

    def test_gate_count_is_eleven_primitives(self):
        counter = GateCounter()
        full_adder(1, 1, 1, counter)
        assert counter.total == 11  # 2 XOR (4 each) + 3 NAND


class TestRippleCarry:
    @given(
        st.integers(min_value=0, max_value=2**12 - 1),
        st.integers(min_value=0, max_value=2**12 - 1),
    )
    def test_property_matches_integer_addition(self, a, b):
        out = ripple_carry_add(int_to_bits(a, 12), int_to_bits(b, 12))
        assert bits_to_int(out) == a + b

    def test_unequal_widths_zero_extend(self):
        out = ripple_carry_add(int_to_bits(3, 2), int_to_bits(200, 8))
        assert bits_to_int(out) == 203

    def test_carry_in(self):
        out = ripple_carry_add(int_to_bits(1, 1), int_to_bits(1, 1), cin=1)
        assert bits_to_int(out) == 3

    def test_result_one_bit_wider(self):
        out = ripple_carry_add(int_to_bits(255, 8), int_to_bits(255, 8))
        assert len(out) == 9
        assert bits_to_int(out) == 510

    def test_rejects_empty_operands(self):
        with pytest.raises(ValueError):
            ripple_carry_add([], [])


class TestAdderTree:
    def test_depth_log2(self):
        assert AdderTree(1).depth == 0
        assert AdderTree(2).depth == 1
        assert AdderTree(8).depth == 3
        assert AdderTree(9).depth == 4

    def test_adder_count(self):
        assert AdderTree(8).adder_count == 7
        assert AdderTree(1).adder_count == 0

    @given(
        st.lists(
            st.integers(min_value=0, max_value=255), min_size=1, max_size=16
        )
    )
    def test_property_sums_any_operand_count(self, values):
        tree = AdderTree(len(values))
        assert tree.sum_ints(values, width=8) == sum(values)

    def test_odd_operand_counts(self):
        tree = AdderTree(5)
        assert tree.sum_ints([1, 2, 3, 4, 5], width=4) == 15

    def test_wrong_operand_count_rejected(self):
        with pytest.raises(ValueError):
            AdderTree(3).sum_bits([[1], [0]])

    def test_rejects_zero_operands(self):
        with pytest.raises(ValueError):
            AdderTree(0)


class TestDiode:
    def test_forward_passes(self):
        diode = DomainWallDiode(forward=1)
        diode.propagate(1)
        assert diode.pass_count == 1

    def test_reverse_blocked(self):
        diode = DomainWallDiode(forward=1)
        with pytest.raises(DiodeDirectionError):
            diode.propagate(-1)
        assert diode.block_count == 1

    def test_disabled_passes_both_ways(self):
        diode = DomainWallDiode(forward=1, enabled=False)
        diode.propagate(-1)
        diode.propagate(1)
        assert diode.pass_count == 2

    def test_enable_disable_toggle(self):
        diode = DomainWallDiode()
        diode.disable()
        assert diode.allows(-1)
        diode.enable()
        assert not diode.allows(-1)

    def test_rejects_bad_direction(self):
        with pytest.raises(ValueError):
            DomainWallDiode(forward=0)
        with pytest.raises(ValueError):
            DomainWallDiode().allows(2)


class TestDuplicator:
    def test_duplicate_preserves_original(self):
        dup = Duplicator()
        dup.load([1, 0, 1, 1])
        replica = dup.duplicate()
        assert replica == [1, 0, 1, 1]
        assert dup.duplicate() == [1, 0, 1, 1]  # still loaded

    def test_n_bit_multiplication_needs_n_duplications(self):
        # Section III-C: "an n-bit scalar multiplication needs to perform
        # duplication by n times".
        dup = Duplicator()
        dup.load(int_to_bits(0xA5, 8))
        replicas = dup.duplicate_n(8)
        assert len(replicas) == 8
        assert dup.duplication_count == 8
        assert dup.step_count == 8 * Duplicator.STEPS_PER_DUPLICATION

    def test_drain_empties(self):
        dup = Duplicator()
        dup.load([1])
        assert dup.drain() == [1]
        assert not dup.loaded
        with pytest.raises(RuntimeError):
            dup.duplicate()

    def test_duplicate_without_load_raises(self):
        with pytest.raises(RuntimeError):
            Duplicator().duplicate()

    def test_load_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            Duplicator().load([0, 2])
        with pytest.raises(ValueError):
            Duplicator().load([])

    def test_duplicate_n_rejects_negative(self):
        dup = Duplicator()
        dup.load([1])
        with pytest.raises(ValueError):
            dup.duplicate_n(-1)

    def test_diode_used_on_return_path(self):
        dup = Duplicator()
        dup.load([1, 0])
        dup.duplicate()
        assert dup.diode.pass_count == 1


class TestShiftMultiplier:
    @pytest.mark.parametrize("a", [0, 1, 7, 15])
    @pytest.mark.parametrize("b", [0, 1, 9, 15])
    def test_exhaustive_4bit(self, a, b):
        assert ShiftMultiplier(4).multiply(a, b) == a * b

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
    )
    def test_property_8bit(self, a, b):
        assert ShiftMultiplier(8).multiply(a, b) == a * b

    def test_partial_products_shifted(self):
        m = ShiftMultiplier(4)
        products = m.partial_products(int_to_bits(3, 4), int_to_bits(5, 4))
        values = [bits_to_int(p) for p in products]
        assert values == [3, 0, 12, 0]  # 3*1, 3*0<<1, 3*1<<2, 3*0<<3

    def test_counts_gates(self):
        counter = GateCounter()
        ShiftMultiplier(8).multiply(200, 100, counter)
        assert counter.total > 0

    def test_uses_duplicator_once_per_bit(self):
        m = ShiftMultiplier(8)
        m.multiply(3, 3)
        assert m.duplicator.duplication_count == 8

    def test_rejects_wrong_operand_width(self):
        with pytest.raises(ValueError):
            ShiftMultiplier(4).partial_products([1, 0], [1, 0, 0, 0])

    def test_rejects_oversized_int(self):
        with pytest.raises(ValueError):
            ShiftMultiplier(4).multiply(16, 1)


class TestCircleAdder:
    def test_accumulates_stream(self):
        circle = CircleAdder(16)
        for value in (3, 9, 250):
            circle.accumulate(value)
        assert circle.value == 262

    def test_dot_product_tail(self):
        circle = CircleAdder(32)
        products = [a * b for a, b in zip([3, 5, 7], [11, 13, 17])]
        assert circle.dot_product_tail(products) == 3 * 11 + 5 * 13 + 7 * 17

    def test_overflow_detected_not_wrapped(self):
        circle = CircleAdder(4)
        circle.accumulate(15)
        with pytest.raises(OverflowError):
            circle.accumulate(1)

    def test_reset(self):
        circle = CircleAdder(8)
        circle.accumulate(200)
        circle.reset()
        assert circle.value == 0
        assert circle.accumulate_count == 0

    def test_four_steps_per_accumulation(self):
        circle = CircleAdder(16)
        circle.accumulate(1)
        circle.accumulate(2)
        assert circle.step_count == 2 * CircleAdder.STEPS_PER_ACCUMULATE
        assert circle.diode.pass_count == 2

    def test_add_once_bypasses_feedback(self):
        # Section III-C: the circle adder doubles as a plain adder.
        circle = CircleAdder(8)
        out = circle.add_once(int_to_bits(100, 7), int_to_bits(55, 6))
        assert bits_to_int(out) == 155
        assert circle.value == 0  # accumulator untouched
        assert circle.diode.pass_count == 0

    def test_rejects_oversized_operand(self):
        with pytest.raises(ValueError):
            CircleAdder(4).accumulate_bits([0] * 5)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            CircleAdder(8).accumulate(-1)

    @settings(max_examples=40)
    @given(
        st.lists(
            st.integers(min_value=0, max_value=65_025),  # 255*255
            min_size=1,
            max_size=64,
        )
    )
    def test_property_accumulation_matches_sum(self, products):
        circle = CircleAdder(32)
        assert circle.dot_product_tail(products) == sum(products)


class TestTransverseReadAdder:
    """The CORUSCANT-mechanism adder, for comparison with the DW one."""

    @pytest.mark.parametrize("a", [0, 1, 127, 255])
    @pytest.mark.parametrize("b", [0, 1, 128, 255])
    def test_exhaustive_corners(self, a, b):
        from repro.dwlogic.tr_adder import tr_add

        assert tr_add(a, b) == a + b

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
    )
    def test_property_matches_integer_addition(self, a, b):
        from repro.dwlogic.tr_adder import tr_add

        assert tr_add(a, b) == a + b

    def test_one_tr_per_bit(self):
        from repro.dwlogic.tr_adder import TransverseReadAdder, TROpCounts

        counts = TROpCounts()
        TransverseReadAdder(8).add(5, 9, counts)
        assert counts.transverse_reads == 8

    def test_writes_dominate_the_op_mix(self):
        """The CORUSCANT story in miniature: the sensing is cheap (n TR
        ops) but the result write-back is as large — and writes cost
        ~2.6x a read in time and ~3x in energy (Table III)."""
        from repro.dwlogic.tr_adder import TransverseReadAdder, TROpCounts
        from repro.rm.timing import RMTimingConfig

        counts = TROpCounts()
        TransverseReadAdder(8).add(200, 100, counts)
        t = RMTimingConfig()
        write_ns = counts.writes * t.write_ns
        read_ns = counts.transverse_reads * t.read_ns
        assert write_ns > 2 * read_ns

    def test_reuse_across_additions(self):
        from repro.dwlogic.tr_adder import TransverseReadAdder

        adder = TransverseReadAdder(8)
        assert adder.add(3, 4) == 7
        assert adder.add(250, 250) == 500

    def test_width_validated(self):
        from repro.dwlogic.tr_adder import TransverseReadAdder

        with pytest.raises(ValueError):
            TransverseReadAdder(0)
