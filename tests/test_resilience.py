"""Tests for the fault-injection / recovery subsystem (repro.resilience).

The load-bearing properties:

* with fault probability zero, a fault-injected run is bit-identical to
  a plain ``execute_trace`` on both engines (stats AND word stores);
* under one seed, the scalar and vector engines produce equal
  ``ReliabilityRunReport``s, equal stats, and equal stores;
* the default retry policy repairs every guard-detected fault, so the
  only corruption left is the undetected (SDC) fraction;
* campaign sampling is consistent with the analytic
  ``RedundancyAnalysis`` hop/fault model, and sequential == parallel.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.redundancy import RedundancyAnalysis, RedundancyConfig
from repro.isa.columnar import ColumnarTrace
from repro.resilience import (
    FaultCampaignConfig,
    RecoveryPolicy,
    build_fault_plan,
    build_session,
    corrupt_words,
    run_campaign,
    run_with_faults,
)
from repro.rm.faults import FaultInjector, FaultyRacetrack, ShiftFaultConfig
from repro.rm.nanowire import ShiftError
from repro.sim.errors import SimulationFault, trace_byte_offset
from repro.workloads import polybench_workload

SCALE = 0.01

ZERO = FaultCampaignConfig(faults=ShiftFaultConfig(p_per_step=0.0))
FAULTY = FaultCampaignConfig(faults=ShiftFaultConfig(p_per_step=2e-6))
NOISY = ShiftFaultConfig(p_per_step=5e-6, guard_detection=0.9)


def _task(name: str = "gemm"):
    return polybench_workload(name, scale=SCALE).build_task()


@pytest.fixture(scope="module")
def gemm_trace():
    return _task().to_trace()


class TestZeroProbabilityIdentity:
    @pytest.mark.parametrize("engine", ["scalar", "vector"])
    def test_bit_identical_to_plain_run(self, engine, gemm_trace):
        plain_device = _task().device
        plain = plain_device.execute_trace(gemm_trace, engine=engine)
        device = _task().device
        stats, report = run_with_faults(
            device, gemm_trace, config=ZERO, seed=7, engine=engine
        )
        assert stats == plain
        assert device.store._words == plain_device.store._words
        assert report.injected == 0
        assert report.undetected == 0
        assert report.recovery_ns == 0.0
        assert report.recovery_pj == 0.0


class TestEngineParity:
    @pytest.mark.parametrize(
        "config",
        [
            FAULTY,
            FaultCampaignConfig(
                faults=NOISY, policy=RecoveryPolicy.DEGRADE
            ),
        ],
        ids=["retry", "degrade"],
    )
    def test_seeded_runs_match_across_engines(self, config, gemm_trace):
        results = {}
        for engine in ("scalar", "vector"):
            device = _task().device
            stats, report = run_with_faults(
                device, gemm_trace, config=config, seed=42, engine=engine
            )
            results[engine] = (stats, report, device.store._words)
        s_stats, s_report, s_store = results["scalar"]
        v_stats, v_report, v_store = results["vector"]
        assert s_report == v_report
        assert s_stats == v_stats
        assert s_store == v_store
        assert s_report.injected > 0  # the config actually injected

    def test_abort_parity_and_fault_location(self, gemm_trace):
        config = FaultCampaignConfig(
            faults=NOISY, policy=RecoveryPolicy.ABORT
        )
        stores = {}
        errors = {}
        for engine in ("scalar", "vector"):
            device = _task().device
            session = build_session(device, gemm_trace, config, 42)
            assert session.abort_index is not None
            with pytest.raises(SimulationFault) as excinfo:
                device.execute_trace(
                    gemm_trace, engine=engine, faults=session
                )
            stores[engine] = device.store._words
            errors[engine] = excinfo.value
        assert stores["scalar"] == stores["vector"]
        scalar_err, vector_err = errors["scalar"], errors["vector"]
        assert str(scalar_err) == str(vector_err)
        assert scalar_err.index == vector_err.index
        assert scalar_err.offset == trace_byte_offset(scalar_err.index)
        assert scalar_err.line == scalar_err.index + 1


class TestRecoveryPolicies:
    def test_retry_repairs_every_detected_fault(self, gemm_trace):
        device = _task().device
        stats, report = run_with_faults(
            device, gemm_trace, config=FAULTY, seed=3
        )
        assert stats is not None
        assert report.injected > 0
        assert report.recovered == report.detected
        assert report.sdc_events <= report.undetected
        assert report.retries >= report.detected
        assert stats.time_breakdown.recovery_ns == report.recovery_ns
        assert stats.energy.recovery_pj == report.recovery_pj

    def test_recovery_charges_extend_plain_run(self, gemm_trace):
        plain = _task().device.execute_trace(gemm_trace)
        stats, report = run_with_faults(
            _task().device, gemm_trace, config=FAULTY, seed=3
        )
        assert report.recovery_ns > 0.0
        assert stats.time_ns == pytest.approx(
            plain.time_ns + report.recovery_ns
        )

    def test_abort_reports_stats_none(self, gemm_trace):
        config = FaultCampaignConfig(
            faults=NOISY, policy=RecoveryPolicy.ABORT
        )
        stats, report = run_with_faults(
            _task().device, gemm_trace, config=config, seed=42
        )
        assert stats is None
        assert report.aborted
        assert report.time_ns is None
        assert report.abort_index is not None

    def test_degrade_quarantines_faulty_subarrays(self, gemm_trace):
        config = FaultCampaignConfig(
            faults=NOISY, policy=RecoveryPolicy.DEGRADE
        )
        stats, report = run_with_faults(
            _task().device, gemm_trace, config=config, seed=42
        )
        assert stats is not None
        assert report.detected > 0
        assert len(report.quarantined) >= 1
        assert len(set(report.quarantined)) == len(report.quarantined)
        assert report.recovery_ns > 0.0


class TestShiftErrorWrapping:
    class _Boom:
        """Duck-typed fault session whose corruption hook blows up."""

        abort_index = None
        recovery_ns = 0.0
        recovery_pj = 0.0
        drift = {2: 1}

        def corrupt_store(self, store, vpc, index):
            if index == 2:
                raise ShiftError("stub misalignment escaped")

        def corrupt_values(self, values, drift):
            raise ShiftError("stub misalignment escaped")

        def abort_error(self):  # pragma: no cover - never aborted
            raise AssertionError("abort_error should not be called")

    @pytest.mark.parametrize("engine", ["scalar", "vector"])
    def test_escaping_shift_error_becomes_typed_fault(
        self, engine, gemm_trace
    ):
        device = _task().device
        with pytest.raises(SimulationFault) as excinfo:
            device.execute_trace(
                gemm_trace, engine=engine, faults=self._Boom()
            )
        fault = excinfo.value
        assert fault.index == 2
        assert fault.offset == trace_byte_offset(2)
        assert "vpc #2" in str(fault)
        assert isinstance(fault.__cause__, ShiftError)


class TestAnalyticConsistency:
    def test_plan_hops_match_redundancy_analysis(self, gemm_trace):
        analysis = RedundancyAnalysis(
            RedundancyConfig(), faults=FAULTY.faults
        )
        sizes = np.fromiter(
            (vpc.size for vpc in gemm_trace),
            np.int64,
            count=len(gemm_trace),
        )
        src1 = np.zeros(len(gemm_trace), dtype=np.int64)
        device = _task().device
        plan = build_fault_plan(
            sizes, src1, FAULTY, device.config.bus, seed=0
        )
        assert plan.hops_total == sum(
            analysis.transfer_hops(int(size)) for size in sizes
        )
        expected = sum(
            analysis.expected_undetected_faults(int(size))
            for size in sizes
        )
        assert plan.expected_undetected == pytest.approx(expected)

    def test_campaign_injection_rate_within_mc_error(self):
        report = run_campaign(
            "gemm", config=FAULTY, scale=SCALE, runs=8, master_seed=1
        )
        hops = report.runs[0].hops
        p_hop = report.runs[0].p_hop
        mean = report.n_runs * hops * p_hop
        sigma = (report.n_runs * hops * p_hop * (1 - p_hop)) ** 0.5
        assert abs(report.total_injected - mean) < 6 * sigma
        assert (
            report.expected_undetected_per_run
            == pytest.approx(hops * p_hop * (1 - FAULTY.faults.guard_detection))
        )

    def test_campaign_mttf_consistent_with_analytic(self):
        config = FaultCampaignConfig(
            faults=ShiftFaultConfig(
                p_per_step=5e-6, guard_detection=0.95
            )
        )
        report = run_campaign(
            "gemm", config=config, scale=SCALE, runs=12, master_seed=7
        )
        assert report.mttf_ns is not None
        assert report.analytic_mttf_ns is not None
        # Per-run silent faults are Binomial(hops, p_silent); with n
        # runs the observed/expected MTTF ratio concentrates around 1.
        expected = report.expected_undetected_per_run * report.n_runs
        sigma = expected**0.5
        low = expected - 4 * sigma
        high = expected + 4 * sigma
        assert low < report.total_undetected < high


class TestCampaigns:
    def test_sequential_equals_parallel(self):
        kwargs = dict(config=FAULTY, scale=SCALE, runs=4, master_seed=5)
        sequential = run_campaign("gemm", jobs=1, **kwargs)
        parallel = run_campaign("gemm", jobs=2, **kwargs)
        assert sequential == parallel

    def test_spawned_seeds_match_seedsequence_spawn(self):
        master = np.random.SeedSequence(11)
        children = master.spawn(4)
        for index, child in enumerate(children):
            rebuilt = np.random.SeedSequence(11, spawn_key=(index,))
            a = np.random.default_rng(child).integers(0, 2**63, 8)
            b = np.random.default_rng(rebuilt).integers(0, 2**63, 8)
            assert np.array_equal(a, b)

    def test_report_round_trips_to_json(self, tmp_path):
        report = run_campaign(
            "gemm", config=FAULTY, scale=SCALE, runs=2, master_seed=9
        )
        target = tmp_path / "campaign.json"
        report.to_json(target)
        import json

        payload = json.loads(target.read_text())
        assert payload["n_runs"] == 2
        assert len(payload["runs"]) == 2
        assert payload["workload"] == "gemm"

    def test_rejects_unknown_workload_and_bad_runs(self):
        with pytest.raises(ValueError):
            run_campaign("no-such-kernel", runs=1)
        with pytest.raises(ValueError):
            run_campaign("gemm", runs=0)


class TestCorruption:
    def test_zero_drift_is_identity(self):
        values = np.array([0, 1, 5, 2**40], dtype=np.int64)
        assert np.array_equal(corrupt_words(values, 0), values)

    def test_nonzero_drift_changes_nonzero_words(self):
        values = np.array([3, 99, 2**20], dtype=np.int64)
        corrupted = corrupt_words(values, 1)
        assert not np.array_equal(corrupted, values)

    def test_corruption_is_a_bijection(self):
        values = np.arange(1, 257, dtype=np.int64)
        for drift in (1, -1, 5, -13):
            forward = corrupt_words(values, drift)
            assert len(set(forward.tolist())) == len(values)
            assert np.array_equal(corrupt_words(forward, -drift), values)

    def test_corrupted_words_stay_nonnegative_int64(self):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 2**31, 512, dtype=np.int64)
        for drift in (1, -2, 30, 31, -31, 64):
            corrupted = corrupt_words(values, drift)
            assert corrupted.dtype == np.int64
            assert (corrupted >= 0).all()
            assert (corrupted < 2**31).all()

    def test_high_bits_preserved(self):
        values = np.array([(1 << 40) | 7], dtype=np.int64)
        corrupted = corrupt_words(values, 3)
        assert int(corrupted[0]) >> 31 == (1 << 40) >> 31


class TestConfigValidation:
    def test_rejects_bad_fields(self):
        with pytest.raises(ValueError):
            FaultCampaignConfig(max_retries=0)
        with pytest.raises(ValueError):
            FaultCampaignConfig(backoff=0.5)
        with pytest.raises(ValueError):
            FaultCampaignConfig(policy="retry")

    def test_policy_values(self):
        assert RecoveryPolicy("retry") is RecoveryPolicy.RETRY
        assert RecoveryPolicy("abort") is RecoveryPolicy.ABORT
        assert RecoveryPolicy("degrade") is RecoveryPolicy.DEGRADE


class TestGuardDetectionStatistics:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_injector_detection_rate_matches_config(self, seed):
        rate = 0.7
        injector = FaultInjector(
            ShiftFaultConfig(guard_detection=rate), seed
        )
        trials = 2000
        hits = sum(injector.guard_detects() for _ in range(trials))
        assert injector.detected == hits
        assert injector.undetected == trials - hits
        # 6 sigma of Bernoulli(0.7) over 2000 trials ~= 0.061.
        assert abs(hits / trials - rate) < 0.07

    @settings(max_examples=6, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_faulty_racetrack_detection_tallies(self, seed):
        rate = 0.85
        injector = FaultInjector(
            ShiftFaultConfig(p_per_step=0.2, guard_detection=rate),
            seed,
        )
        track = FaultyRacetrack(256, injector=injector)
        for _ in range(120):
            try:
                track.shift_with_guard(1)
                track.shift_with_guard(-1)
            except ShiftError:  # pragma: no cover - drift hit a stop
                break
        trials = injector.detected + injector.undetected
        assert trials > 0
        sigma = (trials * rate * (1 - rate)) ** 0.5
        assert abs(injector.detected - trials * rate) < 6 * sigma + 3
