"""Tests for the StreamPIM device: event-mode execution and word store."""

import numpy as np
import pytest

from repro.core.device import (
    StreamPIMConfig,
    StreamPIMDevice,
    WordStore,
    _spans_to_breakdown,
    _Span,
)
from repro.core.scheduler import SchedulerPolicy
from repro.isa.trace import VPCTrace
from repro.isa.vpc import VPC


class TestWordStore:
    def test_roundtrip(self):
        store = WordStore()
        store.write(100, [1, 2, 3])
        assert list(store.read(100, 3)) == [1, 2, 3]

    def test_unwritten_words_read_zero(self):
        assert list(WordStore().read(0, 4)) == [0, 0, 0, 0]

    def test_rejects_nonpositive_length(self):
        with pytest.raises(ValueError):
            WordStore().read(0, 0)

    def test_len_counts_written_words(self):
        store = WordStore()
        store.write(0, [1, 2])
        store.write(1, [9])  # overwrite
        assert len(store) == 2


class TestSpansToBreakdown:
    def test_disjoint_spans(self):
        spans = [_Span(0, 10, "rw"), _Span(10, 30, "pim")]
        b = _spans_to_breakdown(spans)
        assert b.read_ns + b.write_ns == pytest.approx(10.0)
        assert b.process_ns == pytest.approx(20.0)
        assert b.overlapped_ns == 0.0

    def test_overlap_classified(self):
        spans = [_Span(0, 10, "rw"), _Span(5, 15, "pim")]
        b = _spans_to_breakdown(spans)
        assert b.overlapped_ns == pytest.approx(5.0)
        assert b.process_ns == pytest.approx(5.0)

    def test_empty(self):
        assert _spans_to_breakdown([]).total_ns == 0.0


class TestEventMode:
    def _subarray_base(self, device, bank, sub):
        return device.address_map.subarray_base(bank, sub)

    def test_functional_dot_product(self, small_device):
        device = small_device
        base = self._subarray_base(device, 0, 0)
        device.store.write(base, [1, 2, 3, 4])
        device.store.write(base + 10, [5, 6, 7, 8])
        trace = VPCTrace([VPC.mul(base, base + 10, base + 20, 4)])
        stats = device.execute_trace(trace)
        assert device.store.read(base + 20, 1)[0] == 70
        assert stats.time_ns > 0

    def test_functional_tran_same_subarray(self, small_device):
        device = small_device
        base = self._subarray_base(device, 0, 0)
        device.store.write(base, [9, 9])
        device.execute_trace(VPCTrace([VPC.tran(base, base + 5, 2)]))
        assert list(device.store.read(base + 5, 2)) == [9, 9]

    def test_functional_cross_subarray_tran(self, small_device):
        device = small_device
        src = self._subarray_base(device, 0, 0)
        dst = self._subarray_base(device, 0, 1)
        device.store.write(src, [4, 5, 6])
        stats = device.execute_trace(VPCTrace([VPC.tran(src, dst, 3)]))
        assert list(device.store.read(dst, 3)) == [4, 5, 6]
        # Cross-subarray movement is read/write class.
        assert stats.energy.read_pj > 0
        assert stats.energy.write_pj > 0

    def test_smul_and_add(self, small_device):
        device = small_device
        base = self._subarray_base(device, 0, 0)
        device.store.write(base, [3])
        device.store.write(base + 1, [1, 2, 3])
        trace = VPCTrace(
            [
                VPC.smul(base, base + 1, base + 10, 3),
                VPC.add(base + 10, base + 1, base + 20, 3),
            ]
        )
        device.execute_trace(trace)
        assert list(device.store.read(base + 10, 3)) == [3, 6, 9]
        assert list(device.store.read(base + 20, 3)) == [4, 8, 12]

    def test_counters(self, small_device):
        base = small_device.address_map.subarray_base(0, 0)
        trace = VPCTrace(
            [VPC.mul(base, base + 8, base + 16, 4), VPC.tran(base, base + 30, 2)]
        )
        stats = small_device.execute_trace(trace)
        assert stats.counters["pim_vpcs"] == 1
        assert stats.counters["move_vpcs"] == 1

    def test_independent_subarrays_overlap(self, small_device):
        """Two VPCs on different subarrays run concurrently."""
        device = small_device
        a = self._subarray_base(device, 0, 0)
        b = self._subarray_base(device, 0, 1)
        one = device.execute_trace(VPCTrace([VPC.mul(a, a + 8, a + 16, 16)]))
        both_trace = VPCTrace(
            [
                VPC.mul(a, a + 8, a + 16, 16),
                VPC.mul(b, b + 8, b + 16, 16),
            ]
        )
        fresh = StreamPIMDevice(device.config)
        both = fresh.execute_trace(both_trace)
        # The second VPC overlaps the first almost entirely.
        assert both.time_ns < 1.5 * one.time_ns

    def test_same_subarray_serialises(self, small_device):
        device = small_device
        a = self._subarray_base(device, 0, 0)
        one = device.execute_trace(VPCTrace([VPC.mul(a, a + 8, a + 16, 16)]))
        fresh = StreamPIMDevice(device.config)
        two = fresh.execute_trace(
            VPCTrace(
                [
                    VPC.mul(a, a + 8, a + 16, 16),
                    VPC.mul(a, a + 8, a + 24, 16),
                ]
            )
        )
        assert two.time_ns > 1.5 * one.time_ns

    def test_remote_operand_charged_as_rw(self, small_device):
        device = small_device
        a = self._subarray_base(device, 0, 0)
        b = self._subarray_base(device, 0, 1)
        stats = device.execute_trace(VPCTrace([VPC.mul(a, b, a + 16, 8)]))
        assert stats.energy.read_pj > 0
        assert stats.energy.write_pj > 0

    def test_remote_destination_copy_back(self, small_device):
        device = small_device
        a = self._subarray_base(device, 0, 0)
        b = self._subarray_base(device, 0, 1)
        device.store.write(a, [2, 2])
        device.store.write(a + 4, [3, 3])
        device.execute_trace(VPCTrace([VPC.add(a, a + 4, b, 2)]))
        assert list(device.store.read(b, 2)) == [5, 5]

    def test_functional_disabled_skips_store(self, small_device):
        device = small_device
        a = self._subarray_base(device, 0, 0)
        device.store.write(a, [1])
        device.execute_trace(
            VPCTrace([VPC.tran(a, a + 3, 1)]), functional=False
        )
        assert device.store.read(a + 3, 1)[0] == 0


class TestConfig:
    def test_with_policy_preserves_other_fields(self):
        config = StreamPIMConfig()
        other = config.with_policy(SchedulerPolicy.BASE)
        assert other.scheduler_policy is SchedulerPolicy.BASE
        assert other.geometry is config.geometry
        assert other.bus is config.bus

    def test_device_exposes_pim_subarrays(self, small_device):
        geo = small_device.config.geometry
        assert small_device.pim_subarrays == geo.pim_subarrays
