"""Tests for the VPC instruction set, encoding, and traces."""

import io

import pytest
from hypothesis import given, strategies as st

from repro.isa.encoding import VPC_ENCODED_BYTES, decode_vpc, encode_vpc
from repro.isa.trace import VPCTrace, read_trace, write_trace
from repro.isa.vpc import BankCommand, BankOp, VPC, VPCOpcode


class TestVPC:
    def test_mul_constructor(self):
        vpc = VPC.mul(0, 100, 200, 8)
        assert vpc.opcode is VPCOpcode.MUL
        assert vpc.operands == (0, 100)
        assert vpc.is_compute

    def test_tran_has_single_operand(self):
        vpc = VPC.tran(5, 10, 4)
        assert vpc.src2 is None
        assert vpc.operands == (5,)
        assert not vpc.is_compute

    def test_tran_rejects_second_operand(self):
        with pytest.raises(ValueError):
            VPC(VPCOpcode.TRAN, 0, 1, 2, 3)

    def test_compute_requires_two_operands(self):
        with pytest.raises(ValueError):
            VPC(VPCOpcode.ADD, 0, None, 2, 3)

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            VPC.add(0, 1, 2, 0)

    def test_rejects_negative_addresses(self):
        with pytest.raises(ValueError):
            VPC.mul(-1, 0, 0, 1)
        with pytest.raises(ValueError):
            VPC.mul(0, -2, 0, 1)

    @pytest.mark.parametrize(
        "opcode,compute",
        [
            (VPCOpcode.MUL, True),
            (VPCOpcode.SMUL, True),
            (VPCOpcode.ADD, True),
            (VPCOpcode.TRAN, False),
        ],
    )
    def test_table2_opcodes(self, opcode, compute):
        assert opcode.is_compute == compute


class TestBankCommand:
    def test_rw_classification(self):
        vpc = VPC.mul(0, 1, 2, 4)
        read = BankCommand(0, 0, BankOp.READ, vpc, 4)
        compute = BankCommand(0, 0, BankOp.COMPUTE, vpc, 4)
        assert read.uses_rw
        assert not compute.uses_rw

    def test_validation(self):
        vpc = VPC.tran(0, 1, 2)
        with pytest.raises(ValueError):
            BankCommand(-1, 0, BankOp.READ, vpc, 1)
        with pytest.raises(ValueError):
            BankCommand(0, 0, BankOp.READ, vpc, 0)


class TestEncoding:
    def test_fixed_width(self):
        assert len(encode_vpc(VPC.mul(1, 2, 3, 4))) == VPC_ENCODED_BYTES

    @pytest.mark.parametrize(
        "vpc",
        [
            VPC.mul(0, 1, 2, 3),
            VPC.smul(10, 20, 30, 40),
            VPC.add(2**39 - 2, 0, 7, 2000),
            VPC.tran(123, 456, 789),
        ],
    )
    def test_roundtrip_examples(self, vpc):
        assert decode_vpc(encode_vpc(vpc)) == vpc

    @given(
        opcode=st.sampled_from(list(VPCOpcode)),
        src1=st.integers(min_value=0, max_value=2**39),
        src2=st.integers(min_value=0, max_value=2**39),
        des=st.integers(min_value=0, max_value=2**39),
        size=st.integers(min_value=1, max_value=2**39),
    )
    def test_property_roundtrip(self, opcode, src1, src2, des, size):
        if opcode is VPCOpcode.TRAN:
            vpc = VPC.tran(src1, des, size)
        else:
            vpc = VPC(opcode, src1, src2, des, size)
        assert decode_vpc(encode_vpc(vpc)) == vpc

    def test_decode_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            decode_vpc(b"\x01")

    def test_decode_rejects_unknown_opcode(self):
        packet = bytearray(encode_vpc(VPC.mul(0, 0, 0, 1)))
        packet[0] = 0xFF
        with pytest.raises(ValueError):
            decode_vpc(bytes(packet))

    def test_encode_rejects_oversized_field(self):
        with pytest.raises(ValueError):
            encode_vpc(VPC.mul(2**41, 0, 0, 1))


class TestTrace:
    def test_stats_separate_pim_and_move(self):
        trace = VPCTrace(
            [VPC.mul(0, 1, 2, 10), VPC.tran(0, 1, 5), VPC.add(0, 1, 2, 3)]
        )
        stats = trace.stats
        assert stats.pim_vpcs == 2
        assert stats.move_vpcs == 1
        assert stats.total_vpcs == 3
        assert stats.elements_processed == 13
        assert stats.elements_moved == 5

    def test_incremental_append(self):
        trace = VPCTrace()
        trace.append(VPC.tran(0, 1, 2))
        trace.extend([VPC.mul(0, 1, 2, 3)])
        assert len(trace) == 2
        assert trace[0].opcode is VPCOpcode.TRAN

    def test_append_rejects_non_vpc(self):
        with pytest.raises(TypeError):
            VPCTrace().append("MUL 0 1 2 3")

    def test_filtered_iterators(self):
        trace = VPCTrace([VPC.tran(0, 1, 2), VPC.mul(0, 1, 2, 3)])
        assert all(v.is_compute for v in trace.compute_vpcs())
        assert all(not v.is_compute for v in trace.move_vpcs())

    def test_text_roundtrip(self):
        trace = VPCTrace(
            [
                VPC.mul(1, 2, 3, 4),
                VPC.smul(5, 6, 7, 8),
                VPC.add(9, 10, 11, 12),
                VPC.tran(13, 14, 15),
            ]
        )
        buffer = io.StringIO()
        write_trace(trace, buffer)
        buffer.seek(0)
        loaded = read_trace(buffer)
        assert list(loaded) == list(trace)

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "trace.txt"
        trace = VPCTrace([VPC.tran(0, 1, 2)])
        write_trace(trace, path)
        assert list(read_trace(path)) == list(trace)

    def test_comments_and_blank_lines_skipped(self):
        text = "# header\n\nMUL 1 2 3 4\n  \n"
        loaded = read_trace(io.StringIO(text))
        assert len(loaded) == 1

    def test_malformed_line_reports_position(self):
        text = "MUL 1 2 3 4\nBOGUS 1 2\n"
        with pytest.raises(ValueError, match="line 2"):
            read_trace(io.StringIO(text))

    def test_tran_field_count_enforced(self):
        with pytest.raises(ValueError):
            read_trace(io.StringIO("TRAN 1 2 3 4\n"))
