"""Tests for the beyond-paper kernels and the sweep utility."""

import numpy as np
import pytest

from repro.analysis.sweep import sweep
from repro.baselines import CpuRM, StreamPIMPlatform
from repro.core.device import StreamPIMConfig, StreamPIMDevice
from repro.core.processor import RMProcessorConfig
from repro.workloads import EXTRA_WORKLOADS, extra_workload, polybench_workload
from repro.workloads.spec import MatrixOpKind


class TestExtraWorkloads:
    def test_catalogue(self):
        assert set(EXTRA_WORKLOADS) == {
            "trmm",
            "symm",
            "gramschmidt",
            "power_iter",
        }

    def test_no_paper_counts(self):
        """Beyond-paper kernels carry no Table IV reference."""
        for spec in EXTRA_WORKLOADS.values():
            assert spec.paper_pim_vpcs is None
            assert spec.paper_move_vpcs is None

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            extra_workload("cholesky")

    def test_scale_validated(self):
        with pytest.raises(ValueError):
            extra_workload("trmm", scale=0)

    def test_all_runnable_on_stpim(self):
        platform = StreamPIMPlatform()
        for name in EXTRA_WORKLOADS:
            spec = extra_workload(name, scale=0.02)
            stats = platform.run(spec)
            assert stats.time_ns > 0, name
            assert stats.energy.total_pj > 0, name

    def test_all_runnable_on_cpu(self):
        cpu = CpuRM()
        for name in EXTRA_WORKLOADS:
            stats = cpu.run(extra_workload(name, scale=0.02))
            assert stats.time_ns > 0, name

    def test_power_iteration_functional(
        self, small_geometry, small_bus_config
    ):
        """The chained matvec/scale structure computes correctly."""
        spec = extra_workload("power_iter", scale=0.005)
        device = StreamPIMDevice(
            StreamPIMConfig(geometry=small_geometry, bus=small_bus_config)
        )
        task = spec.build_task(device, seed=4)
        report = task.run()
        a = task._matrices["A"]
        x = task._matrices["x0"][0]
        steps = sum(
            1 for op in task._operations if op.op.value == "matvec"
        )
        expected = x
        for _ in range(steps):
            expected = a @ expected  # inv_norm scalar is 1
        assert np.array_equal(report.results[f"x{steps}"][0], expected)

    def test_gramschmidt_is_matvec_shaped(self):
        spec = EXTRA_WORKLOADS["gramschmidt"]
        kinds = {op.kind for op in spec.ops}
        assert MatrixOpKind.MATMUL not in kinds
        assert MatrixOpKind.MATVEC in kinds

    def test_trmm_modelled_at_full_cost(self):
        spec = EXTRA_WORKLOADS["trmm"]
        matmul = next(
            op for op in spec.ops if op.kind is MatrixOpKind.MATMUL
        )
        m, k, n = matmul.dims
        assert m == k  # the triangular operand is square


class TestSweep:
    @pytest.fixture(scope="class")
    def workloads(self):
        return [
            polybench_workload("atax", scale=0.05),
            polybench_workload("bicg", scale=0.05),
        ]

    def test_sweep_runs_every_point(self, workloads):
        result = sweep(
            "duplicators",
            [1, 2, 4],
            lambda d: StreamPIMConfig(
                processor=RMProcessorConfig(duplicators=d)
            ),
            workloads,
        )
        assert result.points == [1, 2, 4]
        for point in result.points:
            assert set(result.runs[point]) == {"atax", "bicg"}

    def test_speedup_series_normalised(self, workloads):
        result = sweep(
            "duplicators",
            [1, 2],
            lambda d: StreamPIMConfig(
                processor=RMProcessorConfig(duplicators=d)
            ),
            workloads,
        )
        series = result.speedup_series(reference=1)
        assert series[1] == pytest.approx(1.0)
        assert series[2] > 1.0

    def test_energies_exposed(self, workloads):
        result = sweep(
            "duplicators",
            [2],
            lambda d: StreamPIMConfig(
                processor=RMProcessorConfig(duplicators=d)
            ),
            workloads,
        )
        energies = result.energies(2)
        assert all(value > 0 for value in energies.values())

    def test_validation(self, workloads):
        with pytest.raises(ValueError):
            sweep("p", [], lambda _: StreamPIMConfig(), workloads)
        with pytest.raises(ValueError):
            sweep("p", [1], lambda _: StreamPIMConfig(), [])
