"""Shared fixtures: small device geometries that keep tests fast."""

import numpy as np
import pytest

from repro.isa.trace_cache import CACHE_DIR_ENV


@pytest.fixture(autouse=True)
def _isolated_trace_cache(tmp_path, monkeypatch):
    """Point the trace cache at a per-test temp dir.

    Tests that compile through the cache (campaigns, CLI commands)
    must never read from or write into the user's real
    ``~/.cache/repro-streampim``.
    """
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "trace-cache"))

from repro.core.device import StreamPIMConfig, StreamPIMDevice
from repro.core.rmbus import RMBusConfig
from repro.rm.address import DeviceGeometry
from repro.rm.bank import BankConfig
from repro.rm.mat import MatConfig
from repro.rm.subarray import SubarrayConfig
from repro.rm.timing import RMTimingConfig


@pytest.fixture
def timing():
    return RMTimingConfig()


@pytest.fixture
def small_mat_config():
    """A tiny mat: 16 save tracks, 2-port racetracks of 64 domains."""
    return MatConfig(
        save_tracks=16,
        transfer_tracks=16,
        domains_per_track=64,
        word_bits=8,
        ports_per_track=2,
    )


@pytest.fixture
def small_geometry(small_mat_config):
    """A tiny device: 2 banks (1 PIM) x 4 subarrays x 2 mats."""
    return DeviceGeometry(
        banks=2,
        pim_banks=1,
        bank=BankConfig(
            subarrays=4,
            subarray=SubarrayConfig(
                mats=2, pim_mats=1, mat=small_mat_config
            ),
            pim_bank=True,
        ),
    )


@pytest.fixture
def small_bus_config():
    return RMBusConfig(
        segment_domains=16, length_domains=64, width_wires=8, word_bits=8
    )


@pytest.fixture
def small_device(small_geometry, small_bus_config):
    return StreamPIMDevice(
        StreamPIMConfig(geometry=small_geometry, bus=small_bus_config)
    )


@pytest.fixture
def rng():
    return np.random.default_rng(42)
