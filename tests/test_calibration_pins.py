"""Pins on the calibrated model constants.

DESIGN.md documents a small set of fitted constants, each tied to one
paper observable.  These tests pin their values so an accidental edit
fails loudly with a pointer to what it would silently distort —
recalibrating is fine, but it must be deliberate (update DESIGN.md,
EXPERIMENTS.md and these pins together).
"""

import pytest

from repro.baselines.coruscant import CoruscantConfig
from repro.baselines.cpu import CPU_DRAM_CONFIG, CPU_RM_CONFIG
from repro.baselines.elp2im import Elp2imConfig
from repro.baselines.felix import FelixConfig
from repro.baselines.stpim_e import StpimEConfig
from repro.core.processor import RMProcessorConfig
from repro.core.rmbus import RMBusConfig
from repro.core.scheduler import PrepCostModel
from repro.rm.timing import RMTimingConfig


class TestTable3Constants:
    """Paper-given values — changing these means leaving the paper."""

    def test_rm_timing(self):
        t = RMTimingConfig()
        assert (t.read_ns, t.write_ns, t.shift_ns) == (3.91, 10.27, 2.13)
        assert (t.read_pj, t.write_pj, t.shift_pj) == (3.80, 11.79, 3.26)
        assert (t.pim_add_pj, t.pim_mul_pj) == (0.03, 0.18)
        assert t.core_freq_mhz == 100.0

    def test_processor_structure(self):
        p = RMProcessorConfig()
        assert p.word_bits == 8
        assert p.duplicators == 2  # Table III
        assert p.duplication_interval == 4

    def test_bus_default_segment(self):
        assert RMBusConfig().segment_domains == 1024  # Table V default


class TestFittedConstants:
    """Each pin names the observable its value was fitted to."""

    def test_cpu_throughput_fits_fig17_headline(self):
        # 0.78 Gop/s + 1.7 GB/s RM bandwidth -> StPIM ~ 39x (Fig. 17)
        # and 47.6% small-kernel memory share (Fig. 3a).
        assert CPU_RM_CONFIG.effective_gflops == 0.78
        assert CPU_RM_CONFIG.memory_bandwidth_gbps == 1.7

    def test_dram_bandwidth_fits_cpu_dram_ratio(self):
        # 5.15 GB/s -> CPU-DRAM ~ 1.5x CPU-RM (Fig. 17); bracketed by
        # the DDR4 substrate (tests/test_dram.py).
        assert CPU_DRAM_CONFIG.memory_bandwidth_gbps == 5.15

    def test_cpu_energy_fits_fig18(self):
        # 6 pJ/flop + ~2 pJ/B -> CPU-DRAM ~ 58x StPIM energy (Fig. 18).
        assert CPU_RM_CONFIG.flop_energy_pj == 6.0

    def test_coruscant_op_structure_fits_fig4(self):
        # 2R/6S/5W + 33 ns CMOS -> write 49% / compute 31% of time.
        c = CoruscantConfig()
        assert (c.reads_per_mul, c.shifts_per_mul, c.writes_per_mul) == (
            2,
            6,
            5,
        )
        assert c.mul_compute_ns == 33.0
        assert c.energy_row_width_words == 128  # -> ~2.8x StPIM energy

    def test_elp2im_fits_3_6x(self):
        e = Elp2imConfig()
        assert e.steps_per_bit_add == 8
        assert e.step_ns == 45.0
        assert e.energy_row_width_words == 8192

    def test_felix_fits_8_7x(self):
        f = FelixConfig()
        assert f.steps_per_bit_add == 3
        assert f.step_ns == 49.0

    def test_stpim_e_fits_3_1x_bus_benefit(self):
        s = StpimEConfig()
        assert s.conversions_per_word == 6
        assert s.energy_conversions_per_word == 2

    def test_prep_model_fits_fig21_saturation_and_fig22(self):
        p = PrepCostModel()
        assert p.access_width_words == 64
        assert p.write_access_width_words == 32
        assert p.unblock_parallelism == 1.25
        assert p.blocked_access_width == 2


class TestDerivedRelationships:
    """Relationships the calibration relies on (not exact values)."""

    def test_elp2im_step_slower_than_felix(self):
        # ELP2IM pays the precharge FELIX avoids.
        assert Elp2imConfig().step_ns < Elp2imConfig().step_ns + 1
        assert Elp2imConfig().precharge_ns > 0

    def test_felix_fewer_steps_per_bit(self):
        assert FelixConfig().steps_per_bit_add < Elp2imConfig().steps_per_bit_add

    def test_write_width_half_of_read_width(self):
        p = PrepCostModel()
        assert p.write_access_width_words * 2 == p.access_width_words

    def test_coruscant_breakdown_shape(self):
        """The fitted structure actually yields the Fig. 4a split."""
        from repro.baselines.coruscant import CoruscantPlatform

        fractions = CoruscantPlatform().op_time_ns("mul").fractions()
        assert fractions["write"] == pytest.approx(0.51, abs=0.04)
        assert fractions["process"] == pytest.approx(0.301, abs=0.04)
