"""Tests for results archiving (JSON serialisation of RunStats)."""

import io
import json

import pytest

from repro.analysis.results_io import (
    load_results,
    save_results,
    stats_from_dict,
    stats_to_dict,
)
from repro.baselines import CpuRM, StreamPIMPlatform
from repro.sim.stats import EnergyBreakdown, RunStats, TimeBreakdown
from repro.workloads import polybench_workload


def _stats():
    stats = RunStats(
        platform="StPIM",
        workload="gemm",
        time_ns=123.5,
        time_breakdown=TimeBreakdown(process_ns=100.0, overlapped_ns=23.5),
        energy=EnergyBreakdown(compute_pj=7.0, shift_pj=3.0),
    )
    stats.bump("pim_vpcs", 42)
    return stats


class TestDictRoundtrip:
    def test_roundtrip_preserves_everything(self):
        original = _stats()
        restored = stats_from_dict(stats_to_dict(original))
        assert restored.platform == original.platform
        assert restored.workload == original.workload
        assert restored.time_ns == original.time_ns
        assert restored.time_breakdown.process_ns == 100.0
        assert restored.energy.compute_pj == 7.0
        assert restored.counters == {"pim_vpcs": 42}

    def test_malformed_payload_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            stats_from_dict({"platform": "X"})

    def test_dict_is_json_safe(self):
        json.dumps(stats_to_dict(_stats()))


class TestFileRoundtrip:
    def test_matrix_roundtrip(self, tmp_path):
        results = {"StPIM": {"gemm": _stats()}}
        path = tmp_path / "results.json"
        save_results(results, path, label="unit test")
        loaded = load_results(path)
        assert loaded["StPIM"]["gemm"].time_ns == 123.5

    def test_stream_roundtrip(self):
        buffer = io.StringIO()
        save_results({"A": {"w": _stats()}}, buffer)
        buffer.seek(0)
        loaded = load_results(buffer)
        assert loaded["A"]["w"].counters["pim_vpcs"] == 42

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 99, "results": {}}))
        with pytest.raises(ValueError, match="version"):
            load_results(str(path))

    def test_real_run_archives(self, tmp_path):
        """A real platform sweep archives and reloads losslessly."""
        spec = polybench_workload("atax", scale=0.05)
        results = {
            platform.name: {spec.name: platform.run(spec)}
            for platform in (CpuRM(), StreamPIMPlatform())
        }
        path = tmp_path / "sweep.json"
        save_results(results, path, label="atax@0.05")
        loaded = load_results(path)
        for platform, by_workload in results.items():
            for workload, stats in by_workload.items():
                restored = loaded[platform][workload]
                assert restored.time_ns == pytest.approx(stats.time_ns)
                assert restored.energy.total_pj == pytest.approx(
                    stats.energy.total_pj
                )
        # Derived quantities survive the roundtrip.
        speedup = loaded["CPU-RM"]["atax"].time_ns / loaded["StPIM"][
            "atax"
        ].time_ns
        assert speedup > 1.0
