"""Tests for the DDR4 DRAM substrate."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.cpu import CPU_DRAM_CONFIG
from repro.dram import (
    DDR4_2400,
    DDR4TimingConfig,
    DRAMBank,
    DRAMController,
    MemoryRequest,
    RowBufferOutcome,
    sequential_pattern,
    strided_pattern,
)


class TestTiming:
    def test_ddr4_2400_peak_bandwidth(self):
        # 2400 MT/s x 8 bytes = 19.2 GB/s.
        assert DDR4_2400.peak_bandwidth_gbps == pytest.approx(19.2)

    def test_burst_is_cache_line(self):
        assert DDR4_2400.burst_bytes == 64

    def test_latency_ordering(self):
        t = DDR4_2400
        assert t.row_hit_ns < t.row_miss_ns < t.row_conflict_ns

    def test_conflict_adds_precharge(self):
        t = DDR4_2400
        assert t.row_conflict_ns == pytest.approx(t.row_miss_ns + t.trp_ns)

    def test_validation(self):
        with pytest.raises(ValueError):
            DDR4TimingConfig(io_mhz=0)
        with pytest.raises(ValueError):
            DDR4TimingConfig(banks=0)


class TestBank:
    def test_first_access_is_miss(self):
        bank = DRAMBank()
        assert bank.classify(3) is RowBufferOutcome.MISS
        bank.access(3, 0.0)
        assert bank.misses == 1

    def test_second_access_same_row_hits(self):
        bank = DRAMBank()
        bank.access(3, 0.0)
        assert bank.classify(3) is RowBufferOutcome.HIT
        bank.access(3, 100.0)
        assert bank.hits == 1

    def test_other_row_conflicts(self):
        bank = DRAMBank()
        bank.access(3, 0.0)
        assert bank.classify(4) is RowBufferOutcome.CONFLICT
        bank.access(4, 100.0)
        assert bank.conflicts == 1
        assert bank.open_row == 4

    def test_bank_serialises(self):
        bank = DRAMBank()
        first = bank.access(1, 0.0)
        second = bank.access(1, 0.0)
        assert second >= first + DDR4_2400.row_hit_ns

    def test_tras_delays_early_conflict(self):
        bank = DRAMBank()
        bank.access(1, 0.0)
        finish = bank.access(2, 0.0)  # conflict right away
        # The open row cannot precharge before tRAS expires.
        assert finish >= DDR4_2400.tras_ns + DDR4_2400.row_conflict_ns - 1e-9

    def test_negative_row_rejected(self):
        with pytest.raises(ValueError):
            DRAMBank().access(-1, 0.0)


class TestController:
    def test_sequential_near_peak(self):
        controller = DRAMController()
        bandwidth = controller.achieved_bandwidth_gbps(
            sequential_pattern(2 * 2**20)
        )
        assert bandwidth > 0.85 * DDR4_2400.peak_bandwidth_gbps
        assert controller.row_hit_rate > 0.95

    def test_row_conflict_stride_collapses(self):
        controller = DRAMController()
        stride = DDR4_2400.row_bytes * DDR4_2400.banks
        bandwidth = controller.achieved_bandwidth_gbps(
            strided_pattern(2**20, stride)
        )
        assert bandwidth < 0.1 * DDR4_2400.peak_bandwidth_gbps
        assert controller.row_hit_rate == 0.0

    def test_cpu_model_constant_bracketed(self):
        """The analytic CPU-DRAM bandwidth (5.15 GB/s) lies between the
        substrate's row-conflict floor and its streaming ceiling —
        consistent with PolyBench's mixed row/column access patterns."""
        streaming = DRAMController().achieved_bandwidth_gbps(
            sequential_pattern(2**20)
        )
        stride = DDR4_2400.row_bytes * DDR4_2400.banks
        conflicted = DRAMController().achieved_bandwidth_gbps(
            strided_pattern(2**20, stride)
        )
        assert conflicted < CPU_DRAM_CONFIG.memory_bandwidth_gbps < streaming

    def test_bank_interleaving_spreads_sequential(self):
        controller = DRAMController()
        controller.serve(sequential_pattern(64 * 64).requests)
        used = sum(1 for bank in controller.banks if bank.accesses > 0)
        assert used > 1

    def test_decompose_maps_low_bits_to_banks(self):
        controller = DRAMController()
        bank_a, _ = controller.decompose(0)
        bank_b, _ = controller.decompose(DDR4_2400.burst_bytes)
        assert bank_b == (bank_a + 1) % DDR4_2400.banks

    def test_request_validation(self):
        with pytest.raises(ValueError):
            MemoryRequest(-1)
        with pytest.raises(ValueError):
            strided_pattern(1024, 0)

    def test_empty_pattern_rejected(self):
        from repro.dram.controller import AccessPattern

        with pytest.raises(ValueError):
            DRAMController().achieved_bandwidth_gbps(AccessPattern("e", []))

    @settings(max_examples=15, deadline=None)
    @given(bursts=st.integers(min_value=1, max_value=400))
    def test_property_bandwidth_never_exceeds_peak(self, bursts):
        controller = DRAMController()
        pattern = sequential_pattern(bursts * DDR4_2400.burst_bytes)
        bandwidth = controller.achieved_bandwidth_gbps(pattern)
        assert bandwidth <= DDR4_2400.peak_bandwidth_gbps * (1 + 1e-9)
