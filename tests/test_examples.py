"""Smoke tests: every example script runs and prints what it promises.

Examples are part of the public surface; these tests execute each one
in a subprocess so a refactor that breaks an example fails CI.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

#: (script, args, expected output fragments, timeout seconds)
CASES = [
    ("quickstart.py", [], ["verified against numpy", "VPCs issued"], 120),
    (
        "domain_wall_logic.py",
        [],
        ["full adder", "201 * 57 = 11457", "pJ/gate"],
        120,
    ),
    (
        "expression_frontend.py",
        [],
        ["results verified against numpy", "lowered operations"],
        120,
    ),
    (
        "extended_arithmetic.py",
        [],
        ["250 / 7 = 35 remainder 5", "isqrt(3025) = 55"],
        120,
    ),
    (
        "optimization_ablation.py",
        [],
        ["Fig. 22", "Fig. 21", "speedup vs base"],
        300,
    ),
    (
        "dnn_inference.py",
        [],
        ["mlp", "bert", "e2e speedup"],
        300,
    ),
    (
        "unblock_timeline.py",
        [],
        ["unblock", "distribute", "prep"],
        300,
    ),
    (
        "polybench_comparison.py",
        ["atax", "0.1"],
        ["platform", "StPIM", "speedup"],
        300,
    ),
]


@pytest.mark.parametrize(
    "script,args,fragments,timeout", CASES, ids=[c[0] for c in CASES]
)
def test_example_runs(script, args, fragments, timeout):
    path = EXAMPLES_DIR / script
    assert path.exists(), script
    completed = subprocess.run(
        [sys.executable, str(path), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        cwd=str(EXAMPLES_DIR.parent),
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    for fragment in fragments:
        assert fragment in completed.stdout, (script, fragment)


def test_every_example_has_a_smoke_test_or_is_heavy():
    """Keep this list in sync with the examples directory."""
    covered = {case[0] for case in CASES}
    heavy = {"paper_figures.py"}  # minutes-long full-dimension sweeps
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == covered | heavy
