"""Vector trace engine: exact scalar equivalence + supporting machinery."""

import numpy as np
import pytest

from repro.cli import _check_specs, main
from repro.core.device import StreamPIMDevice
from repro.isa.columnar import ColumnarTrace
from repro.isa.trace import VPCTrace, write_trace_binary
from repro.isa.vpc import VPC
from repro.sim.engine import Engine
from repro.sim.stats import TimeBreakdown
from repro.sim.vector_exec import sweep_spans
from repro.verify.trace_verifier import TraceVerificationError

_BREAKDOWN_FIELDS = (
    "read_ns", "write_ns", "shift_ns", "process_ns", "overlapped_ns"
)
_ENERGY_FIELDS = ("read_pj", "write_pj", "shift_pj", "compute_pj")


def _run_both(trace, config=None, functional=True):
    """The same trace through both engines on fresh devices."""
    scalar_device = StreamPIMDevice(config) if config else StreamPIMDevice()
    vector_device = StreamPIMDevice(config) if config else StreamPIMDevice()
    return scalar_device, vector_device, (
        lambda: scalar_device.execute_trace(
            trace, workload="diff", functional=functional
        ),
        lambda: vector_device.execute_trace(
            trace, workload="diff", functional=functional, engine="vector"
        ),
    )


def _assert_identical(scalar_stats, vector_stats):
    """Exact (bitwise) equality of every reported quantity."""
    assert vector_stats.time_ns == scalar_stats.time_ns
    for name in _BREAKDOWN_FIELDS:
        assert getattr(vector_stats.time_breakdown, name) == getattr(
            scalar_stats.time_breakdown, name
        ), name
    for name in _ENERGY_FIELDS:
        assert getattr(vector_stats.energy, name) == getattr(
            scalar_stats.energy, name
        ), name
    assert vector_stats.counters == scalar_stats.counters
    assert vector_stats.platform == scalar_stats.platform
    assert vector_stats.workload == scalar_stats.workload


class TestDifferentialAllWorkloads:
    """Scalar and vector engines agree exactly on every generator."""

    @pytest.mark.parametrize(
        "spec",
        list(_check_specs(0.01)),
        ids=lambda spec: spec.name,
    )
    def test_workload_is_bit_identical(self, spec):
        task = spec.build_task()
        trace = task.to_trace()
        config = task.device.config
        scalar_device = StreamPIMDevice(config)
        vector_device = StreamPIMDevice(config)
        task.materialize(scalar_device)
        task.materialize(vector_device)

        cols = ColumnarTrace.from_trace(trace)
        try:
            scalar_stats = scalar_device.execute_trace(
                trace, workload=spec.name
            )
        except ValueError as exc:
            # Some generators (power_iter) produce traces the functional
            # model rejects (negative intermediates); both engines must
            # reject them identically, and timing parity is then checked
            # without the functional replay.
            with pytest.raises(ValueError) as excinfo:
                vector_device.execute_trace(
                    cols, workload=spec.name, engine="vector"
                )
            assert str(excinfo.value) == str(exc)
            scalar_stats = StreamPIMDevice(config).execute_trace(
                trace, workload=spec.name, functional=False
            )
            vector_stats = StreamPIMDevice(config).execute_trace(
                cols, workload=spec.name, functional=False, engine="vector"
            )
            _assert_identical(scalar_stats, vector_stats)
            return

        vector_stats = vector_device.execute_trace(
            cols, workload=spec.name, engine="vector"
        )
        _assert_identical(scalar_stats, vector_stats)
        # Functional replay left both word stores in the same state —
        # same addresses present, same values.
        assert vector_device.store._words == scalar_device.store._words


class TestEngineSelection:
    def test_vector_accepts_object_trace(self):
        trace = VPCTrace([VPC.tran(0, 64, 8), VPC.add(0, 64, 128, 8)])
        _, _, (run_scalar, run_vector) = _run_both(trace)
        _assert_identical(run_scalar(), run_vector())

    def test_unknown_engine_rejected(self):
        device = StreamPIMDevice()
        with pytest.raises(ValueError, match="engine"):
            device.execute_trace(VPCTrace([]), engine="warp")

    def test_empty_trace(self):
        trace = VPCTrace([])
        _, _, (run_scalar, run_vector) = _run_both(trace)
        _assert_identical(run_scalar(), run_vector())


class TestVerifyGateParity:
    """Both engines reject out-of-bounds traces with the same report."""

    def _oob_trace(self, device):
        # The read range hangs off the end of the device (SPV001).
        total = device.address_map.total_words
        return VPCTrace(
            [VPC.tran(0, 64, 8), VPC.tran(total - 2, 128, 8)]
        )

    def _oob_address_trace(self, device):
        # The start address itself is unmappable (IndexError at replay).
        total = device.address_map.total_words
        return VPCTrace(
            [VPC.tran(0, 64, 8), VPC.tran(total + 10, 128, 8)]
        )

    def test_same_diagnostics(self):
        scalar_device = StreamPIMDevice()
        vector_device = StreamPIMDevice()
        trace = self._oob_trace(scalar_device)
        with pytest.raises(TraceVerificationError) as scalar:
            scalar_device.execute_trace(trace, workload="oob")
        with pytest.raises(TraceVerificationError) as vector:
            vector_device.execute_trace(
                trace, workload="oob", engine="vector"
            )
        scalar_errors = [d.render() for d in scalar.value.report.errors]
        vector_errors = [d.render() for d in vector.value.report.errors]
        assert scalar_errors == vector_errors
        assert len(scalar_errors) > 0

    def test_unverified_replay_raises_index_error(self):
        scalar_device = StreamPIMDevice()
        vector_device = StreamPIMDevice()
        trace = self._oob_address_trace(scalar_device)
        with pytest.raises(IndexError) as scalar:
            scalar_device.execute_trace(
                trace, workload="oob", functional=False, verify=False
            )
        with pytest.raises(IndexError) as vector:
            vector_device.execute_trace(
                trace,
                workload="oob",
                functional=False,
                verify=False,
                engine="vector",
            )
        assert str(vector.value) == str(scalar.value)

    def test_cached_verifier_is_reused(self):
        device = StreamPIMDevice()
        trace = VPCTrace([VPC.tran(0, 64, 8)])
        device.execute_trace(trace, functional=False)
        first = device._bounds_verifier
        assert first is not None
        device.execute_trace(trace, functional=False, engine="vector")
        assert device._bounds_verifier is first


def _reference_breakdown(starts, finishes, is_rw):
    """Quadratic reference: classify every covered instant directly."""
    edges = sorted(set(starts) | set(finishes))
    result = TimeBreakdown()
    for left, right in zip(edges, edges[1:]):
        rw = pim = False
        for start, finish, kind_rw in zip(starts, finishes, is_rw):
            if start <= left and right <= finish:
                if kind_rw:
                    rw = True
                else:
                    pim = True
        width = right - left
        if rw and pim:
            result.add("overlapped", width)
        elif pim:
            result.add("process", width)
        elif rw:
            result.add("read", width * 0.3)
            result.add("write", width * 0.7)
    return result


class TestSweepSpans:
    def test_empty(self):
        empty = np.array([], dtype=np.float64)
        breakdown = sweep_spans(empty, empty, np.array([], dtype=bool))
        assert breakdown.total_ns == 0.0

    def test_matches_quadratic_reference(self):
        rng = np.random.default_rng(7)
        starts = rng.uniform(0.0, 100.0, size=64)
        widths = rng.uniform(0.0, 20.0, size=64)
        finishes = starts + widths
        is_rw = rng.integers(0, 2, size=64).astype(bool)
        fast = sweep_spans(starts, finishes, is_rw)
        slow = _reference_breakdown(
            starts.tolist(), finishes.tolist(), is_rw.tolist()
        )
        for name in _BREAKDOWN_FIELDS:
            assert getattr(fast, name) == pytest.approx(
                getattr(slow, name)
            ), name

    def test_zero_width_spans_contribute_nothing(self):
        starts = np.array([5.0, 5.0])
        finishes = np.array([5.0, 5.0])
        is_rw = np.array([True, False])
        assert sweep_spans(starts, finishes, is_rw).total_ns == 0.0


class TestEnginePendingCounter:
    def test_schedule_and_run(self):
        engine = Engine()
        for delay in (1.0, 2.0, 3.0):
            engine.schedule(delay, lambda: None)
        assert engine.pending == 3
        engine.run()
        assert engine.pending == 0

    def test_cancel_decrements(self):
        engine = Engine()
        keep = engine.schedule(1.0, lambda: None)
        drop = engine.schedule(2.0, lambda: None)
        drop.cancel()
        assert engine.pending == 1
        drop.cancel()  # idempotent
        assert engine.pending == 1
        engine.run()
        assert engine.pending == 0
        keep.cancel()  # cancel after execution must not go negative
        assert engine.pending == 0

    def test_step_consumes_one_live_event(self):
        engine = Engine()
        first = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        first.cancel()
        assert engine.pending == 1
        assert engine.step() is True
        assert engine.pending == 0
        assert engine.step() is False


class TestCliIntegration:
    def test_sweep_jobs_matches_sequential(self, capsys):
        argv = ["sweep", "--workloads", "atax", "--scale", "0.01"]
        assert main(argv) == 0
        sequential = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == sequential
        assert "atax" in sequential

    def test_replay_vector_engine(self, tmp_path, capsys):
        path = tmp_path / "t.bin"
        trace = VPCTrace([VPC.tran(0, 64, 8), VPC.add(0, 64, 128, 8)])
        write_trace_binary(trace, path)
        assert main(["replay", str(path)]) == 0
        scalar_out = capsys.readouterr().out
        assert main(["replay", str(path), "--engine", "vector"]) == 0
        vector_out = capsys.readouterr().out
        assert vector_out == scalar_out
