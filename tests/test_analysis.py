"""Tests for the analysis helpers: area, end-to-end, reporting."""

import pytest

from repro.analysis.area import AreaModel
from repro.analysis.endtoend import end_to_end_speedup
from repro.analysis.report import (
    format_breakdown_table,
    format_speedup_table,
    format_table,
    normalised_series,
)
from repro.baselines import CpuDRAM, StreamPIMPlatform
from repro.rm.address import DeviceGeometry
from repro.sim.stats import RunStats, TimeBreakdown
from repro.workloads import polybench_workload
from repro.workloads.dnn import MLPShape, mlp_spec


class TestAreaModel:
    @pytest.fixture(scope="class")
    def breakdown(self):
        return AreaModel().breakdown()

    def test_bus_fraction_near_paper(self, breakdown):
        # Section V-G: RM bus occupies 1.8% of the device area.
        assert abs(breakdown.fraction("bus") - 0.018) < 0.01

    def test_processor_fraction_near_paper(self, breakdown):
        # Section V-G: RM processor occupies 0.1%.
        assert abs(breakdown.fraction("processor") - 0.001) < 0.001

    def test_transfer_tracks_near_paper(self):
        # Section V-G: transfer tracks are 3.1% of the bank area.
        model = AreaModel()
        assert abs(model.transfer_fraction_of_pim_bank_area() - 0.031) < 0.01

    def test_control_near_one_percent(self, breakdown):
        assert abs(breakdown.fraction("control") - 0.01) < 0.005

    def test_mats_dominate(self, breakdown):
        assert breakdown.fraction("mat") > 0.9

    def test_fractions_sum_to_one(self, breakdown):
        total = sum(
            breakdown.fraction(c)
            for c in ("mat", "transfer_track", "bus", "processor", "control")
        )
        assert total == pytest.approx(1.0)

    def test_more_pim_subarrays_more_overhead(self):
        small = AreaModel(DeviceGeometry().with_pim_subarrays(128))
        big = AreaModel(DeviceGeometry().with_pim_subarrays(1024))
        assert big.breakdown().fraction("bus") > small.breakdown().fraction(
            "bus"
        )

    def test_portless_transfer_tracks_cheaper(self):
        model = AreaModel()
        assert (
            model.transfer_track_domains_each() < model.save_track_domains()
        )


class TestEndToEnd:
    def test_amdahl_composition(self):
        spec = mlp_spec(MLPShape(batch=4, layers=(8, 8, 4)))
        result = end_to_end_speedup(StreamPIMPlatform(), CpuDRAM(), spec)
        assert result.total_ns == pytest.approx(
            result.matrix_ns + result.nonlinear_ns
        )
        assert result.speedup_vs_cpu > 1.0

    def test_nonlinear_fraction_caps_speedup(self):
        spec = mlp_spec(MLPShape(batch=4, layers=(8, 8, 4)))
        result = end_to_end_speedup(StreamPIMPlatform(), CpuDRAM(), spec)
        cap = 1.0 / spec.nonlinear_flop_fraction
        assert result.speedup_vs_cpu < cap

    def test_precomputed_stats_reused(self):
        spec = mlp_spec(MLPShape(batch=4, layers=(8, 8, 4)))
        cpu = CpuDRAM()
        cpu_stats = cpu.run(spec)
        fake = RunStats("StPIM", spec.name, time_ns=1.0)
        result = end_to_end_speedup(
            StreamPIMPlatform(), cpu, spec, platform_stats=fake,
            cpu_stats=cpu_stats,
        )
        assert result.matrix_ns == 1.0

    def test_zero_nonlinear_workload(self):
        spec = polybench_workload("atax", scale=0.02)
        result = end_to_end_speedup(StreamPIMPlatform(), CpuDRAM(), spec)
        assert result.nonlinear_ns == 0.0


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, 4.25]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "2.50" in text
        assert "4.25" in text

    def test_speedup_table(self):
        results = {
            "CPU": {"w": RunStats("CPU", "w", time_ns=100.0)},
            "PIM": {"w": RunStats("PIM", "w", time_ns=10.0)},
        }
        text = format_speedup_table(results, baseline="CPU", workloads=["w"])
        assert "10.00" in text
        assert "PIM" in text

    def test_speedup_table_missing_baseline(self):
        with pytest.raises(KeyError):
            format_speedup_table({}, baseline="CPU", workloads=[])

    def test_breakdown_table_normalised(self):
        breakdowns = {
            "StPIM": TimeBreakdown(process_ns=10.0),
            "CORUSCANT": TimeBreakdown(write_ns=20.0, process_ns=5.0),
        }
        text = format_breakdown_table(breakdowns, normalise_to="StPIM")
        assert "2.500" in text  # CORUSCANT total 25 / StPIM 10

    def test_breakdown_rejects_zero_reference(self):
        with pytest.raises(ValueError):
            format_breakdown_table(
                {"a": TimeBreakdown()}, normalise_to="a"
            )

    def test_normalised_series(self):
        series = normalised_series({"128": 40.0, "256": 20.0}, "128")
        assert series == {"128": 1.0, "256": 0.5}

    def test_normalised_series_rejects_zero(self):
        with pytest.raises(ValueError):
            normalised_series({"a": 0.0}, "a")
