"""Tests for the quantisation helpers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.task import PimTask, TaskOp
from repro.core.device import StreamPIMConfig, StreamPIMDevice
from repro.workloads.quantize import (
    QuantParams,
    calibrate,
    dequantize,
    quantization_error,
    quantize,
    quantized_matmul,
)


class TestParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            QuantParams(scale=0.0, zero_point=0)
        with pytest.raises(ValueError):
            QuantParams(scale=1.0, zero_point=256)
        with pytest.raises(ValueError):
            QuantParams(scale=1.0, zero_point=0, bits=0)

    def test_qmax(self):
        assert QuantParams(scale=1.0, zero_point=0, bits=8).qmax == 255
        assert QuantParams(scale=1.0, zero_point=0, bits=4).qmax == 15


class TestCalibration:
    def test_range_covers_data(self):
        values = np.array([-2.0, 0.5, 3.0])
        params = calibrate(values)
        codes = quantize(values, params)
        assert codes.min() >= 0
        assert codes.max() <= params.qmax

    def test_zero_maps_near_zero_point(self):
        params = calibrate(np.array([-1.0, 1.0]))
        code = quantize(np.array([0.0]), params)[0]
        assert abs(int(code) - params.zero_point) <= 1

    def test_constant_tensor(self):
        params = calibrate(np.zeros(5))
        assert params.scale == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            calibrate(np.array([]))

    def test_nonnegative_data_zero_point_zero(self):
        params = calibrate(np.array([0.0, 5.0, 10.0]))
        assert params.zero_point == 0


class TestRoundtrip:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-50, max_value=50, allow_nan=False),
            min_size=2,
            max_size=40,
        )
    )
    def test_property_roundtrip_within_one_step(self, values):
        tensor = np.array(values)
        params = calibrate(tensor)
        recovered = dequantize(quantize(tensor, params), params)
        assert np.all(np.abs(recovered - tensor) <= params.scale * 0.51)


class TestQuantizedMatmul:
    def test_exact_for_integer_friendly_data(self):
        a = np.array([[1.0, 2.0], [3.0, 4.0]])
        b = np.array([[5.0, 6.0], [7.0, 8.0]])
        pa, pb = calibrate(a), calibrate(b)
        approx = quantized_matmul(quantize(a, pa), pa, quantize(b, pb), pb)
        assert np.allclose(approx, a @ b, rtol=0.05)

    def test_zero_point_corrections_matter(self):
        """Negative-valued operands need the correction terms."""
        rng = np.random.default_rng(3)
        a = rng.normal(size=(8, 6))
        b = rng.normal(size=(6, 5))
        pa, pb = calibrate(a), calibrate(b)
        qa, qb = quantize(a, pa), quantize(b, pb)
        corrected = quantized_matmul(qa, pa, qb, pb)
        naive = pa.scale * pb.scale * (qa @ qb)
        exact = a @ b
        assert np.linalg.norm(corrected - exact) < np.linalg.norm(
            naive - exact
        )

    def test_shape_mismatch_rejected(self):
        params = QuantParams(scale=1.0, zero_point=0)
        with pytest.raises(ValueError):
            quantized_matmul(
                np.zeros((2, 3)), params, np.zeros((2, 3)), params
            )

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_property_error_small_for_gaussian_data(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(12, 10))
        b = rng.normal(size=(10, 8))
        relative, worst = quantization_error(a, b)
        assert relative < 0.05
        assert worst < 0.1

    def test_more_bits_less_error(self):
        rng = np.random.default_rng(9)
        a = rng.normal(size=(16, 16))
        b = rng.normal(size=(16, 16))
        coarse, _ = quantization_error(a, b, bits=4)
        fine, _ = quantization_error(a, b, bits=8)
        assert fine < coarse


class TestOnDevice:
    def test_pim_computes_the_integer_product(
        self, small_geometry, small_bus_config
    ):
        """End to end: quantise on the host, matmul on the device,
        dequantise — matches float matmul within quantisation error."""
        rng = np.random.default_rng(17)
        a = rng.normal(size=(6, 5))
        b = rng.normal(size=(5, 4))
        pa, pb = calibrate(a), calibrate(b)
        qa, qb = quantize(a, pa), quantize(b, pb)

        device = StreamPIMDevice(
            StreamPIMConfig(geometry=small_geometry, bus=small_bus_config)
        )
        task = PimTask(device)
        task.add_matrix("Qa", qa)
        task.add_matrix("Qb", qb)
        task.add_matrix("raw", shape=(6, 4))
        task.add_operation(TaskOp.MATMUL, "Qa", "Qb", "raw")
        raw = task.run().results["raw"]

        k = qa.shape[1]
        corrected = (
            raw
            - pb.zero_point * qa.sum(axis=1, keepdims=True)
            - pa.zero_point * qb.sum(axis=0, keepdims=True)
            + k * pa.zero_point * pb.zero_point
        )
        approx = pa.scale * pb.scale * corrected
        exact = a @ b
        assert np.linalg.norm(approx - exact) / np.linalg.norm(exact) < 0.05
