"""Tests for the oversized-vector slicing strategy (section IV-C).

"To handle an oversized vector which is larger than a subarray's
capacity, StreamPIM employs a slicing strategy to distribute different
parts of the vector to different subarrays, process them and then
collect the results."
"""

import numpy as np
import pytest

from repro.core.device import StreamPIMConfig, StreamPIMDevice
from repro.core.task import PimTask, TaskOp
from repro.workloads.generator import random_matrix


@pytest.fixture
def sliced_geometry(small_mat_config):
    """A device with 256-word subarrays but enough of them that
    over-capacity vectors fit once sliced."""
    from repro.rm.address import DeviceGeometry
    from repro.rm.bank import BankConfig
    from repro.rm.subarray import SubarrayConfig

    return DeviceGeometry(
        banks=2,
        pim_banks=1,
        bank=BankConfig(
            subarrays=16,
            subarray=SubarrayConfig(
                mats=2, pim_mats=1, mat=small_mat_config
            ),
            pim_bank=True,
        ),
    )


@pytest.fixture
def sliced_device(sliced_geometry, small_bus_config):
    return StreamPIMDevice(
        StreamPIMConfig(geometry=sliced_geometry, bus=small_bus_config)
    )


def _capacity(device):
    return device.config.geometry.subarray_capacity_words


class TestSlicedPlacement:
    def test_oversized_row_spans_subarrays(self, sliced_device):
        task = PimTask(sliced_device)
        cols = _capacity(sliced_device) + 44
        task.add_matrix("A", shape=(2, cols))
        task.add_matrix("x", shape=(1, cols))
        task.add_matrix("y", shape=(1, 2))
        task.add_operation(TaskOp.MATVEC, "A", "x", "y")
        placer = task._build_placer()
        handles = task._place_all(placer)
        assert handles["A"].sliced
        assert task._slices_per_row(handles["A"]) == 2


class TestSlicedCosts:
    def _matvec_report(self, device, cols, rows=2):
        task = PimTask(device)
        task.add_matrix("A", shape=(rows, cols))
        task.add_matrix("x", shape=(1, cols))
        task.add_matrix("y", shape=(1, rows))
        task.add_operation(TaskOp.MATVEC, "A", "x", "y")
        return task.run(functional=False)

    def test_sliced_matvec_counts_partial_work(self, sliced_device):
        capacity = _capacity(sliced_device)
        report = self._matvec_report(sliced_device, capacity + 10)
        # 2 slices: 2 partial dots + 1 reduction add per row.
        assert report.counts.pim_vpcs == 2 * 2 + 2
        # Deliveries per partial + partial collect + final collect.
        assert report.counts.move_vpcs == 2 * 2 + 2 + 2 * 2

    def test_unsliced_counts_unchanged(self, sliced_device):
        report = self._matvec_report(sliced_device, 64)
        assert report.counts.pim_vpcs == 2
        assert report.counts.move_vpcs == 4

    def test_sliced_dot_costs_more_than_unsliced_of_same_length(
        self, sliced_geometry, small_bus_config
    ):
        times = {}
        for cols_over in (False, True):
            device = StreamPIMDevice(
                StreamPIMConfig(
                    geometry=sliced_geometry, bus=small_bus_config
                )
            )
            capacity = _capacity(device)
            cols = capacity + 20 if cols_over else capacity - 20
            times[cols_over] = self._matvec_report(device, cols).time_ns
        # The sliced version processes barely more data but pays the
        # partial-collection and reduction overheads.
        assert times[True] > times[False]

    def test_sliced_matmul_runs(self, sliced_device):
        capacity = _capacity(sliced_device)
        task = PimTask(sliced_device)
        k = capacity + 30
        task.add_matrix("A", shape=(3, k))
        task.add_matrix("B", shape=(k, 2))
        task.add_matrix("C", shape=(3, 2))
        task.add_operation(TaskOp.MATMUL, "A", "B", "C")
        report = task.run(functional=False)
        # Each of the 6 dots becomes 2 partial dots + 1 reduction.
        assert report.counts.pim_vpcs == 6 * 3
        assert report.time_ns > 0

    def test_sliced_functional_results_still_exact(self, sliced_device, rng):
        capacity = _capacity(sliced_device)
        cols = capacity + 10
        a = random_matrix(2, cols, rng)
        x = random_matrix(1, cols, rng)
        task = PimTask(sliced_device)
        task.add_matrix("A", a)
        task.add_matrix("x", x)
        task.add_matrix("y", shape=(1, 2))
        task.add_operation(TaskOp.MATVEC, "A", "x", "y")
        report = task.run()
        assert np.array_equal(report.results["y"][0], a @ x[0])
