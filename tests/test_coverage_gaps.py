"""Targeted tests for less-travelled branches across the stack."""

import numpy as np
import pytest

from repro.baselines.stpim_e import ElectricalSubarrayEngine, StpimEConfig
from repro.core.device import StreamPIMConfig, StreamPIMDevice
from repro.core.rmbus import RMBusConfig
from repro.core.scheduler import (
    PrepCostModel,
    Round,
    Scheduler,
    SchedulerPolicy,
)
from repro.core.subarray_engine import SubarrayEngine
from repro.isa.granularity import CommandGranularity, units_per_command
from repro.isa.trace import VPCTrace
from repro.isa.vpc import VPC
from repro.rm.faults import ShiftFaultConfig, ShiftFaultModel
from repro.sim.stats import EnergyBreakdown, TimeBreakdown
from repro.workloads.spec import MatrixOp, MatrixOpKind


class TestSchedulerOverhangBranches:
    def _round(self, prep_words, compute_ns, process_ns):
        return Round(
            prep_words=prep_words,
            prep_targets=2,
            compute_ns=compute_ns,
            compute_time=TimeBreakdown(process_ns=process_ns),
            compute_energy=EnergyBreakdown(compute_pj=1.0),
        )

    def test_prep_overhang_exposed_as_rw(self):
        """When total prep exceeds total compute, the overhang shows up
        as exposed read/write time."""
        scheduler = Scheduler(SchedulerPolicy.UNBLOCK)
        rounds = [self._round(100_000, 10.0, 10.0)]
        result = scheduler.compose(rounds)
        assert result.time.read_ns + result.time.write_ns > 0
        assert result.total_ns > 10.0

    def test_zero_compute_round(self):
        scheduler = Scheduler(SchedulerPolicy.UNBLOCK)
        rounds = [self._round(1000, 0.0, 0.0)]
        result = scheduler.compose(rounds)
        assert result.total_ns > 0
        assert result.time.process_ns == 0.0

    def test_hidden_prep_reclassified_as_overlapped(self):
        scheduler = Scheduler(SchedulerPolicy.UNBLOCK)
        rounds = [
            self._round(64, 1000.0, 1000.0),
            self._round(64, 1000.0, 1000.0),
        ]
        result = scheduler.compose(rounds)
        assert result.time.overlapped_ns > 0

    def test_base_policy_placement_is_base(self):
        assert not SchedulerPolicy.BASE.overlaps_prep
        assert not SchedulerPolicy.DISTRIBUTE.overlaps_prep
        assert SchedulerPolicy.UNBLOCK.overlaps_prep


class TestSubarrayEngineTran:
    def test_tran_batch_scales_linearly(self):
        engine = SubarrayEngine()
        single = engine.profile(VPC.tran(0, 100, 32))
        batch = engine.batch_profile(VPC.tran(0, 100, 32), 5)
        assert batch.cycles == 5 * single.cycles
        assert batch.energy.total_pj == pytest.approx(
            5 * single.energy.total_pj
        )

    def test_smul_charges_muls_only(self):
        engine = SubarrayEngine()
        smul = engine.profile(VPC.smul(0, 8, 16, 64))
        assert smul.energy.compute_pj == pytest.approx(
            64 * engine.timing.pim_mul_pj
        )

    def test_mul_charges_mul_plus_accumulate(self):
        engine = SubarrayEngine()
        mul = engine.profile(VPC.mul(0, 8, 16, 64))
        assert mul.energy.compute_pj == pytest.approx(
            64 * (engine.timing.pim_mul_pj + engine.timing.pim_add_pj)
        )


class TestElectricalEngine:
    def test_tran_profile_is_conversion_only(self):
        engine = ElectricalSubarrayEngine()
        profile = engine.profile(VPC.tran(0, 50, 16))
        assert profile.energy.shift_pj == 0.0
        assert profile.energy.read_pj > 0
        assert profile.energy.write_pj > 0

    def test_batch_pays_conversion_each_time(self):
        engine = ElectricalSubarrayEngine()
        vpc = VPC.mul(0, 200, 400, 64)
        single = engine.profile(vpc)
        batch = engine.batch_profile(vpc, 4)
        # Unlike the RM bus, conversions never amortise.
        assert batch.time.read_ns >= 3.9 * single.time.read_ns

    def test_energy_conversions_fewer_than_latency_hops(self):
        config = StpimEConfig()
        assert config.energy_conversions_per_word < config.conversions_per_word

    def test_batch_single_matches_profile(self):
        engine = ElectricalSubarrayEngine()
        vpc = VPC.add(0, 8, 16, 8)
        assert (
            engine.batch_profile(vpc, 1).cycles == engine.profile(vpc).cycles
        )


class TestDeviceDecodePacing:
    def test_decode_rate_limits_tiny_vpcs(self, small_geometry, small_bus_config):
        """With a huge decode cost, the command stream itself paces
        execution."""
        slow = StreamPIMConfig(
            geometry=small_geometry,
            bus=small_bus_config,
            vpc_decode_ns=10_000.0,
        )
        fast = StreamPIMConfig(
            geometry=small_geometry,
            bus=small_bus_config,
            vpc_decode_ns=1.0,
        )
        base = None
        times = {}
        for label, config in (("slow", slow), ("fast", fast)):
            device = StreamPIMDevice(config)
            addr = device.address_map.subarray_base(0, 0)
            trace = VPCTrace(
                [VPC.add(addr, addr + 8, addr + 16, 2) for _ in range(20)]
            )
            times[label] = device.execute_trace(
                trace, functional=False
            ).time_ns
        assert times["slow"] > 10 * times["fast"]


class TestGranularityVectorOps:
    @pytest.mark.parametrize(
        "kind,dims",
        [
            (MatrixOpKind.VEC_ADD, (50,)),
            (MatrixOpKind.VEC_SCALE, (50,)),
            (MatrixOpKind.DOT, (50,)),
            (MatrixOpKind.MAT_ADD, (10, 50)),
        ],
    )
    def test_vector_granularity_units(self, kind, dims):
        op = MatrixOp(kind, dims)
        units = units_per_command(op, CommandGranularity.VECTOR)
        assert units == 2 * dims[-1]

    def test_scalar_always_two_units(self):
        op = MatrixOp(MatrixOpKind.MATMUL, (10, 10, 10))
        assert units_per_command(op, CommandGranularity.SCALAR) == 2


class TestFaultModelEdges:
    def test_perfect_guard_gives_infinite_mitigation(self):
        model = ShiftFaultModel(
            ShiftFaultConfig(guard_detection=1.0)
        )
        bus = RMBusConfig()
        assert model.segmented_transfer_fault(bus, 100) == 0.0
        assert model.mitigation_factor(bus, 100) == float("inf")

    def test_zero_rate_no_faults_anywhere(self):
        model = ShiftFaultModel(ShiftFaultConfig(p_per_step=0.0))
        bus = RMBusConfig()
        assert model.monolithic_transfer_fault(bus, 100) == 0.0
        assert model.segmented_transfer_fault(bus, 100) == 0.0

    def test_words_validated(self):
        model = ShiftFaultModel()
        with pytest.raises(ValueError):
            model.monolithic_transfer_fault(RMBusConfig(), 0)
        with pytest.raises(ValueError):
            model.segmented_transfer_fault(RMBusConfig(), -1)

    def test_distance_exponent_validated(self):
        with pytest.raises(ValueError):
            ShiftFaultConfig(distance_exponent=0.5)


class TestTaskEdges:
    def test_vec_ops_lowering(self, small_geometry, small_bus_config):
        from repro.core.task import PimTask, TaskOp

        device = StreamPIMDevice(
            StreamPIMConfig(geometry=small_geometry, bus=small_bus_config)
        )
        task = PimTask(device)
        task.add_vector("x", np.array([1, 2, 3, 4]))
        task.add_vector("y", np.array([5, 6, 7, 8]))
        task.add_matrix("z", shape=(1, 4))
        task.add_matrix("w", shape=(1, 4))
        task.add_scalar("k", 3)
        task.add_operation(TaskOp.VEC_ADD, "x", "y", "z")
        task.add_operation(TaskOp.VEC_SCALE, "z", "w", scalar="k")
        report = task.run()
        assert list(report.results["z"][0]) == [6, 8, 10, 12]
        assert list(report.results["w"][0]) == [18, 24, 30, 36]

    def test_dot_lowering_and_counts(self, small_geometry, small_bus_config):
        from repro.core.task import PimTask, TaskOp

        device = StreamPIMDevice(
            StreamPIMConfig(geometry=small_geometry, bus=small_bus_config)
        )
        task = PimTask(device)
        task.add_vector("x", np.array([1, 2, 3]))
        task.add_vector("y", np.array([4, 5, 6]))
        task.add_matrix("s", shape=(1, 1))
        task.add_operation(TaskOp.DOT, "x", "y", "s")
        report = task.run()
        assert report.results["s"][0, 0] == 32
        assert report.counts.pim_vpcs == 1
        assert report.counts.move_vpcs == 2


class TestPrepModelEdges:
    def test_blocked_width_used_when_not_unblocked(self):
        model = PrepCostModel(blocked_access_width=1)
        blocked = Scheduler(SchedulerPolicy.BASE, prep_model=model)
        fluid = Scheduler(SchedulerPolicy.UNBLOCK, prep_model=model)
        round_ = Round(prep_words=640, prep_targets=1)
        assert blocked.prep_duration_ns(round_) > fluid.prep_duration_ns(
            round_
        )
