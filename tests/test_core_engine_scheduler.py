"""Tests for the subarray engine, placement, and scheduler."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.placement import (
    MatrixHandle,
    Placer,
    PlacementPolicy,
)
from repro.core.scheduler import (
    PrepCostModel,
    Round,
    Scheduler,
    SchedulerPolicy,
)
from repro.core.subarray_engine import SubarrayEngine
from repro.isa.vpc import VPC, VPCOpcode
from repro.sim.stats import EnergyBreakdown, TimeBreakdown


class TestSubarrayEngine:
    def test_profile_time_matches_cycles(self):
        engine = SubarrayEngine()
        profile = engine.profile(VPC.mul(0, 0, 0, 100))
        assert profile.time_ns == pytest.approx(
            profile.cycles * engine.timing.cycle_ns
        )

    def test_compute_has_energy_in_both_categories(self):
        engine = SubarrayEngine()
        profile = engine.profile(VPC.mul(0, 0, 0, 100))
        assert profile.energy.compute_pj > 0
        assert profile.energy.shift_pj > 0
        assert profile.energy.read_pj == 0  # no conversion on the RM path

    def test_tran_is_pure_shift(self):
        engine = SubarrayEngine()
        profile = engine.profile(VPC.tran(0, 1, 50))
        assert profile.energy.compute_pj == 0
        assert profile.energy.shift_pj > 0
        assert profile.time.shift_ns == pytest.approx(profile.time_ns)

    def test_transfer_mostly_overlapped_for_long_vectors(self):
        # Fig. 19: StPIM hides transfer under compute.
        engine = SubarrayEngine()
        profile = engine.profile(VPC.mul(0, 0, 0, 2000))
        assert profile.time.shift_ns / profile.time_ns < 0.05

    def test_add_faster_than_mul(self):
        engine = SubarrayEngine()
        mul = engine.profile(VPC.mul(0, 0, 0, 500))
        add = engine.profile(VPC.add(0, 0, 0, 500))
        assert add.cycles < mul.cycles

    def test_batch_single_equals_profile(self):
        engine = SubarrayEngine()
        vpc = VPC.mul(0, 0, 0, 64)
        assert engine.batch_profile(vpc, 1).cycles == engine.profile(vpc).cycles

    def test_batch_cheaper_than_independent_runs(self):
        """Pipelining across VPCs amortises fills."""
        engine = SubarrayEngine()
        vpc = VPC.mul(0, 0, 0, 64)
        single = engine.profile(vpc)
        batch = engine.batch_profile(vpc, 10)
        assert batch.cycles < 10 * single.cycles
        assert batch.cycles > single.cycles

    def test_batch_energy_scales_linearly(self):
        engine = SubarrayEngine()
        vpc = VPC.add(0, 0, 0, 32)
        single = engine.profile(vpc)
        batch = engine.batch_profile(vpc, 7)
        assert batch.energy.total_pj == pytest.approx(
            7 * single.energy.total_pj
        )

    def test_batch_time_categories_sum_to_total(self):
        engine = SubarrayEngine()
        batch = engine.batch_profile(VPC.mul(0, 0, 0, 100), 5)
        assert batch.time.total_ns == pytest.approx(
            batch.cycles * engine.timing.cycle_ns
        )

    def test_batch_rejects_nonpositive_count(self):
        engine = SubarrayEngine()
        with pytest.raises(ValueError):
            engine.batch_profile(VPC.mul(0, 0, 0, 8), 0)

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=4096),
        count=st.integers(min_value=1, max_value=20),
        opcode=st.sampled_from([VPCOpcode.MUL, VPCOpcode.SMUL, VPCOpcode.ADD]),
    )
    def test_property_batch_bounds(self, n, count, opcode):
        """Batch latency lies between 1x and count x the single latency."""
        engine = SubarrayEngine()
        vpc = VPC(opcode, 0, 0, 1, n)
        single = engine.profile(vpc).cycles
        batch = engine.batch_profile(vpc, count).cycles
        assert single <= batch <= count * single


class TestPlacer:
    def test_distribute_spreads_rows(self, small_geometry):
        placer = Placer(small_geometry, PlacementPolicy.DISTRIBUTE)
        handle = placer.place_matrix("A", rows=4, cols=8)
        assert len(handle.subarrays_used()) == 4

    def test_base_packs_sequentially(self, small_geometry):
        placer = Placer(small_geometry, PlacementPolicy.BASE)
        handle = placer.place_matrix("A", rows=4, cols=8)
        assert len(handle.subarrays_used()) == 1

    def test_base_spills_when_full(self, small_geometry):
        placer = Placer(small_geometry, PlacementPolicy.BASE)
        capacity = placer.subarray_capacity_words
        # Two rows fit per subarray, so three rows need two subarrays.
        handle = placer.place_matrix("A", rows=3, cols=capacity // 2 - 1)
        assert len(handle.subarrays_used()) == 2

    def test_oversized_row_sliced(self, small_geometry):
        placer = Placer(small_geometry, PlacementPolicy.DISTRIBUTE)
        capacity = placer.subarray_capacity_words
        handle = placer.place_matrix("A", rows=1, cols=capacity + 10)
        assert handle.sliced
        slices = handle.row_slices(0)
        assert len(slices) == 2
        assert slices[0].length == capacity
        assert slices[1].length == 10
        assert slices[1].offset == capacity

    def test_duplicate_name_rejected(self, small_geometry):
        placer = Placer(small_geometry)
        placer.place_matrix("A", 1, 1)
        with pytest.raises(ValueError):
            placer.place_matrix("A", 1, 1)

    def test_capacity_exhaustion_raises(self, small_geometry):
        placer = Placer(small_geometry)
        total = placer.subarray_capacity_words * len(placer.operand_pool)
        with pytest.raises(MemoryError):
            placer.place_matrix("A", rows=1 + total // 100, cols=101)

    def test_disjoint_result_sets(self, small_geometry):
        placer = Placer(
            small_geometry,
            PlacementPolicy.DISTRIBUTE,
            disjoint_result_sets=True,
        )
        operands = set(placer.operand_pool)
        results = set(placer.result_pool)
        assert operands.isdisjoint(results)
        a = placer.place_matrix("A", 2, 4, result=False)
        c = placer.place_matrix("C", 2, 4, result=True)
        assert set(a.subarrays_used()) <= operands
        assert set(c.subarrays_used()) <= results

    def test_overlapping_pools_without_unblock(self, small_geometry):
        placer = Placer(small_geometry, disjoint_result_sets=False)
        assert set(placer.operand_pool) == set(placer.result_pool)

    def test_addresses_within_subarray(self, small_geometry):
        placer = Placer(small_geometry)
        handle = placer.place_matrix("A", 3, 10)
        for row in range(3):
            for piece in handle.row_slices(row):
                start = placer.address_map.subarray_of(piece.address)
                end = placer.address_map.subarray_of(
                    piece.address + piece.length - 1
                )
                assert start == end == piece.subarray_key

    def test_plan_lookup(self, small_geometry):
        placer = Placer(small_geometry)
        placer.place_matrix("A", 1, 1)
        assert placer.plan.handle("A").name == "A"
        with pytest.raises(KeyError):
            placer.plan.handle("missing")

    def test_rejects_bad_shape(self, small_geometry):
        with pytest.raises(ValueError):
            Placer(small_geometry).place_matrix("A", 0, 5)

    def test_rejects_geometry_without_pim(self, small_geometry):
        from repro.rm.address import DeviceGeometry

        geo = DeviceGeometry(
            banks=small_geometry.banks,
            pim_banks=0,
            bank=small_geometry.bank,
        )
        with pytest.raises(ValueError):
            Placer(geo)


def _round(prep_words=0, targets=1, compute_ns=0.0, shift=0.0, process=0.0):
    time = TimeBreakdown(shift_ns=shift, process_ns=process)
    return Round(
        prep_words=prep_words,
        prep_targets=targets,
        compute_ns=compute_ns,
        compute_time=time,
        compute_energy=EnergyBreakdown(compute_pj=1.0),
    )


class TestScheduler:
    def test_empty_rounds(self):
        result = Scheduler().compose([])
        assert result.total_ns == 0.0
        assert result.rounds == 0

    def test_blocked_policies_serialise(self):
        sched = Scheduler(SchedulerPolicy.DISTRIBUTE)
        rounds = [_round(prep_words=64, compute_ns=100.0) for _ in range(3)]
        prep = sched.prep_duration_ns(rounds[0])
        result = sched.compose(rounds)
        assert result.total_ns == pytest.approx(3 * (prep + 100.0))

    def test_unblock_overlaps_prep(self):
        sched = Scheduler(SchedulerPolicy.UNBLOCK)
        rounds = [
            _round(prep_words=640, targets=4, compute_ns=1000.0, process=1000.0)
            for _ in range(4)
        ]
        serial = Scheduler(SchedulerPolicy.DISTRIBUTE).compose(rounds)
        overlapped = sched.compose(rounds)
        assert overlapped.total_ns < serial.total_ns

    def test_unblock_bound_by_max_of_prep_and_compute(self):
        sched = Scheduler(SchedulerPolicy.UNBLOCK)
        rounds = [
            _round(prep_words=64, targets=2, compute_ns=500.0, process=500.0)
            for _ in range(5)
        ]
        total_prep = sum(sched.prep_duration_ns(r) for r in rounds)
        result = sched.compose(rounds)
        assert result.total_ns >= max(5 * 500.0, total_prep * 0.99)

    def test_blocked_prep_slower_than_unblock_prep(self):
        round_ = _round(prep_words=1000, targets=8)
        blocked = Scheduler(SchedulerPolicy.DISTRIBUTE).prep_duration_ns(round_)
        fluid = Scheduler(SchedulerPolicy.UNBLOCK).prep_duration_ns(round_)
        assert blocked > fluid

    def test_prep_energy_independent_of_policy(self):
        round_ = _round(prep_words=1000, targets=8)
        blocked = Scheduler(SchedulerPolicy.DISTRIBUTE).prep_energy(round_)
        fluid = Scheduler(SchedulerPolicy.UNBLOCK).prep_energy(round_)
        assert blocked.total_pj == pytest.approx(fluid.total_pj)

    def test_no_prep_costs_nothing(self):
        sched = Scheduler()
        assert sched.prep_duration_ns(_round(prep_words=0)) == 0.0
        assert sched.prep_energy(_round(prep_words=0)).total_pj == 0.0

    def test_energy_includes_prep_and_compute(self):
        sched = Scheduler(SchedulerPolicy.UNBLOCK)
        rounds = [_round(prep_words=128, compute_ns=10.0)]
        result = sched.compose(rounds)
        assert result.energy.compute_pj == pytest.approx(1.0)
        assert result.energy.read_pj > 0
        assert result.energy.write_pj > 0

    def test_time_breakdown_sums_to_total(self):
        for policy in SchedulerPolicy:
            sched = Scheduler(policy)
            rounds = [
                _round(
                    prep_words=200,
                    targets=3,
                    compute_ns=100.0,
                    process=80.0,
                    shift=20.0,
                )
                for _ in range(3)
            ]
            result = sched.compose(rounds)
            assert result.time.total_ns == pytest.approx(
                result.total_ns, rel=1e-6
            ), policy

    def test_prep_cost_model_validation(self):
        with pytest.raises(ValueError):
            PrepCostModel(access_width_words=0)
        with pytest.raises(ValueError):
            PrepCostModel(write_access_width_words=0)
        with pytest.raises(ValueError):
            PrepCostModel(unblock_parallelism=0)
        with pytest.raises(ValueError):
            PrepCostModel(activate_ns=-1)

    @settings(max_examples=30)
    @given(
        n_rounds=st.integers(min_value=1, max_value=10),
        prep_words=st.integers(min_value=0, max_value=10_000),
        compute_ns=st.floats(min_value=0.0, max_value=1e6),
    )
    def test_property_unblock_never_slower_than_blocked(
        self, n_rounds, prep_words, compute_ns
    ):
        rounds = [
            _round(
                prep_words=prep_words,
                targets=4,
                compute_ns=compute_ns,
                process=compute_ns,
            )
            for _ in range(n_rounds)
        ]
        blocked = Scheduler(SchedulerPolicy.DISTRIBUTE).compose(rounds)
        fluid = Scheduler(SchedulerPolicy.UNBLOCK).compose(rounds)
        assert fluid.total_ns <= blocked.total_ns + 1e-9
