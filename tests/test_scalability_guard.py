"""Scalability regression guards.

The analytic mode's entire value is simulating paper-scale workloads in
interactive time; these guards fail if a change reintroduces per-VPC
work on the paper-scale path.
"""

import time

import pytest

from repro.baselines.stpim import StreamPIMPlatform
from repro.workloads import POLYBENCH


class TestAnalyticScalability:
    def test_gemm_paper_scale_is_interactive(self):
        """4.6M-VPC gemm must simulate in seconds, not minutes."""
        platform = StreamPIMPlatform()
        start = time.perf_counter()
        stats = platform.run(POLYBENCH["gemm"])
        elapsed = time.perf_counter() - start
        assert stats.counters["pim_vpcs"] == 4_606_000
        assert elapsed < 30.0, f"analytic gemm took {elapsed:.1f}s"

    def test_syr2k_largest_trace_is_interactive(self):
        """13.5M VPCs — the largest Table IV workload."""
        platform = StreamPIMPlatform()
        start = time.perf_counter()
        stats = platform.run(POLYBENCH["syr2k"])
        elapsed = time.perf_counter() - start
        assert stats.counters["pim_vpcs"] > 1.3e7
        assert elapsed < 30.0, f"analytic syr2k took {elapsed:.1f}s"

    def test_simulation_cost_scales_with_rounds_not_vpcs(self):
        """Doubling the broadcast side (rounds) roughly doubles wall
        time; the dot count per round is free."""
        platform = StreamPIMPlatform()
        small = POLYBENCH["gemm"].scaled(0.25, name="quarter")
        start = time.perf_counter()
        platform.run(small)
        quarter_time = time.perf_counter() - start
        start = time.perf_counter()
        platform.run(POLYBENCH["gemm"])
        full_time = time.perf_counter() - start
        # Full gemm has 16x the VPCs but only 4x the rounds of the
        # quarter-scale version; wall time must follow rounds.
        assert full_time < 12 * max(quarter_time, 0.01)
