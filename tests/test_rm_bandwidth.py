"""Tests tying the CPU-RM bandwidth constant to the RM substrate."""

import pytest

from repro.baselines.cpu import CPU_RM_CONFIG
from repro.dram import DDR4_2400
from repro.rm.bandwidth import (
    interleaved_bandwidth_gbps,
    random_jump_bandwidth_gbps,
    sequential_bandwidth_gbps,
)
from repro.rm.device import RMDevice


class TestRMBandwidth:
    def test_interleaving_multiplies_throughput(self):
        single = sequential_bandwidth_gbps(accesses=32)
        interleaved = interleaved_bandwidth_gbps(accesses=32, subarrays=8)
        assert interleaved > 4 * single

    def test_random_slower_than_streaming(self):
        assert random_jump_bandwidth_gbps() < sequential_bandwidth_gbps()

    def test_cpu_rm_constant_bracketed(self):
        """The analytic CPU-RM bandwidth (1.7 GB/s) lies between one
        subarray's streaming rate and an 8-way interleaved stream —
        partial interleaving, as mixed PolyBench access patterns get."""
        single = sequential_bandwidth_gbps(accesses=64)
        interleaved = interleaved_bandwidth_gbps(accesses=64, subarrays=8)
        assert single < CPU_RM_CONFIG.memory_bandwidth_gbps <= interleaved * 1.1

    def test_rm_slower_than_dram_streaming(self):
        """Fig. 17's CPU-DRAM > CPU-RM ordering comes from the
        substrates: RM's shift-before-access throttles streaming."""
        rm = interleaved_bandwidth_gbps(accesses=32, subarrays=8)
        assert rm < DDR4_2400.peak_bandwidth_gbps / 2

    def test_measurement_charges_real_shifts(self):
        device = RMDevice()
        sequential_bandwidth_gbps(device, accesses=8)
        assert device.energy.n_shifts > 0
        assert device.energy.n_reads == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            sequential_bandwidth_gbps(accesses=0)
        with pytest.raises(ValueError):
            interleaved_bandwidth_gbps(subarrays=0)
        with pytest.raises(ValueError):
            sequential_bandwidth_gbps(words_per_access=0)
