"""Content-addressed trace cache: keys, integrity, wiring.

The invalidation contract: a cache key covers everything the trace
bytes depend on, so any change to the workload, device geometry,
placement policy, or the lowering algorithm makes old entries
unreachable.  The integrity contract: a corrupted or truncated entry is
detected by checksum, deleted, and recompiled — never half-loaded.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.core.compile import (
    LOWERING_VERSION,
    compile_workload,
    task_cache_key,
)
from repro.core.device import StreamPIMConfig, StreamPIMDevice
from repro.core.scheduler import SchedulerPolicy
from repro.isa.columnar import ColumnarTrace
from repro.isa.trace import VPCTrace
from repro.isa.trace_cache import TraceCache, make_cache_key
from repro.isa.vpc import VPC
from repro.obs.metrics import MetricsRegistry
from repro.workloads import polybench_workload


def _spec(scale=0.01):
    return polybench_workload("gemm", scale=scale)


def _sample_trace():
    return ColumnarTrace.from_trace(
        VPCTrace(
            [VPC.mul(0, 8, 16, 4), VPC.tran(16, 32, 4)]
        )
    )


class TestCacheKey:
    def test_key_is_stable(self):
        device = StreamPIMDevice()
        assert task_cache_key(_spec(), device) == task_cache_key(
            _spec(), device
        )

    def test_key_changes_with_workload_scale(self):
        device = StreamPIMDevice()
        assert task_cache_key(_spec(0.01), device) != task_cache_key(
            _spec(0.02), device
        )

    def test_key_changes_with_seed(self):
        device = StreamPIMDevice()
        assert task_cache_key(_spec(), device, seed=7) != task_cache_key(
            _spec(), device, seed=8
        )

    def test_key_changes_with_geometry(self, small_device):
        assert task_cache_key(_spec(), StreamPIMDevice()) != task_cache_key(
            _spec(), small_device
        )

    def test_key_changes_with_placement_policy(self):
        keys = {
            task_cache_key(
                _spec(),
                StreamPIMDevice(
                    StreamPIMConfig(scheduler_policy=policy)
                ),
            )
            for policy in SchedulerPolicy
        }
        assert len(keys) == len(SchedulerPolicy)

    def test_key_changes_with_lowering_version(self, monkeypatch):
        device = StreamPIMDevice()
        before = task_cache_key(_spec(), device)
        monkeypatch.setattr(
            "repro.core.compile.LOWERING_VERSION", LOWERING_VERSION + 1
        )
        assert task_cache_key(_spec(), device) != before

    def test_make_cache_key_order_independent(self):
        assert make_cache_key(a=1, b=[2, 3]) == make_cache_key(b=[2, 3], a=1)
        assert make_cache_key(a=1) != make_cache_key(a=2)


class TestTraceCacheStore:
    def test_put_get_round_trip(self, tmp_path):
        cache = TraceCache(tmp_path / "c")
        trace = _sample_trace()
        cache.put(
            "k" * 64,
            trace,
            aux={"plan": {"x": 1}},
            provenance={"workload": "t"},
        )
        entry = TraceCache(tmp_path / "c").get("k" * 64)
        assert entry is not None
        assert entry.trace == trace
        assert entry.aux == {"plan": {"x": 1}}
        assert entry.provenance == {"workload": "t"}

    def test_absent_key_is_a_miss(self, tmp_path):
        registry = MetricsRegistry()
        cache = TraceCache(tmp_path / "c", registry=registry)
        assert cache.get("0" * 64) is None
        assert registry.counter("trace_cache.misses").value == 1

    @pytest.mark.parametrize(
        "corrupt",
        [
            lambda blob: blob[:-1],  # truncated payload
            lambda blob: b"XXXX\x01" + blob[5:],  # wrong magic
            lambda blob: blob[:40] + b"\xff" + blob[41:],  # flipped meta
            lambda blob: blob[:-3]
            + bytes(b ^ 0xFF for b in blob[-3:]),  # payload bits
            lambda blob: blob[: len(blob) // 2],  # half a file
        ],
    )
    def test_corruption_detected_and_dropped(self, tmp_path, corrupt):
        registry = MetricsRegistry()
        cache = TraceCache(tmp_path / "c", registry=registry)
        key = "a" * 64
        path = cache.put(key, _sample_trace())
        path.write_bytes(corrupt(path.read_bytes()))
        fresh = TraceCache(tmp_path / "c", registry=registry)
        assert fresh.get(key) is None
        assert not path.exists()  # dropped, ready for the recompile
        assert registry.counter("trace_cache.corrupt").value == 1

    def test_corrupt_entry_recompiles_never_half_loads(self, tmp_path):
        cache = TraceCache(tmp_path / "c")
        key = "b" * 64
        trace = _sample_trace()
        calls = []

        def compile_fn():
            calls.append(1)
            return trace, {"plan": {}}

        entry, hit = cache.get_or_compile(key, compile_fn)
        assert not hit and len(calls) == 1
        path = cache.entry_path(key)
        path.write_bytes(path.read_bytes()[:-2])
        fresh = TraceCache(tmp_path / "c")
        entry, hit = fresh.get_or_compile(key, compile_fn)
        assert not hit and len(calls) == 2
        assert entry.trace == trace
        # The recompiled entry replaced the corrupt file.
        again, hit = TraceCache(tmp_path / "c").get_or_compile(
            key, compile_fn
        )
        assert hit and len(calls) == 2

    def test_memory_lru_front(self, tmp_path):
        registry = MetricsRegistry()
        cache = TraceCache(
            tmp_path / "c", registry=registry, memory_entries=1
        )
        trace = _sample_trace()
        cache.put("c" * 64, trace)
        cache.put("d" * 64, trace)  # evicts c* from the LRU
        assert cache.get("d" * 64) is not None  # memory hit
        assert cache.get("c" * 64) is not None  # disk hit
        assert registry.counter("trace_cache.memory_hits").value == 1
        assert registry.counter("trace_cache.hits").value == 2

    def test_stats_persist_across_instances(self, tmp_path):
        cache = TraceCache(tmp_path / "c", memory_entries=0)
        cache.put("e" * 64, _sample_trace())
        cache.get("e" * 64)
        cache.get("f" * 64)
        stats = TraceCache(tmp_path / "c").stats()
        assert stats["puts"] == 1
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["entries"] == 1
        assert stats["entry_bytes"] > 0

    def test_clear_removes_entries_and_counters(self, tmp_path):
        cache = TraceCache(tmp_path / "c")
        cache.put("f" * 64, _sample_trace())
        assert cache.clear() == 1
        assert cache.get("f" * 64) is None
        stats = cache.stats()
        assert stats["entries"] == 0
        assert stats["puts"] == 0  # counters reset with the store


class TestCompileWorkload:
    def test_second_compile_is_a_hit_with_identical_trace(self):
        cold = compile_workload(_spec())
        warm = compile_workload(_spec())
        assert not cold.cache_hit
        assert warm.cache_hit
        assert warm.cache_key == cold.cache_key
        assert warm.trace.to_bytes() == cold.trace.to_bytes()

    def test_cached_task_state_supports_functional_run(self):
        def run(compiled):
            compiled.task.materialize(compiled.device)
            compiled.device.execute_trace(compiled.trace, functional=True)
            return compiled.task.fetch_results(compiled.device)

        fresh = run(compile_workload(_spec()))
        cached_compiled = compile_workload(_spec())
        assert cached_compiled.cache_hit
        cached = run(cached_compiled)
        assert fresh.keys() == cached.keys()
        for name in fresh:
            np.testing.assert_array_equal(fresh[name], cached[name])

    def test_use_cache_false_touches_nothing(self, tmp_path):
        cache_dir = tmp_path / "never"
        compiled = compile_workload(
            _spec(), use_cache=False, cache_dir=cache_dir
        )
        assert not compiled.cache_hit
        assert compiled.cache_key == ""
        assert not cache_dir.exists()

    def test_unusable_aux_recompiles(self, tmp_path):
        cache = TraceCache(tmp_path / "c")
        cold = compile_workload(_spec(), cache=cache)
        # Clobber the stored placement plan: the entry still decodes,
        # but the plan cannot be restored, so compile falls back.
        path = cache.entry_path(cold.cache_key)
        blob = path.read_bytes()
        entry = cache._decode_entry(cold.cache_key, blob)
        assert entry is not None
        cache.put(cold.cache_key, entry.trace, aux={"plan": "garbage"})
        cache._memory.clear()
        warm = compile_workload(_spec(), cache=cache)
        assert not warm.cache_hit
        assert warm.trace.to_bytes() == cold.trace.to_bytes()


class TestCampaignWiring:
    def test_campaign_identical_with_and_without_cache(self):
        from repro.resilience import FaultCampaignConfig, run_campaign
        from repro.rm.faults import ShiftFaultConfig

        config = FaultCampaignConfig(
            faults=ShiftFaultConfig(p_per_step=2e-6)
        )
        kwargs = dict(
            config=config, scale=0.01, runs=3, master_seed=5
        )
        cached = run_campaign("gemm", use_cache=True, **kwargs)
        uncached = run_campaign("gemm", use_cache=False, **kwargs)
        assert cached.to_dict() == uncached.to_dict()

    def test_campaign_hits_the_cache(self):
        from repro.resilience import run_campaign

        run_campaign("gemm", scale=0.01, runs=3)
        stats = TraceCache().stats()
        assert stats["puts"] == 1
        assert stats["hits"] >= 3


class TestCacheCLI:
    def test_stats_and_clear(self, capsys):
        from repro.cli import main

        compile_workload(_spec())
        compile_workload(_spec())
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "hits      : 1" in out
        assert "misses    : 1" in out
        assert main(["cache", "clear"]) == 0
        assert "removed 1 cached trace(s)" in capsys.readouterr().out

    def test_stats_json(self, capsys):
        from repro.cli import main

        compile_workload(_spec())
        assert main(["cache", "stats", "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["puts"] == 1
        assert stats["entries"] == 1

    def test_trace_command_reports_cache_hit(self, capsys):
        from repro.cli import main

        assert main(["trace", "gemm", "--scale", "0.01"]) == 0
        assert "(compiled)" in capsys.readouterr().out
        assert main(["trace", "gemm", "--scale", "0.01"]) == 0
        assert "(cache hit)" in capsys.readouterr().out
        assert (
            main(
                ["trace", "gemm", "--scale", "0.01", "--no-trace-cache"]
            )
            == 0
        )
        assert "(compiled)" in capsys.readouterr().out

    def test_cache_dir_flag_overrides_env(self, tmp_path, capsys):
        from repro.cli import main

        other = tmp_path / "elsewhere"
        assert (
            main(
                [
                    "trace",
                    "gemm",
                    "--scale",
                    "0.01",
                    "--cache-dir",
                    str(other),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", str(other)]) == 0
        assert "entries   : 1" in capsys.readouterr().out


class TestStatsCrashSafety:
    """``stats.json`` damage must never raise — tolerate + regenerate."""

    def _cache_with_stats(self, tmp_path):
        cache = TraceCache(tmp_path / "c", memory_entries=0)
        cache.put("a" * 64, _sample_trace())
        cache.get("a" * 64)
        path = cache.cache_dir / "stats.json"
        assert path.is_file()
        return cache, path

    def test_truncated_mid_content_tolerated_and_regenerated(
        self, tmp_path
    ):
        cache, path = self._cache_with_stats(tmp_path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])  # crash mid-write
        stats = TraceCache(tmp_path / "c").stats()
        assert stats["hits"] == 0  # damaged counters read as zero
        assert stats["entries"] == 1  # the store itself is untouched
        # The damaged file was atomically replaced with a clean one.
        regenerated = json.loads(path.read_text("utf-8"))
        assert regenerated["hits"] == 0

    @pytest.mark.parametrize(
        "damage",
        [
            b"",  # zero-length (crash before any byte landed)
            b"{\"hits\": 3",  # truncated json
            b"not json at all",
            b"[1, 2, 3]",  # wrong shape
            b"{\"hits\": \"many\"}",  # wrong-typed counter
            b"{\"hits\": -4}",  # nonsense value
        ],
    )
    def test_damaged_stats_read_as_zero(self, tmp_path, damage):
        cache, path = self._cache_with_stats(tmp_path)
        path.write_bytes(damage)
        stats = TraceCache(tmp_path / "c").stats()
        assert stats["hits"] == 0
        assert json.loads(path.read_text("utf-8"))  # clean file again

    def test_partial_damage_keeps_the_valid_counters(self, tmp_path):
        cache, path = self._cache_with_stats(tmp_path)
        path.write_text('{"hits": 5, "puts": "garbage"}')
        stats = TraceCache(tmp_path / "c").stats()
        assert stats["hits"] == 5
        assert stats["puts"] == 0

    def test_counting_through_damage_still_works(self, tmp_path):
        cache, path = self._cache_with_stats(tmp_path)
        path.write_bytes(b"\xff\xfe garbage")
        cache.get("a" * 64)  # bumps counters through the damaged file
        stats = TraceCache(tmp_path / "c").stats()
        assert stats["hits"] == 1

    def test_writes_leave_no_temp_residue(self, tmp_path):
        cache, path = self._cache_with_stats(tmp_path)
        leftovers = list(cache.cache_dir.glob(".stats.*.tmp"))
        assert leftovers == []


class TestInflightTracker:
    def _tracker(self, tmp_path, **kwargs):
        from repro.isa.trace_cache import InflightTracker

        return InflightTracker(tmp_path / "c", **kwargs)

    def test_mark_clear_round_trip(self, tmp_path):
        tracker = self._tracker(tmp_path)
        tracker.mark("k1")
        assert tracker.is_inflight("k1")
        assert tracker.active()["k1"]["pid"] == __import__("os").getpid()
        tracker.clear("k1")
        assert not tracker.is_inflight("k1")

    def test_dead_owner_is_stale_and_pruned(self, tmp_path):
        import multiprocessing

        proc = multiprocessing.get_context("spawn").Process(target=int)
        proc.start()
        proc.join()
        tracker = self._tracker(tmp_path)
        path = tracker.mark("k1")
        payload = json.loads(path.read_text("utf-8"))
        payload["pid"] = proc.pid  # a pid that no longer runs
        path.write_text(json.dumps(payload))
        assert not tracker.is_inflight("k1")
        assert not path.exists()  # a crashed worker leaves no residue

    def test_too_old_marker_is_stale(self, tmp_path):
        import time as _time

        tracker = self._tracker(tmp_path, max_age_s=10.0)
        path = tracker.mark("k1")
        payload = json.loads(path.read_text("utf-8"))
        payload["started"] = _time.time() - 3600.0
        path.write_text(json.dumps(payload))
        assert not tracker.is_inflight("k1")

    def test_unreadable_marker_is_stale(self, tmp_path):
        tracker = self._tracker(tmp_path)
        path = tracker.mark("k1")
        path.write_bytes(b"{half a mar")  # crash mid-write
        assert tracker.active() == {}
        assert not path.exists()

    def test_compile_marks_and_clears(self, tmp_path):
        from repro.isa.trace_cache import InflightTracker

        events = []

        class Recording(InflightTracker):
            def mark(self, key):
                events.append(("mark", key))
                return super().mark(key)

            def clear(self, key):
                events.append(("clear", key))
                super().clear(key)

        cache = TraceCache(tmp_path / "c")
        tracker = Recording(cache.cache_dir)
        cold = compile_workload(_spec(), cache=cache, inflight=tracker)
        assert events == [
            ("mark", cold.cache_key),
            ("clear", cold.cache_key),
        ]
        assert tracker.active() == {}  # nothing left behind
        # A warm hit never marks: no compile is in flight.
        events.clear()
        warm = compile_workload(_spec(), cache=cache, inflight=tracker)
        assert warm.cache_hit
        assert events == []


def test_config_key_uses_geometry_dataclass():
    """Guard: geometry must stay asdict-able or keys silently collide."""
    device = StreamPIMDevice()
    assert dataclasses.is_dataclass(device.config.geometry)
