"""Tests for the analytic baseline platforms."""

import pytest

from repro.baselines import (
    CoruscantPlatform,
    CpuDRAM,
    CpuRM,
    Elp2imPlatform,
    FelixPlatform,
    GpuPlatform,
    StreamPIMPlatform,
    StpimEPlatform,
    default_platforms,
)
from repro.baselines.coruscant import CoruscantConfig
from repro.baselines.cpu import CpuModelConfig
from repro.baselines.elp2im import Elp2imConfig
from repro.baselines.felix import FelixConfig
from repro.baselines.gpu import GpuModelConfig
from repro.baselines.stpim import spec_to_task
from repro.baselines.stpim_e import StpimEConfig
from repro.workloads import POLYBENCH, SMALL_KERNELS, polybench_workload
from repro.workloads.spec import MatrixOp, MatrixOpKind, WorkloadSpec


@pytest.fixture(scope="module")
def tiny_gemm():
    return polybench_workload("gemm", scale=0.02)


@pytest.fixture(scope="module")
def tiny_atax():
    return polybench_workload("atax", scale=0.02)


class TestRegistry:
    def test_default_platform_set(self):
        platforms = default_platforms()
        assert set(platforms) == {
            "CPU-RM",
            "CPU-DRAM",
            "ELP2IM",
            "FELIX",
            "CORUSCANT",
            "StPIM-e",
            "StPIM",
        }

    def test_labels_match_instances(self):
        for name, platform in default_platforms().items():
            assert platform.name == name

    def test_run_many(self, tiny_gemm, tiny_atax):
        results = CpuRM().run_many([tiny_gemm, tiny_atax])
        assert set(results) == {tiny_gemm.name, tiny_atax.name}


class TestCpu:
    def test_dram_faster_than_rm(self, tiny_gemm):
        assert CpuDRAM().run(tiny_gemm).time_ns < CpuRM().run(tiny_gemm).time_ns

    def test_memory_share_small_kernels_near_paper(self):
        """Fig. 3a: ~47.6% of CPU-RM time is memory on small kernels."""
        cpu = CpuRM()
        shares = []
        for name in SMALL_KERNELS:
            stats = cpu.run(POLYBENCH[name])
            fractions = stats.time_breakdown.fractions()
            shares.append(fractions["read"] + fractions["write"])
        average = sum(shares) / len(shares)
        assert abs(average - 0.476) < 0.05

    def test_time_is_compute_plus_memory(self, tiny_gemm):
        cpu = CpuRM()
        stats = cpu.run(tiny_gemm)
        assert stats.time_ns == pytest.approx(
            cpu.compute_ns(tiny_gemm) + cpu.memory_ns(tiny_gemm)
        )

    def test_matmul_traffic_uses_inner_loop_model(self):
        cpu = CpuRM()
        mm = WorkloadSpec("mm", [MatrixOp(MatrixOpKind.MATMUL, (10, 10, 10))])
        mv = WorkloadSpec("mv", [MatrixOp(MatrixOpKind.MATVEC, (10, 10))])
        assert cpu.traffic_bytes(mm) == pytest.approx(
            1000 * cpu.config.mm_bytes_per_iter
        )
        assert cpu.traffic_bytes(mv) == pytest.approx(
            (100 + 10 + 10) * cpu.config.element_bytes
        )

    def test_energy_positive_both_categories(self, tiny_gemm):
        stats = CpuDRAM().run(tiny_gemm)
        assert stats.energy.compute_pj > 0
        assert stats.energy.transfer_pj > 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CpuModelConfig(effective_gflops=0)


class TestGpu:
    def test_small_kernel_transfer_dominated(self):
        """Fig. 3b: ~90% of GPU time is data transfer on small kernels."""
        gpu = GpuPlatform()
        fractions = [
            gpu.transfer_fraction(POLYBENCH[name]) for name in SMALL_KERNELS
        ]
        average = sum(fractions) / len(fractions)
        assert average > 0.75

    def test_large_kernels_less_transfer_bound(self):
        gpu = GpuPlatform()
        assert gpu.transfer_fraction(POLYBENCH["gemm"]) < gpu.transfer_fraction(
            POLYBENCH["atax"]
        )

    def test_breakdown_sums_to_total(self, tiny_atax):
        stats = GpuPlatform().run(tiny_atax)
        assert stats.time_breakdown.total_ns == pytest.approx(stats.time_ns)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GpuModelConfig(pcie_gbps=0)
        with pytest.raises(ValueError):
            GpuModelConfig(launch_overhead_ns=-1)


class TestCoruscant:
    def test_fig4a_mul_split(self):
        """Fig. 4a: write ~51%, compute ~30%, read+shift ~19%."""
        fractions = CoruscantPlatform().op_time_ns("mul").fractions()
        assert abs(fractions["write"] - 0.51) < 0.06
        assert abs(fractions["process"] - 0.30) < 0.06

    def test_fig4b_energy_write_dominated(self):
        fractions = CoruscantPlatform().op_energy_pj("mul").fractions()
        assert fractions["write"] > 0.4
        assert fractions["compute"] < 0.35

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            CoruscantPlatform().op_time_ns("div")
        with pytest.raises(ValueError):
            CoruscantPlatform().op_energy_pj("div")

    def test_time_scales_with_ops(self, tiny_gemm):
        small = CoruscantPlatform().run(tiny_gemm)
        big = CoruscantPlatform().run(polybench_workload("gemm", scale=0.04))
        assert big.time_ns > 4 * small.time_ns

    def test_parallel_units_speed_up(self, tiny_gemm):
        few = CoruscantPlatform(CoruscantConfig(parallel_units=64))
        many = CoruscantPlatform(CoruscantConfig(parallel_units=512))
        assert many.run(tiny_gemm).time_ns < few.run(tiny_gemm).time_ns

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CoruscantConfig(parallel_units=0)


class TestBitSerialPlatforms:
    def test_elp2im_mul_steps_dominate_add(self):
        cfg = Elp2imConfig()
        assert cfg.steps_per_mul > 4 * cfg.steps_per_add

    def test_felix_faster_than_elp2im_per_op(self, tiny_gemm):
        """FELIX removes the precharge penalty (section V-B)."""
        felix = FelixPlatform().run(tiny_gemm)
        elp2im = Elp2imPlatform().run(tiny_gemm)
        assert felix.time_ns < elp2im.time_ns

    def test_energy_amortises_over_full_row(self):
        cfg = Elp2imConfig()
        assert cfg.energy_row_width_words > cfg.row_width_words

    def test_config_validation(self):
        with pytest.raises(ValueError):
            Elp2imConfig(word_bits=0)
        with pytest.raises(ValueError):
            FelixConfig(step_ns=0)


class TestStreamPIMPlatforms:
    def test_spec_to_task_covers_all_op_kinds(self, small_device):
        ops = [
            MatrixOp(MatrixOpKind.MATMUL, (3, 4, 2)),
            MatrixOp(MatrixOpKind.MATVEC, (3, 4)),
            MatrixOp(MatrixOpKind.MATVEC_T, (3, 4)),
            MatrixOp(MatrixOpKind.MAT_ADD, (3, 4)),
            MatrixOp(MatrixOpKind.MAT_SCALE, (3, 4)),
            MatrixOp(MatrixOpKind.VEC_ADD, (4,)),
            MatrixOp(MatrixOpKind.VEC_SCALE, (4,)),
            MatrixOp(MatrixOpKind.DOT, (4,)),
            MatrixOp(MatrixOpKind.MATVEC, (3, 4), accumulate=True),
        ]
        spec = WorkloadSpec("all-ops", ops)
        task = spec_to_task(spec, small_device)
        report = task.run(functional=False)
        expected_pim, expected_move = spec.vpc_counts()
        assert report.counts.pim_vpcs == expected_pim
        assert report.counts.move_vpcs == expected_move

    def test_stpim_faster_than_stpim_e(self, tiny_gemm):
        stpim = StreamPIMPlatform().run(tiny_gemm)
        stpim_e = StpimEPlatform().run(tiny_gemm)
        assert stpim.time_ns < stpim_e.time_ns

    def test_stpim_e_has_conversion_energy(self, tiny_gemm):
        stats = StpimEPlatform().run(tiny_gemm)
        assert stats.energy.read_pj > 0
        assert stats.energy.write_pj > 0

    def test_stpim_transfer_is_shift_class(self, tiny_gemm):
        stats = StreamPIMPlatform().run(tiny_gemm)
        # RM-bus movement never converts to electronic signals.
        assert stats.energy.shift_pj > 0

    def test_stpim_e_config_validation(self):
        with pytest.raises(ValueError):
            StpimEConfig(conversions_per_word=0)

    def test_platform_label_on_stats(self, tiny_gemm):
        assert StreamPIMPlatform().run(tiny_gemm).platform == "StPIM"
        assert StpimEPlatform().run(tiny_gemm).platform == "StPIM-e"
