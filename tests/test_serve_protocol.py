"""Wire protocol, retry/backoff, breaker and admission unit tests.

These are the pure building blocks of the serving layer
(``docs/serving.md``): typed error codes with a retryability contract,
deterministic backoff, the per-class circuit breaker state machine,
and token-bucket admission over a bounded queue.
"""

import json

import pytest

from repro.serve.admission import AdmissionController, TokenBucket
from repro.serve.protocol import (
    CLIENT_RETRYABLE,
    MAX_LINE_BYTES,
    ErrorCode,
    ProtocolError,
    Request,
    Response,
    ServeError,
    decode_line,
    encode_message,
    parse_request,
    parse_response,
)
from repro.serve.retry import (
    BreakerBoard,
    BreakerState,
    CircuitBreaker,
    RetryPolicy,
)


class TestProtocolRoundTrip:
    def test_request_round_trip(self):
        request = Request(
            id="r1",
            method="run",
            params={"workload": "atax", "scale": 0.01},
            tenant="team-a",
            deadline_ms=1500.0,
        )
        parsed = parse_request(decode_line(encode_message(request.to_dict())))
        assert parsed == request

    def test_success_response_round_trip(self):
        response = Response.success("r1", {"time_ns": 12.5})
        parsed = parse_response(decode_line(encode_message(response.to_dict())))
        assert parsed.ok
        assert parsed.result == {"time_ns": 12.5}

    def test_failure_response_round_trip(self):
        response = Response.failure(
            "r2",
            ServeError(
                ErrorCode.DEAD_LETTER,
                "gave up",
                attempts=3,
                redeliveries=2,
                detail={"last_worker": "w4"},
            ),
        )
        parsed = parse_response(decode_line(encode_message(response.to_dict())))
        assert not parsed.ok
        assert parsed.error.code is ErrorCode.DEAD_LETTER
        assert parsed.error.attempts == 3
        assert parsed.error.redeliveries == 2
        assert parsed.error.detail == {"last_worker": "w4"}

    def test_floats_survive_json_exactly(self):
        # The serving layer's bit-identity contract rests on JSON float
        # round-trip exactness (repr-based, IEEE-754 faithful).
        value = 2595.150222222222
        response = Response.success("r", {"time_ns": value})
        parsed = parse_response(decode_line(encode_message(response.to_dict())))
        assert parsed.result["time_ns"] == value


class TestProtocolValidation:
    @pytest.mark.parametrize(
        "obj",
        [
            {},
            {"id": "", "method": "run"},
            {"id": 7, "method": "run"},
            {"id": "r", "method": ""},
            {"id": "r", "method": "run", "params": []},
            {"id": "r", "method": "run", "tenant": ""},
            {"id": "r", "method": "run", "deadline_ms": 0},
            {"id": "r", "method": "run", "deadline_ms": "soon"},
            {"id": "r", "method": "run", "v": 99},
        ],
    )
    def test_malformed_requests_rejected(self, obj):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(obj)
        assert excinfo.value.code is ErrorCode.INVALID_REQUEST

    def test_non_object_line_rejected(self):
        with pytest.raises(ProtocolError):
            decode_line(b"[1, 2, 3]\n")

    def test_undecodable_line_rejected(self):
        with pytest.raises(ProtocolError):
            decode_line(b"{nope\n")

    def test_oversized_line_rejected(self):
        with pytest.raises(ProtocolError):
            decode_line(b"x" * (MAX_LINE_BYTES + 1))

    def test_retryability_is_on_the_wire(self):
        for code in ErrorCode:
            error = ServeError(code, "m")
            wire = error.to_dict()
            assert wire["retryable"] == (code in CLIENT_RETRYABLE)

    def test_workload_class_includes_workload(self):
        assert (
            Request(id="r", method="run", params={"workload": "gemm"})
        ).workload_class == "run:gemm"
        assert Request(id="r", method="run").workload_class == "run"

    def test_encode_is_one_json_line(self):
        blob = encode_message({"id": "x", "ok": True})
        assert blob.endswith(b"\n")
        assert blob.count(b"\n") == 1
        assert json.loads(blob)


class TestRetryPolicy:
    def test_backoff_is_deterministic(self):
        policy = RetryPolicy()
        assert policy.delay(1, key="r1") == policy.delay(1, key="r1")

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            base_delay_s=0.1, multiplier=2.0, max_delay_s=0.5, jitter=0.0
        )
        assert policy.delay(1, key="k") == pytest.approx(0.1)
        assert policy.delay(2, key="k") == pytest.approx(0.2)
        assert policy.delay(5, key="k") == pytest.approx(0.5)  # capped

    def test_jitter_stays_bounded(self):
        policy = RetryPolicy(
            base_delay_s=0.1, multiplier=1.0, max_delay_s=1.0, jitter=0.5
        )
        for key in ("a", "b", "c", "d"):
            delay = policy.delay(1, key=key)
            # Half the raw delay is kept, half is hash-jittered.
            assert 0.05 <= delay <= 0.1

    def test_retryable_codes(self):
        policy = RetryPolicy()
        assert policy.is_retryable(ErrorCode.WORKER_CRASH)
        assert policy.is_retryable(ErrorCode.CACHE_IO)
        assert not policy.is_retryable(ErrorCode.VERIFY_FAILED)
        assert not policy.is_retryable(ErrorCode.SIMULATION_FAULT)


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_s=10.0)
        for _ in range(2):
            breaker.record_failure(0.0)
            assert breaker.allow(0.0)
        breaker.record_failure(0.0)
        assert breaker.current_state(0.0) is BreakerState.OPEN
        assert not breaker.allow(1.0)

    def test_success_resets_the_count(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_s=10.0)
        breaker.record_failure(0.0)
        breaker.record_success(0.0)
        breaker.record_failure(0.0)
        assert breaker.current_state(0.0) is BreakerState.CLOSED

    def test_half_opens_after_cooldown_and_recloses(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=5.0)
        breaker.record_failure(0.0)
        assert not breaker.allow(4.9)
        # Cooldown elapsed: one probe allowed.
        assert breaker.allow(5.1)
        assert breaker.current_state(5.1) is BreakerState.HALF_OPEN
        assert not breaker.allow(5.2)  # only one probe outstanding
        breaker.record_success(5.3)
        assert breaker.current_state(5.3) is BreakerState.CLOSED
        assert breaker.allow(5.4)

    def test_failed_probe_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=5.0)
        breaker.record_failure(0.0)
        assert breaker.allow(5.1)  # probe
        breaker.record_failure(5.2)
        assert breaker.current_state(5.3) is BreakerState.OPEN
        assert not breaker.allow(5.3)
        # And it half-opens again a full cooldown later.
        assert breaker.allow(10.3)

    def test_board_isolates_classes(self):
        board = BreakerBoard(failure_threshold=1, cooldown_s=5.0)
        board.breaker("run:gemm").record_failure(0.0)
        assert not board.breaker("run:gemm").allow(0.1)
        assert board.breaker("run:atax").allow(0.1)
        snapshot = board.snapshot(0.1)
        assert snapshot["run:gemm"] == "open"


class TestAdmission:
    def test_token_bucket_refills(self):
        bucket = TokenBucket(rate=10.0, burst=2.0)
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)  # burst exhausted
        assert bucket.try_take(0.1)  # one token refilled

    def test_bucket_never_exceeds_burst(self):
        bucket = TokenBucket(rate=1000.0, burst=1.0)
        assert bucket.try_take(100.0)
        assert not bucket.try_take(100.0)

    def test_queue_full_rejected_before_tokens(self):
        admission = AdmissionController(
            queue_limit=2, tenant_rate=100.0, tenant_burst=100.0
        )
        assert admission.admit("t", queue_depth=0, now=0.0) is None
        assert (
            admission.admit("t", queue_depth=2, now=0.0)
            is ErrorCode.QUEUE_FULL
        )
        # The queue-full shed must not have consumed a token.
        assert admission.admit("t", queue_depth=1, now=0.0) is None

    def test_rate_limit_is_per_tenant(self):
        admission = AdmissionController(
            queue_limit=100, tenant_rate=1.0, tenant_burst=1.0
        )
        assert admission.admit("a", queue_depth=0, now=0.0) is None
        assert (
            admission.admit("a", queue_depth=0, now=0.0)
            is ErrorCode.RATE_LIMITED
        )
        assert admission.admit("b", queue_depth=0, now=0.0) is None

    def test_snapshot_counts_rejections(self):
        admission = AdmissionController(
            queue_limit=1, tenant_rate=1.0, tenant_burst=1.0
        )
        admission.admit("a", queue_depth=1, now=0.0)
        admission.admit("a", queue_depth=0, now=0.0)
        admission.admit("a", queue_depth=0, now=0.0)
        snapshot = admission.snapshot(0.0)
        assert snapshot["rejected"]["queue_full"] == 1
        assert snapshot["rejected"]["rate_limited"] == 1


class TestBreakerOpenStateRegressions:
    """Regression: ``record_success`` used to set CLOSED unconditionally,
    so a slow success from a request dispatched *before* the trip
    closed an OPEN breaker and bypassed the cooldown entirely."""

    def test_late_success_does_not_close_open_breaker(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=5.0)
        breaker.record_failure(0.0)  # trips: OPEN at t=0
        assert breaker.current_state(0.1) is BreakerState.OPEN
        # A request dispatched before the trip completes healthily
        # while the breaker is OPEN and mid-cooldown.  It proves
        # nothing about recovery — the cooldown must stand.
        breaker.record_success(1.0)
        assert breaker.current_state(1.1) is BreakerState.OPEN
        assert not breaker.allow(1.1)
        # Recovery still follows the legal path: cooldown, probe,
        # probe success, CLOSED.
        assert breaker.allow(5.1)  # half-open probe
        breaker.record_success(5.2)
        assert breaker.current_state(5.3) is BreakerState.CLOSED

    def test_multi_probe_half_open_needs_every_probe(self):
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_s=5.0, half_open_probes=2
        )
        breaker.record_failure(0.0)
        assert breaker.allow(5.1)  # probe 1
        assert breaker.allow(5.1)  # probe 2
        assert not breaker.allow(5.1)  # probe budget spent
        breaker.record_success(5.2)  # 1 of 2: not yet closed
        assert breaker.current_state(5.3) is BreakerState.HALF_OPEN
        breaker.record_success(5.4)  # 2 of 2: all probes healthy
        assert breaker.current_state(5.5) is BreakerState.CLOSED

    def test_multi_probe_failure_reopens_and_resets_successes(self):
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_s=5.0, half_open_probes=2
        )
        breaker.record_failure(0.0)
        assert breaker.allow(5.1)
        assert breaker.allow(5.1)
        breaker.record_success(5.2)
        breaker.record_failure(5.3)  # second probe failed: re-OPEN
        assert breaker.current_state(5.4) is BreakerState.OPEN
        # The next half-open episode starts from zero successes.
        assert breaker.allow(10.4)
        assert breaker.allow(10.4)
        breaker.record_success(10.5)
        assert breaker.current_state(10.6) is BreakerState.HALF_OPEN
        breaker.record_success(10.7)
        assert breaker.current_state(10.8) is BreakerState.CLOSED


class TestAdmissionRegressions:
    """Regression: ``queue_limit=0`` used to reject *every* request
    with QUEUE_FULL, even with the whole pool idle — contradicting the
    documented "0 disables queuing" semantics."""

    def test_queue_limit_zero_admits_with_idle_worker(self):
        admission = AdmissionController(
            queue_limit=0, tenant_rate=100.0, tenant_burst=100.0
        )
        assert (
            admission.admit("t", queue_depth=0, now=0.0, idle_workers=1)
            is None
        )

    def test_queue_limit_zero_sheds_with_busy_pool(self):
        admission = AdmissionController(
            queue_limit=0, tenant_rate=100.0, tenant_burst=100.0
        )
        assert (
            admission.admit("t", queue_depth=0, now=0.0, idle_workers=0)
            is ErrorCode.QUEUE_FULL
        )

    def test_full_queue_still_admits_when_a_worker_is_free(self):
        # The queue bound caps *queued* work; a request that can start
        # immediately never joins the queue, so it is not shed.
        admission = AdmissionController(
            queue_limit=2, tenant_rate=100.0, tenant_burst=100.0
        )
        assert (
            admission.admit("t", queue_depth=2, now=0.0, idle_workers=1)
            is None
        )
        assert (
            admission.admit("t", queue_depth=2, now=0.0, idle_workers=0)
            is ErrorCode.QUEUE_FULL
        )

    def test_lazy_bucket_seeds_refill_clock_at_creation(self):
        # Regression: lazily created buckets started with
        # ``updated_at=0.0``, so their first ``_refill(now)`` computed
        # ``elapsed ~= now`` — harmless only because tokens cap at
        # burst, but any ``available()`` accounting taken before the
        # first ``try_take`` was computed from a fictitious epoch.
        admission = AdmissionController(
            queue_limit=4, tenant_rate=2.0, tenant_burst=10.0
        )
        bucket = admission._bucket("t", now=123.5)
        assert bucket.updated_at == 123.5
        assert bucket.available(123.5) == 10.0
        # Refill accounting is anchored at creation time: after one
        # take, half a second restores exactly rate * 0.5 tokens.
        assert bucket.try_take(123.5)
        assert bucket.available(124.0) == 10.0 - 1.0 + 1.0  # capped math
        admission2 = AdmissionController(
            queue_limit=4, tenant_rate=2.0, tenant_burst=10.0
        )
        bucket2 = admission2._bucket("t", now=50.0)
        for _ in range(10):
            assert bucket2.try_take(50.0)
        # Drained at t=50; at t=50.5 exactly one token has refilled.
        assert bucket2.available(50.5) == 1.0
        assert bucket2.try_take(50.5)
        assert not bucket2.try_take(50.5)
