"""Tests for the ASCII figure helpers."""

import pytest

from repro.analysis.figures import bar_chart, grouped_bar_chart, sparkline


class TestBarChart:
    def test_contains_labels_and_values(self):
        chart = bar_chart({"StPIM": 39.1, "CPU-RM": 1.0}, unit="x")
        assert "StPIM" in chart
        assert "39.10x" in chart
        assert "1.00x" in chart

    def test_peak_gets_full_width(self):
        chart = bar_chart({"a": 10.0, "b": 5.0}, width=10)
        lines = chart.splitlines()
        assert "█" * 10 in lines[0]

    def test_title_and_baseline_marker(self):
        chart = bar_chart(
            {"a": 1.0, "b": 2.0}, title="T", reference="a"
        )
        assert chart.splitlines()[0] == "T"
        assert "<- baseline" in chart

    def test_zero_values_ok(self):
        chart = bar_chart({"a": 0.0, "b": 0.0})
        assert "0.00" in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart({})
        with pytest.raises(ValueError):
            bar_chart({"a": -1.0})
        with pytest.raises(ValueError):
            bar_chart({"a": 1.0}, width=0)

    def test_proportionality(self):
        chart = bar_chart({"big": 40.0, "half": 20.0}, width=40)
        lines = chart.splitlines()
        big_cells = lines[0].count("█")
        half_cells = lines[1].count("█")
        assert big_cells == 40
        assert 19 <= half_cells <= 21


class TestGroupedChart:
    def test_groups_rendered(self):
        chart = grouped_bar_chart(
            {"mlp": {"StPIM": 20.0}, "bert": {"StPIM": 4.5}}
        )
        assert "-- mlp" in chart
        assert "-- bert" in chart

    def test_global_scaling(self):
        chart = grouped_bar_chart(
            {"a": {"x": 10.0}, "b": {"y": 5.0}}, width=10
        )
        lines = [l for l in chart.splitlines() if "|" in l]
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            grouped_bar_chart({})


class TestSparkline:
    def test_length_matches_series(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_series_monotone_glyphs(self):
        line = sparkline([1, 2, 3, 4])
        assert list(line) == sorted(line)

    def test_peak_is_full_block(self):
        assert sparkline([1, 10])[-1] == "█"

    def test_all_zero(self):
        assert sparkline([0, 0]) == "  "

    def test_validation(self):
        with pytest.raises(ValueError):
            sparkline([])
        with pytest.raises(ValueError):
            sparkline([-1.0])
