"""Differential verification: scalar walk vs columnar fast path.

Two layers of evidence that ``TraceVerifier.verify`` and
``verify_columnar`` implement the same rule semantics:

* every shipped workload generator, compiled and verified through both
  entry points, must yield identical diagnostics;
* hypothesis-generated traces seeded to trigger each of SPV001-SPV007
  must keep the two paths in lockstep on *dirty* traces too (the
  workload sweep only ever exercises the clean path).

``StreamingTraceVerifier`` (the per-chunk gate of the streamed
pipeline) is held to the same standard: feeding any chunking of a
trace must reproduce the whole-trace ``verify_columnar`` report
exactly — diagnostics, indices, and the suppression count — including
SPV004 hazards that span a chunk boundary.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.core.placement import (  # noqa: E402
    MatrixHandle,
    PlacementPlan,
    PlacementPolicy,
    RowSlice,
)
from repro.core.rmbus import RMBusConfig  # noqa: E402
from repro.isa.columnar import ColumnarTrace  # noqa: E402
from repro.isa.trace import VPCTrace  # noqa: E402
from repro.isa.vpc import VPC  # noqa: E402
from repro.rm.address import AddressMap, DeviceGeometry  # noqa: E402
from repro.verify import TraceVerifier  # noqa: E402

GEOMETRY = DeviceGeometry()
AMAP = AddressMap(GEOMETRY)
BASE = AMAP.subarray_base(0, 0)
CAP = AMAP.words_per_subarray
TOTAL = AMAP.total_words

#: A bus with 16-word segments so SPV007 is reachable with small sizes.
SMALL_BUS = RMBusConfig(
    segment_domains=16, length_domains=64, width_wires=8, word_bits=8
)

_SETTINGS = settings(max_examples=25, deadline=None)


def _verify_streamed(verifier, cols, chunk, subject="trace"):
    """Verify ``cols`` per-chunk through the streaming front-end."""
    from repro.verify import StreamingTraceVerifier

    streaming = StreamingTraceVerifier(verifier, subject=subject)
    for start in range(0, len(cols), chunk):
        streaming.feed(ColumnarTrace(cols.records[start : start + chunk]))
    return streaming.finish()


def assert_parity(trace, **verifier_kwargs):
    """All verifier entry points must agree exactly on ``trace``."""
    verifier = TraceVerifier(geometry=GEOMETRY, **verifier_kwargs)
    scalar = verifier.verify(trace)
    cols = ColumnarTrace.from_trace(trace)
    columnar = verifier.verify_columnar(cols)
    assert scalar.diagnostics == columnar.diagnostics
    assert scalar.suppressed == columnar.suppressed
    # Any chunking of the same trace through the streaming verifier
    # must merge to the identical report (chunk=1 forces every SPV004
    # hazard window to straddle a chunk boundary).
    for chunk in (1, 3):
        streamed = _verify_streamed(verifier, cols, chunk)
        assert streamed.diagnostics == columnar.diagnostics
        assert streamed.suppressed == columnar.suppressed
    return scalar


def _rules(report):
    return set(report.rule_ids())


class TestGeneratedTraces:
    @_SETTINGS
    @given(offset=st.integers(1, 4096), size=st.integers(1, 32))
    def test_spv001_out_of_bounds(self, offset, size):
        trace = VPCTrace([VPC.tran(TOTAL + offset, BASE, size)])
        report = assert_parity(trace)
        assert "SPV001" in _rules(report)

    @_SETTINGS
    @given(tail=st.integers(1, 3), extra=st.integers(1, 8))
    def test_spv002_subarray_overflow(self, tail, extra):
        start = BASE + CAP - tail
        dest = AMAP.subarray_base(0, 2)
        trace = VPCTrace([VPC.tran(start, dest, tail + extra)])
        report = assert_parity(trace)
        assert "SPV002" in _rules(report)

    @_SETTINGS
    @given(size=st.integers(2, 16), data=st.data())
    def test_spv003_overlapping_src_des(self, size, data):
        shift = data.draw(st.integers(1, size - 1))
        trace = VPCTrace(
            [VPC.add(BASE, BASE + 4 * size, BASE + shift, size)]
        )
        report = assert_parity(trace)
        assert "SPV003" in _rules(report)

    @_SETTINGS
    @given(gap=st.integers(0, 2))
    def test_spv004_pipeline_hazard(self, gap):
        # gap fillers put the dependent compute at distance gap + 1,
        # which stays inside the window-4 hazard scan for gap <= 2.
        filler = [
            VPC.tran(BASE + 256 + 16 * i, BASE + 512 + 16 * i, 4)
            for i in range(gap)
        ]
        trace = VPCTrace(
            [VPC.mul(BASE, BASE + 8, BASE + 16, 4)]
            + filler
            + [VPC.add(BASE + 16, BASE + 32, BASE + 48, 4)]
        )
        report = assert_parity(trace, hazard_window=4)
        assert "SPV004" in _rules(report)

    @_SETTINGS
    @given(offset=st.integers(0, 12))
    def test_spv005_tran_into_operand(self, offset):
        placed = AMAP.subarray_base(0, 1)
        plan = PlacementPlan(policy=PlacementPolicy.DISTRIBUTE)
        plan.matrices["A"] = MatrixHandle(
            name="A",
            rows=1,
            cols=16,
            rows_placement=[[RowSlice(0, 1, placed, 0, 16)]],
            result_set=False,
        )
        trace = VPCTrace([VPC.tran(BASE, placed + offset, 4)])
        report = assert_parity(trace, plan=plan)
        assert "SPV005" in _rules(report)

    @_SETTINGS
    @given(overlap=st.integers(1, 8))
    def test_spv006_double_booked_placement(self, overlap):
        placed = AMAP.subarray_base(0, 2)
        plan = PlacementPlan(policy=PlacementPolicy.DISTRIBUTE)
        for name, start in (
            ("A", placed),
            ("B", placed + 16 - overlap),
        ):
            plan.matrices[name] = MatrixHandle(
                name=name,
                rows=1,
                cols=16,
                rows_placement=[[RowSlice(0, 1, start, 0, 16)]],
                result_set=False,
            )
        report = assert_parity(VPCTrace(), plan=plan)
        assert "SPV006" in _rules(report)

    @_SETTINGS
    @given(size=st.integers(17, 64))
    def test_spv007_oversized_shift(self, size):
        trace = VPCTrace(
            [VPC.tran(BASE, AMAP.subarray_base(0, 3), size)]
        )
        report = assert_parity(trace, bus=SMALL_BUS)
        assert "SPV007" in _rules(report)

    @_SETTINGS
    @given(
        kinds=st.lists(
            st.sampled_from(["oob", "overflow", "overlap", "clean"]),
            min_size=1,
            max_size=8,
        )
    )
    def test_mixed_traces_stay_in_lockstep(self, kinds):
        vpcs = []
        for slot, kind in enumerate(kinds):
            anchor = BASE + 1024 + 64 * slot
            if kind == "oob":
                vpcs.append(VPC.tran(TOTAL + slot + 1, anchor, 2))
            elif kind == "overflow":
                vpcs.append(
                    VPC.tran(BASE + CAP - 1, anchor, 4)
                )
            elif kind == "overlap":
                vpcs.append(
                    VPC.add(anchor, anchor + 32, anchor + 1, 4)
                )
            else:
                vpcs.append(VPC.tran(anchor, anchor + 32, 4))
        assert_parity(VPCTrace(vpcs))


def _workload_specs():
    from repro.cli import _check_specs

    return [(spec.name, spec) for spec in _check_specs(0.01)]


_SPECS = _workload_specs()


class TestWorkloadDifferential:
    @pytest.mark.parametrize(
        "spec", [s for _, s in _SPECS], ids=[n for n, _ in _SPECS]
    )
    def test_shipped_workloads_identical_diagnostics(self, spec):
        task = spec.build_task()
        trace = task.to_trace()
        cols = (
            trace
            if isinstance(trace, ColumnarTrace)
            else ColumnarTrace.from_trace(trace)
        )
        verifier = TraceVerifier(
            geometry=task.device.config.geometry,
            plan=task.placement_plan,
        )
        scalar = verifier.verify(cols, subject=spec.name)
        columnar = verifier.verify_columnar(cols, subject=spec.name)
        assert scalar.diagnostics == columnar.diagnostics
        assert scalar.suppressed == columnar.suppressed
        assert scalar.ok(strict=True), scalar.render(strict=True)

    @pytest.mark.parametrize(
        "spec", [s for _, s in _SPECS], ids=[n for n, _ in _SPECS]
    )
    def test_streamed_chunks_match_whole_trace(self, spec):
        # The streamed pipeline's per-chunk SPV gate, merged, must
        # equal the whole-trace report on every shipped workload.
        task = spec.build_task()
        trace = task.to_trace()
        cols = (
            trace
            if isinstance(trace, ColumnarTrace)
            else ColumnarTrace.from_trace(trace)
        )
        verifier = TraceVerifier(
            geometry=task.device.config.geometry,
            plan=task.placement_plan,
        )
        whole = verifier.verify_columnar(cols, subject=spec.name)
        streamed = _verify_streamed(verifier, cols, 64, subject=spec.name)
        assert streamed.diagnostics == whole.diagnostics
        assert streamed.suppressed == whole.suppressed

    @pytest.mark.parametrize(
        "spec",
        [s for n, s in _SPECS if n in ("gemm", "mvt")],
        ids=[n for n, _ in _SPECS if n in ("gemm", "mvt")],
    )
    def test_streamed_fast_rule_subset_matches(self, spec):
        # SPV001+SPV007 alone take the vectorized per-chunk scan in
        # the streaming verifier; it must match the whole-trace result.
        task = spec.build_task()
        trace = task.to_trace()
        cols = (
            trace
            if isinstance(trace, ColumnarTrace)
            else ColumnarTrace.from_trace(trace)
        )
        verifier = TraceVerifier(
            geometry=task.device.config.geometry,
            rules=("SPV001", "SPV007"),
        )
        whole = verifier.verify_columnar(cols)
        streamed = _verify_streamed(verifier, cols, 50)
        assert streamed.diagnostics == whole.diagnostics
        assert streamed.suppressed == whole.suppressed

    @pytest.mark.parametrize(
        "spec",
        [s for n, s in _SPECS if n in ("gemm", "mvt")],
        ids=[n for n, _ in _SPECS if n in ("gemm", "mvt")],
    )
    def test_vectorized_rule_subset_matches(self, spec):
        # SPV001+SPV007 alone take the pure-columnar fast path inside
        # verify_columnar; the result must still match the scalar walk.
        task = spec.build_task()
        trace = task.to_trace()
        cols = (
            trace
            if isinstance(trace, ColumnarTrace)
            else ColumnarTrace.from_trace(trace)
        )
        verifier = TraceVerifier(
            geometry=task.device.config.geometry,
            rules=("SPV001", "SPV007"),
        )
        scalar = verifier.verify(cols)
        columnar = verifier.verify_columnar(cols)
        assert scalar.diagnostics == columnar.diagnostics
