"""Closed-form predictor: properties, accuracy, and the explorer.

The analytic model (``src/repro/analysis/predictor.py``) has three
kinds of correctness obligations:

* **properties** — prediction is a pure function of (trace, device
  config): deterministic across predictor instances, independent of
  whether costs come from a full :class:`StreamPIMDevice` or the light
  :class:`AnalyticDevice`, and monotone in trace length (appending
  work never makes the predicted run faster or cheaper);
* **accuracy** — against the cycle-level engines it must stay inside
  the documented per-class bounds on real workloads, for the scalar
  and vector reference engines and for the phased and streamed
  execution paths alike (those four are bit-identical by contract, so
  one error figure covers them — the test proves exactly that);
* **integration** — op boundaries survive the compile cache round
  trip, the sweep module's ``engine="predict"`` mode produces the
  same result shape as simulation, and the explorer re-simulates only
  its Pareto frontier.
"""

import json

import numpy as np
import pytest

from repro.analysis.calibrate import calibrate_workload
from repro.analysis.explore import (
    DesignPoint,
    build_grid,
    pareto_frontier,
    run_explore,
)
from repro.analysis.predictor import (
    AnalyticDevice,
    PREDICTED_PLATFORM,
    TracePredictor,
    predict_trace,
    predict_workload,
)
from repro.core.compile import compile_workload
from repro.core.device import StreamPIMConfig, StreamPIMDevice
from repro.isa.columnar import (
    ColumnarTraceBuilder,
    MUL_BYTE,
    TRAN_BYTE,
)
from repro.workloads import find_workload

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

#: words per subarray of the default geometry — synthetic traces place
#: operands at ``subarray * WPS + offset`` so homes land where intended.
WPS = AnalyticDevice().address_map.words_per_subarray

_SETTINGS = settings(max_examples=20, deadline=None)


def _synthetic_trace(groups, seed=0):
    """``groups`` op groups of TRAN+MUL pairs across a few subarrays.

    Shapes mirror what lowering emits: a TRAN delivering an operand
    into the consumer's subarray, then a MUL reading it — with homes
    spread over four subarrays so cross-subarray bus traffic occurs.
    """
    rng = np.random.default_rng(seed)
    builder = ColumnarTraceBuilder()
    for g in range(groups):
        home = int(rng.integers(0, 4))
        src_sub = int(rng.integers(0, 4))
        size = int(rng.integers(4, 40))
        builder.emit(
            TRAN_BYTE,
            src_sub * WPS + 10,
            None,
            home * WPS + 100,
            size,
        )
        builder.emit(
            MUL_BYTE,
            home * WPS + 100,
            home * WPS + 200,
            home * WPS + 300,
            size,
        )
        builder.mark_op_boundary()
    return builder.build()


class TestProperties:
    @_SETTINGS
    @given(groups=st.integers(1, 12), seed=st.integers(0, 50))
    def test_deterministic_across_instances(self, groups, seed):
        trace = _synthetic_trace(groups, seed)
        device = AnalyticDevice()
        a = TracePredictor(trace, WPS).predict(device)
        b = TracePredictor(trace, WPS).predict(device)
        assert a.time_ns == b.time_ns
        assert a.energy.total_pj == b.energy.total_pj
        assert a.category_ns == b.category_ns

    @_SETTINGS
    @given(groups=st.integers(1, 10), seed=st.integers(0, 50))
    def test_monotone_in_vpc_count(self, groups, seed):
        """Appending op groups never shortens or cheapens the run."""
        device = AnalyticDevice()
        shorter = TracePredictor(
            _synthetic_trace(groups, seed), WPS
        ).predict(device)
        longer = TracePredictor(
            _synthetic_trace(groups + 1, seed), WPS
        ).predict(device)
        assert longer.time_ns >= shorter.time_ns
        assert longer.energy.total_pj > shorter.energy.total_pj
        assert longer.commands == shorter.commands + 2

    def test_analytic_device_matches_full_device(self):
        spec = find_workload("atax", scale=0.02)
        compiled = compile_workload(spec, use_cache=False)
        predictor = TracePredictor(
            compiled.trace,
            compiled.device.address_map.words_per_subarray,
        )
        via_full = predictor.predict(compiled.device)
        via_light = predictor.predict(AnalyticDevice())
        assert via_full.time_ns == via_light.time_ns
        assert via_full.energy.total_pj == via_light.energy.total_pj

    def test_empty_trace_predicts_zero(self):
        trace = ColumnarTraceBuilder().build()
        predicted = predict_trace(AnalyticDevice(), trace)
        assert predicted.time_ns == 0.0
        assert predicted.energy.total_pj == 0.0
        assert predicted.commands == 0

    def test_run_stats_shape(self):
        predicted = predict_trace(
            AnalyticDevice(), _synthetic_trace(3), workload="syn"
        )
        stats = predicted.to_run_stats()
        assert stats.platform == PREDICTED_PLATFORM
        assert stats.workload == "syn"
        assert stats.time_ns == predicted.time_ns
        assert stats.energy.total_pj == pytest.approx(
            predicted.energy.total_pj
        )
        assert stats.counters["predicted"] == 1
        # The breakdown mirror conserves category busy time: exclusive
        # slices plus twice the overlap reassemble the copy/bus/exec/tran
        # sums (busy is summed across subarrays, so it exceeds the
        # parallel makespan).
        tb = stats.time_breakdown
        busy = sum(predicted.category_ns.values())
        reassembled = (
            tb.read_ns
            + tb.write_ns
            + tb.process_ns
            + 2 * tb.overlapped_ns
        )
        assert reassembled == pytest.approx(busy)
        assert min(tb.read_ns, tb.write_ns, tb.process_ns) >= 0.0
        assert tb.overlapped_ns >= 0.0


class TestAccuracy:
    """Within documented bounds against every reference engine/path."""

    @pytest.mark.parametrize("engine", ["vector", "scalar"])
    def test_phased_engines(self, engine, tmp_path):
        for name, scale in (("atax", 0.02), ("gemm", 0.02)):
            result = calibrate_workload(
                name,
                scale=scale,
                cache_dir=tmp_path,
                engine=engine,
            )
            assert result.ok, (
                f"{name}@{scale} via {engine}: time "
                f"{result.time_rel_error:+.4%} "
                f"energy {result.energy_rel_error:+.4%}"
            )

    def test_streamed_path(self, tmp_path):
        result = calibrate_workload(
            "gemm", scale=0.02, cache_dir=tmp_path, stream=True
        )
        assert result.engine == "stream"
        assert result.ok

    def test_energy_is_exact(self, tmp_path):
        result = calibrate_workload("mvt", scale=0.02, cache_dir=tmp_path)
        assert result.energy_rel_error == pytest.approx(0.0, abs=1e-9)


class TestOpStarts:
    def test_builder_marks_boundaries(self):
        trace = _synthetic_trace(4)
        assert trace.num_ops == 4
        slices = trace.op_slices()
        assert slices[0] == (0, 2)
        assert slices[-1] == (6, 8)

    def test_compile_cache_round_trip(self, tmp_path):
        spec = find_workload("atax", scale=0.02)
        cold = compile_workload(spec, cache_dir=tmp_path)
        warm = compile_workload(spec, cache_dir=tmp_path)
        assert not cold.cache_hit and warm.cache_hit
        assert cold.trace.op_starts is not None
        assert warm.trace.op_starts is not None
        np.testing.assert_array_equal(
            cold.trace.op_starts, warm.trace.op_starts
        )

    def test_single_segment_fallback_stays_in_bounds(self):
        """Without boundaries the model treats the trace as one op."""
        spec = find_workload("atax", scale=0.02)
        compiled = compile_workload(spec, use_cache=False)
        wps = compiled.device.address_map.words_per_subarray
        with_ops = TracePredictor(compiled.trace, wps).predict(
            AnalyticDevice()
        )
        without = TracePredictor(
            compiled.trace, wps, op_starts=np.array([0], dtype=np.int64)
        ).predict(AnalyticDevice())
        assert without.ops == 1
        assert with_ops.ops > 1
        # Same energy (static), time from the same command stream.
        assert without.energy.total_pj == pytest.approx(
            with_ops.energy.total_pj
        )


class TestSweepPredictEngine:
    def test_same_result_shape(self):
        from repro.analysis.sweep import sweep

        spec = find_workload("atax", scale=0.02)
        points = [1.0, 2.0]

        def factory(scale):
            from dataclasses import replace

            base = StreamPIMConfig()
            return replace(base, vpc_decode_ns=10.0 * scale)

        result = sweep("decode", points, factory, [spec], engine="predict")
        assert result.points == points
        for point in points:
            stats = result.runs[point]["atax"]
            assert stats.platform == PREDICTED_PLATFORM
            assert stats.time_ns > 0
        assert set(result.speedup_series(1.0)) == {1.0, 2.0}

    def test_unknown_engine_rejected(self):
        from repro.analysis.sweep import sweep

        spec = find_workload("atax", scale=0.02)
        with pytest.raises(ValueError, match="engine"):
            sweep("x", [1], lambda p: StreamPIMConfig(), [spec], engine="no")


class TestExplore:
    def test_pareto_frontier(self):
        points = [
            (1.0, 5.0),  # fastest, most energy: on frontier
            (2.0, 3.0),  # on frontier
            (2.5, 3.5),  # dominated by (2.0, 3.0)
            (4.0, 1.0),  # cheapest: on frontier
            (4.0, 2.0),  # dominated (same time, more energy)
        ]
        assert pareto_frontier(points) == [0, 1, 3]

    def test_frontier_of_one(self):
        assert pareto_frontier([(1.0, 1.0)]) == [0]
        assert pareto_frontier([]) == []

    def test_design_point_config(self):
        point = DesignPoint(
            workload="atax",
            scale=0.02,
            policy="base",
            read_scale=2.0,
            write_scale=0.5,
            decode_ns=20.0,
        )
        config = point.config(StreamPIMConfig())
        base = StreamPIMConfig()
        assert config.timing.read_ns == base.timing.read_ns * 2.0
        assert config.timing.read_pj == base.timing.read_pj / 2.0
        assert config.timing.write_ns == base.timing.write_ns * 0.5
        assert config.vpc_decode_ns == 20.0
        assert config.scheduler_policy.value == "base"

    def test_run_explore_resimulates_frontier_only(self, tmp_path):
        # Port speed grades trade time against energy (all frontier
        # candidates); decode latency is pure time, so every slow-decode
        # point is dominated by its fast-decode twin.
        grid = build_grid(
            workloads=[("atax", 0.02)],
            policies=["unblock"],
            read_scales=[0.5, 1.0, 2.0],
            write_scales=[1.0, 2.0],
            decode_ns=[10.0, 80.0],
        )
        report = run_explore(grid, cache_dir=tmp_path)
        assert report.total_points == 12
        assert 0 < report.frontier_points < report.total_points
        verified = [
            p for p in report.points if p.simulated_time_ns is not None
        ]
        assert len(verified) == report.verified == report.frontier_points
        assert all(p.on_frontier for p in verified)
        assert report.max_abs_time_error <= 0.10
        assert report.max_abs_energy_error <= 1e-6
        assert 0.0 < report.pruning_ratio < 1.0
        # Every grid point was predicted through one shared compile.
        assert report.compiles == 1
        payload = report.to_dict()
        assert payload["total_points"] == 12
        assert len(payload["points"]) == 12


class TestCli:
    def test_workloads_json(self, capsys):
        from repro.cli import main

        assert main(["workloads", "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        by_name = {e["workload"]: e for e in entries}
        assert by_name["gemm"]["suite"] == "polybench"
        assert by_name["gemm"]["buildable"] is True
        assert by_name["gemm"]["class"] == "matmul"
        assert by_name["mlp"]["suite"] == "dnn"
        assert by_name["trmm"]["buildable"] is False
        assert all(
            set(e) >= {"workload", "suite", "pim_vpcs", "move_vpcs"}
            for e in entries
        )

    def test_calibrate_cli(self, capsys, tmp_path):
        from repro.cli import main

        out = tmp_path / "cal.json"
        code = main(
            [
                "calibrate",
                "--workloads",
                "atax:0.02",
                "--cache-dir",
                str(tmp_path / "cache"),
                "-o",
                str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["ok"] is True
        assert payload["workloads"][0]["workload"] == "atax"

    def test_explore_cli(self, capsys, tmp_path):
        from repro.cli import main

        out = tmp_path / "explore.json"
        code = main(
            [
                "explore",
                "--workloads",
                "atax:0.02",
                "--policies",
                "unblock",
                "--read-scales",
                "1",
                "2",
                "--write-scales",
                "1",
                "--decode-ns",
                "10",
                "--cache-dir",
                str(tmp_path / "cache"),
                "-o",
                str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["total_points"] == 2
        assert payload["frontier_points"] >= 1
        assert payload["max_abs_time_error"] <= 0.10
