"""Differential testing: random task graphs vs an independent evaluator.

Hypothesis generates random sequences of shape-compatible matrix
operations; each program is executed through the full PIM stack (task
lowering + functional evaluation) and independently re-evaluated with a
minimal numpy interpreter written here.  Any divergence in any output
matrix fails the property.
"""

from typing import Dict, List, Tuple

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.device import StreamPIMConfig, StreamPIMDevice
from repro.core.rmbus import RMBusConfig
from repro.core.task import PimTask, TaskOp
from repro.rm.address import DeviceGeometry
from repro.rm.bank import BankConfig
from repro.rm.mat import MatConfig
from repro.rm.subarray import SubarrayConfig


def _fresh_device() -> StreamPIMDevice:
    mat = MatConfig(
        save_tracks=16,
        transfer_tracks=16,
        domains_per_track=64,
        word_bits=8,
        ports_per_track=2,
    )
    geometry = DeviceGeometry(
        banks=2,
        pim_banks=1,
        bank=BankConfig(
            subarrays=8,
            subarray=SubarrayConfig(mats=2, pim_mats=1, mat=mat),
            pim_bank=True,
        ),
    )
    bus = RMBusConfig(
        segment_domains=16, length_domains=64, width_wires=8, word_bits=8
    )
    return StreamPIMDevice(StreamPIMConfig(geometry=geometry, bus=bus))


# One generated instruction: (op, input names, output name, scalar value)
Instruction = Tuple[TaskOp, Tuple[str, ...], str, int]


@st.composite
def random_programs(draw) -> Tuple[Dict[str, np.ndarray], List[Instruction]]:
    """A random well-shaped program over small matrices."""
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    dims = [draw(st.integers(2, 6)) for _ in range(3)]
    operands: Dict[str, np.ndarray] = {}
    for index in range(draw(st.integers(2, 4))):
        rows = draw(st.sampled_from(dims))
        cols = draw(st.sampled_from(dims))
        operands[f"m{index}"] = rng.integers(
            0, 256, size=(rows, cols), dtype=np.int64
        )
    instructions: List[Instruction] = []
    available = dict(operands)  # name -> value shape source
    for step in range(draw(st.integers(1, 5))):
        name = f"out{step}"
        op = draw(
            st.sampled_from(
                [
                    TaskOp.MATMUL,
                    TaskOp.MATVEC,
                    TaskOp.MATVEC_T,
                    TaskOp.MAT_ADD,
                    TaskOp.MAT_SCALE,
                ]
            )
        )
        names = list(available)
        if op is TaskOp.MATMUL:
            a = draw(st.sampled_from(names))
            compatible = [
                n for n in names
                if available[n].shape[0] == available[a].shape[1]
            ]
            if not compatible:
                continue
            b = draw(st.sampled_from(compatible))
            shape = (available[a].shape[0], available[b].shape[1])
            instructions.append((op, (a, b), name, 1))
        elif op in (TaskOp.MATVEC, TaskOp.MATVEC_T):
            a = draw(st.sampled_from(names))
            rows, cols = available[a].shape
            length = cols if op is TaskOp.MATVEC else rows
            vectors = [
                n for n in names
                if available[n].shape == (1, length)
            ]
            if not vectors:
                continue
            x = draw(st.sampled_from(vectors))
            out_len = rows if op is TaskOp.MATVEC else cols
            shape = (1, out_len)
            instructions.append((op, (a, x), name, 1))
        elif op is TaskOp.MAT_ADD:
            a = draw(st.sampled_from(names))
            same = [n for n in names if available[n].shape == available[a].shape]
            b = draw(st.sampled_from(same))
            shape = available[a].shape
            instructions.append((op, (a, b), name, 1))
        else:  # MAT_SCALE
            a = draw(st.sampled_from(names))
            scalar = draw(st.integers(0, 7))
            shape = available[a].shape
            instructions.append((op, (a,), name, scalar))
        available[name] = np.zeros(shape, dtype=np.int64)
    return operands, instructions


def _reference_evaluate(
    operands: Dict[str, np.ndarray], instructions: List[Instruction]
) -> Dict[str, np.ndarray]:
    """Independent numpy interpreter (no repro code involved)."""
    env = {k: v.copy() for k, v in operands.items()}
    for op, inputs, output, scalar in instructions:
        if op is TaskOp.MATMUL:
            env[output] = env[inputs[0]] @ env[inputs[1]]
        elif op is TaskOp.MATVEC:
            env[output] = (env[inputs[0]] @ env[inputs[1]][0]).reshape(1, -1)
        elif op is TaskOp.MATVEC_T:
            env[output] = (env[inputs[0]].T @ env[inputs[1]][0]).reshape(
                1, -1
            )
        elif op is TaskOp.MAT_ADD:
            env[output] = env[inputs[0]] + env[inputs[1]]
        elif op is TaskOp.MAT_SCALE:
            env[output] = scalar * env[inputs[0]]
        else:  # pragma: no cover
            raise AssertionError(op)
    return env


@settings(max_examples=40, deadline=None)
@given(program=random_programs())
def test_property_random_programs_match_reference(program):
    operands, instructions = program
    if not instructions:
        return
    device = _fresh_device()
    task = PimTask(device)
    for name, values in operands.items():
        task.add_matrix(name, values)
    for index, (op, inputs, output, scalar) in enumerate(instructions):
        shape = _reference_evaluate(
            operands, instructions[: index + 1]
        )[output].shape
        task.add_matrix(output, shape=shape)
        if op is TaskOp.MAT_SCALE:
            scalar_name = f"s{index}"
            task.add_scalar(scalar_name, scalar)
            task.add_operation(op, *inputs, output, scalar=scalar_name)
        else:
            task.add_operation(op, *inputs, output)
    try:
        report = task.run()
    except MemoryError:
        # The tiny test device can legitimately run out of PIM capacity.
        return
    except NotImplementedError:
        # A produced matrix read column-wise needs mirror coherence,
        # which the layout layer deliberately refuses.
        return
    reference = _reference_evaluate(operands, instructions)
    for _, _, output, _ in instructions:
        assert np.array_equal(report.results[output], reference[output]), (
            output,
            instructions,
        )
    assert report.time_ns > 0
    assert report.counts.pim_vpcs > 0
