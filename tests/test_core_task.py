"""Tests for the PimTask programming interface (Fig. 16)."""

import numpy as np
import pytest

from repro.core.device import StreamPIMConfig, StreamPIMDevice
from repro.core.scheduler import SchedulerPolicy
from repro.core.task import PimTask, TaskOp, create_pim_task
from repro.workloads.generator import random_matrix


def _device(small_geometry, small_bus_config, policy=SchedulerPolicy.UNBLOCK):
    return StreamPIMDevice(
        StreamPIMConfig(
            geometry=small_geometry,
            bus=small_bus_config,
            scheduler_policy=policy,
        )
    )


@pytest.fixture
def device(small_geometry, small_bus_config):
    return _device(small_geometry, small_bus_config)


class TestApi:
    def test_create_with_config(self):
        task = create_pim_task(config=StreamPIMConfig())
        assert isinstance(task, PimTask)

    def test_create_rejects_device_and_config(self, device):
        with pytest.raises(ValueError):
            create_pim_task(device=device, config=StreamPIMConfig())

    def test_duplicate_matrix_rejected(self, device):
        task = PimTask(device)
        task.add_matrix("A", shape=(2, 2))
        with pytest.raises(ValueError):
            task.add_matrix("A", shape=(2, 2))

    def test_matrix_needs_values_or_shape(self, device):
        with pytest.raises(ValueError):
            PimTask(device).add_matrix("A")

    def test_vector_stored_as_row(self, device):
        task = PimTask(device)
        task.add_vector("x", np.array([1, 2, 3]))
        assert task._matrices["x"].shape == (1, 3)

    def test_3d_rejected(self, device):
        with pytest.raises(ValueError):
            PimTask(device).add_matrix("A", np.zeros((2, 2, 2)))

    def test_unknown_operand_rejected(self, device):
        task = PimTask(device)
        task.add_matrix("A", shape=(2, 2))
        with pytest.raises(KeyError):
            task.add_operation(TaskOp.MAT_ADD, "A", "B", "A")

    def test_unknown_scalar_rejected(self, device):
        task = PimTask(device)
        task.add_matrix("A", shape=(2, 2))
        with pytest.raises(KeyError):
            task.add_operation(TaskOp.MAT_SCALE, "A", "A", scalar="alpha")

    def test_shape_mismatch_rejected(self, device):
        task = PimTask(device)
        task.add_matrix("A", shape=(2, 3))
        task.add_matrix("B", shape=(2, 3))  # inner dims don't match
        task.add_matrix("C", shape=(2, 3))
        with pytest.raises(ValueError):
            task.add_operation(TaskOp.MATMUL, "A", "B", "C")

    def test_run_without_operations_rejected(self, device):
        task = PimTask(device)
        with pytest.raises(RuntimeError):
            task.run()

    def test_input_matrices_not_mutated(self, device):
        a = np.array([[1, 2], [3, 4]])
        task = PimTask(device)
        task.add_matrix("A", a)
        task.add_matrix("B", a)
        task.add_matrix("C", shape=(2, 2))
        task.add_operation(TaskOp.MAT_ADD, "A", "B", "C")
        report = task.run()
        assert np.array_equal(a, [[1, 2], [3, 4]])
        assert np.array_equal(report.results["A"], a)


class TestFunctionalCorrectness:
    def _run(self, device, build):
        task = PimTask(device)
        build(task)
        return task.run()

    def test_matmul(self, device, rng):
        a = random_matrix(6, 5, rng)
        b = random_matrix(5, 4, rng)

        def build(task):
            task.add_matrix("A", a)
            task.add_matrix("B", b)
            task.add_matrix("C", shape=(6, 4))
            task.add_operation(TaskOp.MATMUL, "A", "B", "C")

        report = self._run(device, build)
        assert np.array_equal(report.results["C"], a @ b)

    def test_matvec_and_transposed(self, device, rng):
        a = random_matrix(5, 7, rng)
        x = random_matrix(1, 7, rng)
        z = random_matrix(1, 5, rng)

        def build(task):
            task.add_matrix("A", a)
            task.add_matrix("x", x)
            task.add_matrix("z", z)
            task.add_matrix("y", shape=(1, 5))
            task.add_matrix("w", shape=(1, 7))
            task.add_operation(TaskOp.MATVEC, "A", "x", "y")
            task.add_operation(TaskOp.MATVEC_T, "A", "z", "w")

        report = self._run(device, build)
        assert np.array_equal(report.results["y"][0], a @ x[0])
        assert np.array_equal(report.results["w"][0], a.T @ z[0])

    def test_matvec_accumulate(self, device, rng):
        a = random_matrix(4, 4, rng)
        x = random_matrix(1, 4, rng)
        y0 = random_matrix(1, 4, rng)

        def build(task):
            task.add_matrix("A", a)
            task.add_matrix("x", x)
            task.add_matrix("y", y0)
            task.add_operation(TaskOp.MATVEC_ACC, "A", "x", "y")

        report = self._run(device, build)
        assert np.array_equal(report.results["y"][0], y0[0] + a @ x[0])

    def test_add_scale_dot(self, device, rng):
        a = random_matrix(3, 6, rng)
        b = random_matrix(3, 6, rng)
        x = random_matrix(1, 9, rng)
        y = random_matrix(1, 9, rng)

        def build(task):
            task.add_matrix("A", a)
            task.add_matrix("B", b)
            task.add_matrix("S", shape=(3, 6))
            task.add_matrix("Sc", shape=(3, 6))
            task.add_matrix("x", x)
            task.add_matrix("y", y)
            task.add_matrix("d", shape=(1, 1))
            task.add_scalar("alpha", 3)
            task.add_operation(TaskOp.MAT_ADD, "A", "B", "S")
            task.add_operation(TaskOp.MAT_SCALE, "A", "Sc", scalar="alpha")
            task.add_operation(TaskOp.DOT, "x", "y", "d")

        report = self._run(device, build)
        assert np.array_equal(report.results["S"], a + b)
        assert np.array_equal(report.results["Sc"], 3 * a)
        assert report.results["d"][0, 0] == int(np.dot(x[0], y[0]))

    def test_chained_operations(self, device, rng):
        """Outputs feed later operations (2mm-style chain)."""
        a = random_matrix(4, 3, rng)
        b = random_matrix(3, 4, rng)
        c = random_matrix(4, 2, rng)

        def build(task):
            task.add_matrix("A", a)
            task.add_matrix("B", b)
            task.add_matrix("C", c)
            task.add_matrix("T", shape=(4, 4))
            task.add_matrix("E", shape=(4, 2))
            task.add_operation(TaskOp.MATMUL, "A", "B", "T")
            task.add_operation(TaskOp.MATMUL, "T", "C", "E")

        report = self._run(device, build)
        assert np.array_equal(report.results["E"], (a @ b) @ c)

    def test_functional_false_skips_results(self, device):
        task = PimTask(device)
        task.add_matrix("A", shape=(2, 2))
        task.add_matrix("B", shape=(2, 2))
        task.add_matrix("C", shape=(2, 2))
        task.add_operation(TaskOp.MAT_ADD, "A", "B", "C")
        report = task.run(functional=False)
        assert report.results == {}
        assert report.time_ns > 0


class TestCountsAndTrace:
    def _task(self, device, m=4, k=3, n=2):
        task = PimTask(device)
        task.add_matrix("A", shape=(m, k))
        task.add_matrix("B", shape=(k, n))
        task.add_matrix("C", shape=(m, n))
        task.add_operation(TaskOp.MATMUL, "A", "B", "C")
        return task

    def test_matmul_counts(self, device):
        report = self._task(device).run(functional=False)
        assert report.counts.pim_vpcs == 4 * 2
        assert report.counts.move_vpcs == 4 * 2

    def test_trace_counts_match_closed_form(self, device):
        task = self._task(device)
        trace = task.to_trace()
        report = task.run(functional=False)
        assert trace.stats.pim_vpcs == report.counts.pim_vpcs
        assert trace.stats.move_vpcs == report.counts.move_vpcs

    def test_matvec_trace_counts(self, device):
        task = PimTask(device)
        task.add_matrix("A", shape=(5, 4))
        task.add_matrix("x", shape=(1, 4))
        task.add_matrix("y", shape=(1, 5))
        task.add_operation(TaskOp.MATVEC, "A", "x", "y")
        trace = task.to_trace()
        report = task.run(functional=False)
        assert trace.stats.pim_vpcs == report.counts.pim_vpcs == 5
        assert trace.stats.move_vpcs == report.counts.move_vpcs == 10

    def test_per_op_timings_reported(self, device):
        task = self._task(device)
        report = task.run(functional=False)
        assert len(report.per_op_ns) == 1
        assert report.per_op_ns[0] > 0


class TestPolicies:
    def _time(self, small_geometry, small_bus_config, policy, m=8, k=8, n=8):
        device = _device(small_geometry, small_bus_config, policy)
        task = PimTask(device)
        task.add_matrix("A", shape=(m, k))
        task.add_matrix("B", shape=(k, n))
        task.add_matrix("C", shape=(m, n))
        task.add_operation(TaskOp.MATMUL, "A", "B", "C")
        return task.run(functional=False).time_ns

    def test_fig22_ordering(self, small_geometry, small_bus_config):
        """base >= distribute >= unblock execution time (Fig. 22)."""
        base = self._time(small_geometry, small_bus_config, SchedulerPolicy.BASE)
        distribute = self._time(
            small_geometry, small_bus_config, SchedulerPolicy.DISTRIBUTE
        )
        unblock = self._time(
            small_geometry, small_bus_config, SchedulerPolicy.UNBLOCK
        )
        assert base >= distribute >= unblock

    def test_functional_results_policy_invariant(
        self, small_geometry, small_bus_config, rng
    ):
        a = random_matrix(4, 4, rng)
        b = random_matrix(4, 4, rng)
        outputs = []
        for policy in SchedulerPolicy:
            device = _device(small_geometry, small_bus_config, policy)
            task = PimTask(device)
            task.add_matrix("A", a)
            task.add_matrix("B", b)
            task.add_matrix("C", shape=(4, 4))
            task.add_operation(TaskOp.MATMUL, "A", "B", "C")
            outputs.append(task.run().results["C"])
        assert np.array_equal(outputs[0], outputs[1])
        assert np.array_equal(outputs[1], outputs[2])
        assert np.array_equal(outputs[0], a @ b)


class TestRunEvent:
    def test_run_event_matches_analytic(self, device, rng):
        a = random_matrix(4, 3, rng)
        b = random_matrix(3, 4, rng)

        def build(task):
            task.add_matrix("A", a)
            task.add_matrix("B", b)
            task.add_matrix("C", shape=(4, 4))
            task.add_operation(TaskOp.MATMUL, "A", "B", "C")

        analytic_task = PimTask(device)
        build(analytic_task)
        analytic = analytic_task.run()

        event_device = StreamPIMDevice(device.config)
        event_task = PimTask(event_device)
        build(event_task)
        event = event_task.run_event()

        assert np.array_equal(event.results["C"], analytic.results["C"])
        assert event.counts.pim_vpcs == analytic.counts.pim_vpcs
        assert event.time_ns > 0
