"""Serving-layer integration tests: worker execution, coalesce keys,
and a real end-to-end service over a unix socket.

The heavy chaos pass (forced worker kills, slow injection, p99 gate)
lives in ``tools/bench_serve.py`` / ``make serve-smoke``; here we keep
one small but *real* server round trip plus in-process coverage of the
worker-side typed-envelope mapping and the compile coalescing key.
"""

import hashlib
import os
import subprocess
import sys
import time

import pytest

from repro.baselines import default_platforms
from repro.core.compile import compile_workload, spec_cache_key
from repro.serve.client import ServeClient
from repro.serve.protocol import ErrorCode, Request
from repro.serve.server import request_coalesce_key
from repro.serve.supervisor import execute_request
from repro.workloads import find_workload

SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


def run_request(method, params, deadline_ts=None, **options):
    options.setdefault("enable_debug_methods", True)
    return execute_request(method, params, deadline_ts, options)


class TestExecuteRequest:
    """The worker maps every failure to a typed code — no guessing."""

    def test_run_matches_inprocess_platform(self):
        envelope = run_request(
            "run", {"workload": "atax", "platform": "StPIM", "scale": 0.01}
        )
        assert envelope["ok"]
        spec = find_workload("atax", scale=0.01)
        stats = default_platforms()["StPIM"].run(spec)
        assert envelope["result"]["time_ns"] == stats.time_ns
        assert envelope["result"]["energy_pj"] == stats.energy.total_pj

    def test_unknown_workload_typed(self):
        envelope = run_request("run", {"workload": "nope"})
        assert not envelope["ok"]
        assert envelope["code"] == ErrorCode.UNKNOWN_WORKLOAD.value
        assert "nope" in envelope["message"]

    def test_unknown_platform_typed(self):
        envelope = run_request(
            "run", {"workload": "atax", "platform": "TPU", "scale": 0.01}
        )
        assert not envelope["ok"]
        assert envelope["code"] == ErrorCode.UNKNOWN_WORKLOAD.value

    def test_unknown_method_typed(self):
        envelope = run_request("frobnicate", {})
        assert envelope["code"] == ErrorCode.UNKNOWN_METHOD.value

    def test_debug_methods_gated_in_worker(self):
        envelope = execute_request(
            "x-fault", {}, None, {"enable_debug_methods": False}
        )
        assert envelope["code"] == ErrorCode.UNKNOWN_METHOD.value

    def test_injected_fault_typed(self):
        envelope = run_request("x-fault", {})
        assert envelope["code"] == ErrorCode.SIMULATION_FAULT.value

    def test_expired_deadline_cancels_cooperatively(self):
        envelope = run_request(
            "x-sleep", {"ms": 60000.0}, deadline_ts=time.time() - 1.0
        )
        assert envelope["code"] == ErrorCode.DEADLINE_EXCEEDED.value

    def test_compile_hits_cache_and_matches_local_sha(self, tmp_path):
        params = {"workload": "atax", "scale": 0.01, "seed": 7}
        cold = run_request("compile", params, cache_dir=str(tmp_path))
        warm = run_request("compile", params, cache_dir=str(tmp_path))
        assert cold["ok"] and warm["ok"]
        assert cold["result"]["cache_hit"] is False
        assert warm["result"]["cache_hit"] is True
        local = compile_workload(
            find_workload("atax", scale=0.01), seed=7, use_cache=False
        )
        sha = hashlib.sha256(local.trace.to_bytes()).hexdigest()
        assert cold["result"]["trace_sha256"] == sha
        assert warm["result"]["trace_sha256"] == sha


class TestCoalesceKey:
    def _compile_req(self, rid="r", **params):
        merged = {"workload": "atax", "scale": 0.01, "seed": 7}
        merged.update(params)
        return Request(id=rid, method="compile", params=merged)

    def test_only_compile_coalesces(self):
        assert request_coalesce_key(
            Request(id="r", method="run", params={"workload": "atax"})
        ) is None

    def test_identical_compiles_share_a_key(self):
        a = request_coalesce_key(self._compile_req("r1"))
        b = request_coalesce_key(self._compile_req("r2"))
        assert a is not None and a == b
        # Keyed by the trace cache's content hash.
        assert spec_cache_key(find_workload("atax", scale=0.01), seed=7) in a

    @pytest.mark.parametrize(
        "variant",
        [{"seed": 8}, {"scale": 0.02}, {"workload": "bicg"}, {"deep": True}],
    )
    def test_different_work_gets_different_keys(self, variant):
        assert request_coalesce_key(
            self._compile_req(**variant)
        ) != request_coalesce_key(self._compile_req())

    def test_no_cache_never_coalesces(self):
        assert request_coalesce_key(self._compile_req(no_cache=True)) is None

    def test_unresolvable_params_never_coalesce(self):
        assert request_coalesce_key(self._compile_req(workload="nope")) is None


@pytest.fixture(scope="class")
def live_server(tmp_path_factory):
    """One real service (2 workers) on a unix socket for the class."""
    root = tmp_path_factory.mktemp("serve")
    socket_path = str(root / "serve.sock")
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    env["REPRO_STREAMPIM_CACHE_DIR"] = str(root / "cache")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--socket",
            socket_path,
            "--workers",
            "2",
            "--cache-dir",
            str(root / "cache"),
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    deadline = time.time() + 30.0
    while True:
        try:
            with ServeClient(socket_path=socket_path, timeout_s=2.0) as c:
                if c.ping().ok:
                    break
        except Exception:
            if proc.poll() is not None:
                raise RuntimeError("server died during startup")
            if time.time() > deadline:
                proc.kill()
                raise RuntimeError("server did not come up in 30s")
            time.sleep(0.1)
    yield socket_path, proc
    if proc.poll() is None:
        proc.terminate()
        proc.wait(timeout=15)


class TestEndToEnd:
    def test_run_over_socket_is_bit_identical(self, live_server):
        socket_path, _ = live_server
        with ServeClient(socket_path=socket_path, timeout_s=60.0) as client:
            response = client.call(
                "run",
                {"workload": "atax", "platform": "StPIM", "scale": 0.01},
            )
        assert response.ok
        stats = default_platforms()["StPIM"].run(
            find_workload("atax", scale=0.01)
        )
        assert response.result["time_ns"] == stats.time_ns

    def test_compile_over_socket_warm_hit(self, live_server):
        socket_path, _ = live_server
        params = {"workload": "bicg", "scale": 0.01, "seed": 7}
        with ServeClient(socket_path=socket_path, timeout_s=120.0) as client:
            cold = client.call("compile", params)
            warm = client.call("compile", params)
        assert cold.ok and warm.ok
        assert warm.result["cache_hit"] is True
        assert warm.result["trace_sha256"] == cold.result["trace_sha256"]

    def test_typed_error_crosses_the_wire(self, live_server):
        socket_path, _ = live_server
        with ServeClient(socket_path=socket_path, timeout_s=30.0) as client:
            response = client.call("run", {"workload": "nope"})
        assert not response.ok
        assert response.error.code is ErrorCode.UNKNOWN_WORKLOAD
        assert not response.error.retryable

    def test_debug_methods_rejected_without_chaos(self, live_server):
        socket_path, _ = live_server
        with ServeClient(socket_path=socket_path, timeout_s=30.0) as client:
            response = client.call("x-crash", {})
        assert response.error.code is ErrorCode.UNKNOWN_METHOD

    def test_one_shot_cli_clients_do_not_collide(self, live_server):
        # Regression: the server's exactly-once ledger spans
        # connections, so auto-generated request ids must be unique
        # across *processes* — two fresh CLI invocations used to both
        # count "c1" and the second was rejected as a duplicate.
        socket_path, _ = live_server
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC
        for _ in range(2):
            proc = subprocess.run(
                [
                    sys.executable,
                    "-m",
                    "repro.cli",
                    "client",
                    "run",
                    "--socket",
                    socket_path,
                    "--workload",
                    "atax",
                    "--scale",
                    "0.01",
                ],
                env=env,
                capture_output=True,
                text=True,
                timeout=120,
            )
            assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_stats_and_clean_drain(self, live_server):
        socket_path, proc = live_server
        with ServeClient(socket_path=socket_path, timeout_s=30.0) as client:
            stats = client.stats()
            assert stats.ok
            assert stats.result["pool"]["size"] == 2
            assert stats.result["core"]["dead_letters"] == 0
            # Every worker-method request from the earlier tests got
            # exactly one answer.
            assert stats.result["core"]["responded"] >= 4
            assert stats.result["latency_ms"]["p99"] is not None
            assert client.drain().ok
        assert proc.wait(timeout=30) == 0
