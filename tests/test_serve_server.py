"""Serving-layer integration tests: worker execution, coalesce keys,
and a real end-to-end service over a unix socket.

The heavy chaos pass (forced worker kills, slow injection, p99 gate)
lives in ``tools/bench_serve.py`` / ``make serve-smoke``; here we keep
one small but *real* server round trip plus in-process coverage of the
worker-side typed-envelope mapping and the compile coalescing key.
"""

import asyncio
import hashlib
import json
import os
import pickle
import subprocess
import sys
import time

import pytest

from repro.baselines import default_platforms
from repro.core.compile import compile_workload, spec_cache_key
from repro.serve.client import ServeClient
from repro.serve.protocol import ErrorCode, Request, encode_message
from repro.serve.server import request_coalesce_key
from repro.serve.supervisor import WorkerHandle, WorkerPool, execute_request
from repro.workloads import find_workload

SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


def run_request(method, params, deadline_ts=None, **options):
    options.setdefault("enable_debug_methods", True)
    return execute_request(method, params, deadline_ts, options)


class TestExecuteRequest:
    """The worker maps every failure to a typed code — no guessing."""

    def test_run_matches_inprocess_platform(self):
        envelope = run_request(
            "run", {"workload": "atax", "platform": "StPIM", "scale": 0.01}
        )
        assert envelope["ok"]
        spec = find_workload("atax", scale=0.01)
        stats = default_platforms()["StPIM"].run(spec)
        assert envelope["result"]["time_ns"] == stats.time_ns
        assert envelope["result"]["energy_pj"] == stats.energy.total_pj

    def test_unknown_workload_typed(self):
        envelope = run_request("run", {"workload": "nope"})
        assert not envelope["ok"]
        assert envelope["code"] == ErrorCode.UNKNOWN_WORKLOAD.value
        assert "nope" in envelope["message"]

    def test_unknown_platform_typed(self):
        envelope = run_request(
            "run", {"workload": "atax", "platform": "TPU", "scale": 0.01}
        )
        assert not envelope["ok"]
        assert envelope["code"] == ErrorCode.UNKNOWN_WORKLOAD.value

    def test_unknown_method_typed(self):
        envelope = run_request("frobnicate", {})
        assert envelope["code"] == ErrorCode.UNKNOWN_METHOD.value

    def test_debug_methods_gated_in_worker(self):
        envelope = execute_request(
            "x-fault", {}, None, {"enable_debug_methods": False}
        )
        assert envelope["code"] == ErrorCode.UNKNOWN_METHOD.value

    def test_injected_fault_typed(self):
        envelope = run_request("x-fault", {})
        assert envelope["code"] == ErrorCode.SIMULATION_FAULT.value

    def test_expired_deadline_cancels_cooperatively(self):
        envelope = run_request(
            "x-sleep", {"ms": 60000.0}, deadline_ts=time.time() - 1.0
        )
        assert envelope["code"] == ErrorCode.DEADLINE_EXCEEDED.value

    def test_compile_hits_cache_and_matches_local_sha(self, tmp_path):
        params = {"workload": "atax", "scale": 0.01, "seed": 7}
        cold = run_request("compile", params, cache_dir=str(tmp_path))
        warm = run_request("compile", params, cache_dir=str(tmp_path))
        assert cold["ok"] and warm["ok"]
        assert cold["result"]["cache_hit"] is False
        assert warm["result"]["cache_hit"] is True
        local = compile_workload(
            find_workload("atax", scale=0.01), seed=7, use_cache=False
        )
        sha = hashlib.sha256(local.trace.to_bytes()).hexdigest()
        assert cold["result"]["trace_sha256"] == sha
        assert warm["result"]["trace_sha256"] == sha


class TestCoalesceKey:
    def _compile_req(self, rid="r", **params):
        merged = {"workload": "atax", "scale": 0.01, "seed": 7}
        merged.update(params)
        return Request(id=rid, method="compile", params=merged)

    def test_only_compile_coalesces(self):
        assert request_coalesce_key(
            Request(id="r", method="run", params={"workload": "atax"})
        ) is None

    def test_identical_compiles_share_a_key(self):
        a = request_coalesce_key(self._compile_req("r1"))
        b = request_coalesce_key(self._compile_req("r2"))
        assert a is not None and a == b
        # Keyed by the trace cache's content hash.
        assert spec_cache_key(find_workload("atax", scale=0.01), seed=7) in a

    @pytest.mark.parametrize(
        "variant",
        [{"seed": 8}, {"scale": 0.02}, {"workload": "bicg"}, {"deep": True}],
    )
    def test_different_work_gets_different_keys(self, variant):
        assert request_coalesce_key(
            self._compile_req(**variant)
        ) != request_coalesce_key(self._compile_req())

    def test_no_cache_never_coalesces(self):
        assert request_coalesce_key(self._compile_req(no_cache=True)) is None

    def test_unresolvable_params_never_coalesce(self):
        assert request_coalesce_key(self._compile_req(workload="nope")) is None


@pytest.fixture(scope="class")
def live_server(tmp_path_factory):
    """One real service (2 workers) on a unix socket for the class."""
    root = tmp_path_factory.mktemp("serve")
    socket_path = str(root / "serve.sock")
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    env["REPRO_STREAMPIM_CACHE_DIR"] = str(root / "cache")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--socket",
            socket_path,
            "--workers",
            "2",
            "--cache-dir",
            str(root / "cache"),
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    deadline = time.time() + 30.0
    while True:
        try:
            with ServeClient(socket_path=socket_path, timeout_s=2.0) as c:
                if c.ping().ok:
                    break
        except Exception:
            if proc.poll() is not None:
                raise RuntimeError("server died during startup")
            if time.time() > deadline:
                proc.kill()
                raise RuntimeError("server did not come up in 30s")
            time.sleep(0.1)
    yield socket_path, proc
    if proc.poll() is None:
        proc.terminate()
        proc.wait(timeout=15)


class TestEndToEnd:
    def test_run_over_socket_is_bit_identical(self, live_server):
        socket_path, _ = live_server
        with ServeClient(socket_path=socket_path, timeout_s=60.0) as client:
            response = client.call(
                "run",
                {"workload": "atax", "platform": "StPIM", "scale": 0.01},
            )
        assert response.ok
        stats = default_platforms()["StPIM"].run(
            find_workload("atax", scale=0.01)
        )
        assert response.result["time_ns"] == stats.time_ns

    def test_compile_over_socket_warm_hit(self, live_server):
        socket_path, _ = live_server
        params = {"workload": "bicg", "scale": 0.01, "seed": 7}
        with ServeClient(socket_path=socket_path, timeout_s=120.0) as client:
            cold = client.call("compile", params)
            warm = client.call("compile", params)
        assert cold.ok and warm.ok
        assert warm.result["cache_hit"] is True
        assert warm.result["trace_sha256"] == cold.result["trace_sha256"]

    def test_typed_error_crosses_the_wire(self, live_server):
        socket_path, _ = live_server
        with ServeClient(socket_path=socket_path, timeout_s=30.0) as client:
            response = client.call("run", {"workload": "nope"})
        assert not response.ok
        assert response.error.code is ErrorCode.UNKNOWN_WORKLOAD
        assert not response.error.retryable

    def test_debug_methods_rejected_without_chaos(self, live_server):
        socket_path, _ = live_server
        with ServeClient(socket_path=socket_path, timeout_s=30.0) as client:
            response = client.call("x-crash", {})
        assert response.error.code is ErrorCode.UNKNOWN_METHOD

    def test_one_shot_cli_clients_do_not_collide(self, live_server):
        # Regression: the server's exactly-once ledger spans
        # connections, so auto-generated request ids must be unique
        # across *processes* — two fresh CLI invocations used to both
        # count "c1" and the second was rejected as a duplicate.
        socket_path, _ = live_server
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC
        for _ in range(2):
            proc = subprocess.run(
                [
                    sys.executable,
                    "-m",
                    "repro.cli",
                    "client",
                    "run",
                    "--socket",
                    socket_path,
                    "--workload",
                    "atax",
                    "--scale",
                    "0.01",
                ],
                env=env,
                capture_output=True,
                text=True,
                timeout=120,
            )
            assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_stats_and_clean_drain(self, live_server):
        socket_path, proc = live_server
        with ServeClient(socket_path=socket_path, timeout_s=30.0) as client:
            stats = client.stats()
            assert stats.ok
            assert stats.result["pool"]["size"] == 2
            assert stats.result["core"]["dead_letters"] == 0
            # Every worker-method request from the earlier tests got
            # exactly one answer.
            assert stats.result["core"]["responded"] >= 4
            assert stats.result["latency_ms"]["p99"] is not None
            assert client.drain().ok
        assert proc.wait(timeout=30) == 0


# ----------------------------------------------------------------------
# Review regressions: route-table integrity, tick resilience, torn pipes
# ----------------------------------------------------------------------
class FakeWriter:
    """Collects written lines like a StreamWriter (no socket)."""

    def __init__(self):
        self.chunks = []

    def write(self, data):
        self.chunks.append(data)

    def messages(self):
        return [
            json.loads(line)
            for chunk in self.chunks
            for line in chunk.splitlines()
        ]


def make_server(tmp_path):
    from repro.serve.server import ServeConfig, SimulationServer

    return SimulationServer(
        ServeConfig(socket_path=str(tmp_path / "s.sock"), workers=1)
    )


class TestRouteTable:
    def test_duplicate_id_cannot_steal_pending_route(self, tmp_path):
        # Regression: a duplicate of a still-pending id used to
        # overwrite the original's route and then pop it when the
        # duplicate's rejection was delivered, silently dropping the
        # original client's response (any connection could suppress
        # another's pending response by sending its id).
        server = make_server(tmp_path)
        victim, attacker = FakeWriter(), FakeWriter()
        line = encode_message(
            {
                "id": "r1",
                "method": "run",
                "params": {"workload": "atax", "scale": 0.01},
            }
        )
        server._handle_line(line, victim)  # queued: no workers running
        assert server._routes["r1"] is victim
        server._handle_line(line, attacker)
        (rejection,) = attacker.messages()
        assert rejection["error"]["code"] == "INVALID_REQUEST"
        # The original's route and pending state are untouched.
        assert server._routes["r1"] is victim
        assert victim.messages() == []
        assert server.core.unresolved_count == 1

    def test_pending_response_still_delivered_after_duplicate(
        self, tmp_path
    ):
        server = make_server(tmp_path)
        victim, attacker = FakeWriter(), FakeWriter()
        line = encode_message(
            {
                "id": "r1",
                "method": "run",
                "params": {"workload": "atax", "scale": 0.01},
            }
        )
        server._handle_line(line, victim)
        server._handle_line(line, attacker)
        # The worker resolves the original: it must reach the victim.
        server.core.register_worker("w1", time.time())
        server._apply(
            server.core.worker_result(
                "w1", "r1", {"ok": True, "result": {"x": 1}}, time.time()
            )
        )
        (resp,) = victim.messages()
        assert resp["ok"] and resp["result"] == {"x": 1}
        assert "r1" not in server._routes


class TestTickLoopResilience:
    def test_tick_survives_poll_exceptions(self, tmp_path):
        # Regression: an unexpected exception from pool.poll() killed
        # the tick task silently, wedging the whole service.
        server = make_server(tmp_path)

        def boom(now):
            raise RuntimeError("unpicklable pipe junk")

        server.pool.poll = boom

        async def run():
            task = asyncio.get_running_loop().create_task(
                server._tick_loop()
            )
            await asyncio.sleep(0.1)
            alive = not task.done()
            server._stopped.set()
            await task
            return alive

        assert asyncio.run(run())
        assert server.registry.counter("serve.tick.errors").value >= 2


class TestWorkerPoolTornPipe:
    def test_undecodable_pipe_data_is_a_crash(self):
        # Regression: only EOFError/OSError were treated as a broken
        # pipe; a worker SIGKILLed mid-send leaves a torn pickle that
        # recv() raises UnpicklingError on, which leaked out of poll().
        class TornConn:
            def poll(self, timeout):
                return True

            def recv(self):
                raise pickle.UnpicklingError("torn frame")

            def close(self):
                pass

        class FakeProc:
            pid = 4242

            def is_alive(self):
                return True

            def join(self, timeout=None):
                pass

            def kill(self):
                pass

        pool = WorkerPool(size=1)
        handle = WorkerHandle(
            worker_id="w1",
            process=FakeProc(),
            conn=TornConn(),
            spawned_at=0.0,
            last_heartbeat=0.0,
            generation=1,
        )
        handle.start_done.set()
        handle.running = True
        pool.workers["w1"] = handle
        try:
            events = pool.poll(1.0)
            exits = [e for e in events if e[0] == "exit"]
            assert exits == [("exit", "w1", "crash")]
            # A replacement was spawned to restore the roster.
            assert [e[0] for e in events if e[0] == "ready"] == ["ready"]
            assert pool.restarts == 1
        finally:
            pool.shutdown()
