"""Tests for the RM processor timing + functional model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.processor import RMProcessor, RMProcessorConfig
from repro.isa.vpc import VPCOpcode


@pytest.fixture
def proc():
    return RMProcessor()


class TestConfig:
    def test_table3_defaults(self):
        cfg = RMProcessorConfig()
        assert cfg.word_bits == 8
        assert cfg.duplicators == 2

    def test_duplication_interval(self):
        # 8 duplications spread over 2 duplicators -> 4 cycles/element.
        assert RMProcessorConfig().duplication_interval == 4
        assert RMProcessorConfig(duplicators=4).duplication_interval == 2
        assert RMProcessorConfig(duplicators=8).duplication_interval == 1

    def test_adder_tree_depth_log2_of_bits(self):
        assert RMProcessorConfig().adder_tree_depth == 3

    def test_accumulator_width_validated(self):
        with pytest.raises(ValueError):
            RMProcessorConfig(word_bits=8, accumulator_bits=15)

    @pytest.mark.parametrize("field", ["word_bits", "duplicators"])
    def test_rejects_nonpositive(self, field):
        with pytest.raises(ValueError):
            RMProcessorConfig(**{field: 0})


class TestPipelines:
    def test_mul_uses_all_four_stages(self, proc):
        model = proc.pipeline_for(VPCOpcode.MUL)
        assert [s.name for s in model.stages] == [
            "fetch",
            "duplicate_multiply",
            "adder_tree",
            "circle_adder",
        ]

    def test_smul_bypasses_circle_adder(self, proc):
        names = [s.name for s in proc.pipeline_for(VPCOpcode.SMUL).stages]
        assert "circle_adder" not in names
        assert "duplicate_multiply" in names

    def test_add_bypasses_stages_1_to_3(self, proc):
        names = [s.name for s in proc.pipeline_for(VPCOpcode.ADD).stages]
        assert names == ["circle_adder"]

    def test_tran_has_no_pipeline(self, proc):
        with pytest.raises(ValueError):
            proc.pipeline_for(VPCOpcode.TRAN)

    def test_mul_initiation_interval_is_duplication_bound(self, proc):
        assert proc.initiation_interval(VPCOpcode.MUL) == 4

    def test_add_streams_one_per_cycle(self, proc):
        assert proc.initiation_interval(VPCOpcode.ADD) == 1


class TestCycles:
    def test_dot_product_latency_formula(self, proc):
        fill = proc.pipeline_for(VPCOpcode.MUL).fill_cycles
        assert proc.compute_cycles(VPCOpcode.MUL, 1) == fill
        assert proc.compute_cycles(VPCOpcode.MUL, 100) == fill + 99 * 4

    def test_add_cheaper_than_mul(self, proc):
        assert proc.compute_cycles(VPCOpcode.ADD, 64) < proc.compute_cycles(
            VPCOpcode.MUL, 64
        )

    def test_compute_ns_uses_core_clock(self, proc):
        cycles = proc.compute_cycles(VPCOpcode.MUL, 10)
        assert proc.compute_ns(VPCOpcode.MUL, 10) == pytest.approx(
            cycles * 10.0
        )

    def test_rejects_nonpositive_elements(self, proc):
        with pytest.raises(ValueError):
            proc.compute_cycles(VPCOpcode.MUL, 0)

    def test_more_duplicators_speed_up_mul(self):
        fast = RMProcessor(RMProcessorConfig(duplicators=8))
        slow = RMProcessor(RMProcessorConfig(duplicators=1))
        n = 1000
        assert fast.compute_cycles(VPCOpcode.MUL, n) < slow.compute_cycles(
            VPCOpcode.MUL, n
        )


class TestEnergy:
    def test_dot_product_charges_mul_and_add(self, proc):
        t = proc.timing
        assert proc.compute_energy_pj(VPCOpcode.MUL, 10) == pytest.approx(
            10 * (t.pim_mul_pj + t.pim_add_pj)
        )

    def test_add_charges_only_adds(self, proc):
        assert proc.compute_energy_pj(VPCOpcode.ADD, 10) == pytest.approx(
            10 * proc.timing.pim_add_pj
        )

    def test_smul_charges_only_muls(self, proc):
        assert proc.compute_energy_pj(VPCOpcode.SMUL, 10) == pytest.approx(
            10 * proc.timing.pim_mul_pj
        )

    def test_tran_rejected(self, proc):
        with pytest.raises(ValueError):
            proc.compute_energy_pj(VPCOpcode.TRAN, 1)


class TestFunctional:
    def test_dot_product(self, proc):
        a = np.array([1, 2, 3])
        b = np.array([4, 5, 6])
        assert proc.apply(VPCOpcode.MUL, a, b)[0] == 32

    def test_smul(self, proc):
        out = proc.apply(VPCOpcode.SMUL, np.array([3]), np.array([1, 2, 3]))
        assert list(out) == [3, 6, 9]

    def test_add(self, proc):
        out = proc.apply(VPCOpcode.ADD, np.array([1, 2]), np.array([3, 4]))
        assert list(out) == [4, 6]

    def test_rejects_negative_operands(self, proc):
        with pytest.raises(ValueError):
            proc.apply(VPCOpcode.ADD, np.array([-1]), np.array([0]))

    def test_accepts_wide_intermediates(self, proc):
        # Chained results (dot products) exceed one word; the datapath
        # carries them at accumulator precision.
        out = proc.apply(VPCOpcode.ADD, np.array([70_000]), np.array([5]))
        assert out[0] == 70_005

    def test_rejects_shape_mismatch(self, proc):
        with pytest.raises(ValueError):
            proc.apply(VPCOpcode.MUL, np.array([1, 2]), np.array([1]))

    def test_smul_scalar_must_be_scalar(self, proc):
        with pytest.raises(ValueError):
            proc.apply(VPCOpcode.SMUL, np.array([1, 2]), np.array([1, 2]))

    def test_no_8bit_wraparound(self, proc):
        # 255 * 255 = 65025 must come out exact, not mod 256.
        out = proc.apply(VPCOpcode.MUL, np.array([255]), np.array([255]))
        assert out[0] == 65_025


class TestBitAccurateEquivalence:
    """The numpy fast path equals the gate-level datapath."""

    @settings(max_examples=20, deadline=None)
    @given(
        a=st.lists(st.integers(0, 255), min_size=1, max_size=4),
        b=st.lists(st.integers(0, 255), min_size=1, max_size=4),
    )
    def test_dot_product(self, a, b):
        n = min(len(a), len(b))
        a, b = a[:n], b[:n]
        proc = RMProcessor()
        fast = proc.apply(VPCOpcode.MUL, np.array(a), np.array(b))
        slow = proc.apply_bit_accurate(VPCOpcode.MUL, a, b)
        assert fast[0] == slow[0]

    @settings(max_examples=20, deadline=None)
    @given(
        scalar=st.integers(0, 255),
        vec=st.lists(st.integers(0, 255), min_size=1, max_size=4),
    )
    def test_smul(self, scalar, vec):
        proc = RMProcessor()
        fast = proc.apply(VPCOpcode.SMUL, np.array([scalar]), np.array(vec))
        slow = proc.apply_bit_accurate(VPCOpcode.SMUL, [scalar], vec)
        assert list(fast) == list(slow)

    @settings(max_examples=20, deadline=None)
    @given(
        a=st.lists(st.integers(0, 255), min_size=1, max_size=6),
        b=st.lists(st.integers(0, 255), min_size=1, max_size=6),
    )
    def test_add(self, a, b):
        n = min(len(a), len(b))
        a, b = a[:n], b[:n]
        proc = RMProcessor()
        fast = proc.apply(VPCOpcode.ADD, np.array(a), np.array(b))
        slow = proc.apply_bit_accurate(VPCOpcode.ADD, a, b)
        assert list(fast) == list(slow)

    def test_gate_counter_populated(self):
        from repro.dwlogic.gates import GateCounter

        proc = RMProcessor()
        counter = GateCounter()
        proc.apply_bit_accurate(VPCOpcode.MUL, [7], [9], counter)
        assert counter.total > 0
