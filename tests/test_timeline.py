"""Tests for schedule timelines and Gantt rendering."""

import io

import pytest

from repro.analysis.timeline import (
    Interval,
    render_gantt,
    schedule_timeline,
    timeline_from_csv,
    timeline_to_csv,
)
from repro.core.scheduler import Round, Scheduler, SchedulerPolicy
from repro.sim.stats import EnergyBreakdown, TimeBreakdown


def _rounds(n=3, prep_words=1000, compute_ns=500.0):
    return [
        Round(
            prep_words=prep_words,
            prep_targets=4,
            compute_ns=compute_ns,
            compute_time=TimeBreakdown(process_ns=compute_ns),
            compute_energy=EnergyBreakdown(compute_pj=1.0),
            label=f"r{i}",
        )
        for i in range(n)
    ]


class TestInterval:
    def test_duration(self):
        assert Interval("prep", 1.0, 3.0).duration_ns == 2.0

    def test_backwards_rejected(self):
        with pytest.raises(ValueError):
            Interval("prep", 3.0, 1.0)


class TestScheduleTimeline:
    def test_serial_alternates_lanes(self):
        scheduler = Scheduler(SchedulerPolicy.DISTRIBUTE)
        timeline = schedule_timeline(scheduler, _rounds(2))
        lanes = [i.lane for i in timeline]
        assert lanes == ["prep", "compute", "prep", "compute"]

    def test_serial_no_overlap(self):
        scheduler = Scheduler(SchedulerPolicy.DISTRIBUTE)
        timeline = schedule_timeline(scheduler, _rounds(3))
        ordered = sorted(timeline, key=lambda i: i.start_ns)
        for a, b in zip(ordered, ordered[1:]):
            assert b.start_ns >= a.end_ns - 1e-9

    def test_serial_total_matches_compose(self):
        scheduler = Scheduler(SchedulerPolicy.DISTRIBUTE)
        rounds = _rounds(4)
        timeline = schedule_timeline(scheduler, rounds)
        end = max(i.end_ns for i in timeline)
        assert end == pytest.approx(scheduler.compose(rounds).total_ns)

    def test_unblock_overlaps_lanes(self):
        scheduler = Scheduler(SchedulerPolicy.UNBLOCK)
        timeline = schedule_timeline(scheduler, _rounds(4))
        preps = [i for i in timeline if i.lane == "prep"]
        computes = [i for i in timeline if i.lane == "compute"]
        overlap = any(
            p.start_ns < c.end_ns and c.start_ns < p.end_ns
            for p in preps
            for c in computes
        )
        assert overlap

    def test_unblock_compute_back_to_back(self):
        scheduler = Scheduler(SchedulerPolicy.UNBLOCK)
        timeline = schedule_timeline(scheduler, _rounds(3))
        computes = sorted(
            (i for i in timeline if i.lane == "compute"),
            key=lambda i: i.start_ns,
        )
        for a, b in zip(computes, computes[1:]):
            assert b.start_ns == pytest.approx(a.end_ns)

    def test_unblock_faster_than_serial(self):
        rounds = _rounds(5)
        serial_end = max(
            i.end_ns
            for i in schedule_timeline(
                Scheduler(SchedulerPolicy.DISTRIBUTE), rounds
            )
        )
        fluid_end = max(
            i.end_ns
            for i in schedule_timeline(
                Scheduler(SchedulerPolicy.UNBLOCK), rounds
            )
        )
        assert fluid_end < serial_end

    def test_empty_rounds(self):
        assert schedule_timeline(Scheduler(), []) == []

    def test_startup_interval_labelled(self):
        scheduler = Scheduler(SchedulerPolicy.UNBLOCK)
        timeline = schedule_timeline(scheduler, _rounds(1))
        assert timeline[0].label == "startup copy"


class TestExports:
    def test_csv_roundtrip_fields(self):
        scheduler = Scheduler(SchedulerPolicy.UNBLOCK)
        timeline = schedule_timeline(scheduler, _rounds(2))
        buffer = io.StringIO()
        timeline_to_csv(timeline, buffer)
        lines = buffer.getvalue().splitlines()
        assert lines[0] == "lane,start_ns,end_ns,label"
        assert len(lines) == len(timeline) + 1

    def test_csv_to_file(self, tmp_path):
        path = tmp_path / "timeline.csv"
        timeline_to_csv([Interval("prep", 0.0, 1.0, "a,b")], str(path))
        text = path.read_text()
        assert '"a,b"' in text  # commas survive via quoting
        assert timeline_from_csv(str(path))[0].label == "a,b"

    def test_csv_roundtrip_hostile_labels(self, tmp_path):
        path = tmp_path / "timeline.csv"
        original = [
            Interval("prep", 0.0, 1.5, 'say "hi", ok'),
            Interval("compute", 1.5, 4.0, "line\nbreak"),
            Interval("compute", 4.0, 4.25, ""),
        ]
        timeline_to_csv(original, str(path))
        restored = timeline_from_csv(str(path))
        assert restored == original

    def test_csv_from_buffer_rejects_bad_header(self):
        with pytest.raises(ValueError):
            timeline_from_csv(io.StringIO("lane,start,end,label\n"))

    def test_csv_from_buffer_rejects_short_row(self):
        source = io.StringIO("lane,start_ns,end_ns,label\nprep,0.0\n")
        with pytest.raises(ValueError):
            timeline_from_csv(source)

    def test_gantt_has_both_lanes(self):
        scheduler = Scheduler(SchedulerPolicy.DISTRIBUTE)
        chart = render_gantt(schedule_timeline(scheduler, _rounds(2)))
        assert "prep" in chart
        assert "compute" in chart
        assert "▒" in chart
        assert "█" in chart

    def test_gantt_validation(self):
        with pytest.raises(ValueError):
            render_gantt([])
        with pytest.raises(ValueError):
            render_gantt([Interval("prep", 0.0, 1.0)], width=0)
        with pytest.raises(ValueError):
            render_gantt([Interval("prep", 0.0, 0.0)])


class TestComposeAgreement:
    def test_unblock_timeline_end_matches_compose(self):
        scheduler = Scheduler(SchedulerPolicy.UNBLOCK)
        for prep_words, compute_ns in ((50_000, 10.0), (100, 5000.0)):
            rounds = _rounds(4, prep_words=prep_words, compute_ns=compute_ns)
            timeline = schedule_timeline(scheduler, rounds)
            end = max(i.end_ns for i in timeline)
            composed = scheduler.compose(rounds).total_ns
            assert end == pytest.approx(composed, rel=1e-6), (
                prep_words,
                compute_ns,
            )
