"""Deficit-round-robin fair queue tests.

The scheduler is a pure data structure, so everything here is
deterministic: round order, deficit accounting across push-front
refunds and batch pulls, and the headline fairness property — a 10:1
offered-load mix between two tenants is *served* ~1:1 while both are
backlogged (Jain index ~1.0), where the old global FIFO served it 10:1
(Jain ~0.6).
"""

import pytest

from repro.serve.scheduling import DeficitRoundRobin


def fill(drr, tenant, count, prefix=None):
    prefix = prefix if prefix is not None else tenant
    for i in range(count):
        drr.push(tenant, f"{prefix}{i}")


def drain(drr):
    order = []
    while True:
        popped = drr.pop()
        if popped is None:
            return order
        order.append(popped)


def jain(counts):
    values = list(counts)
    total = sum(values)
    if not total:
        return 1.0
    return total * total / (len(values) * sum(v * v for v in values))


class TestRoundRobinOrder:
    def test_single_tenant_is_fifo(self):
        drr = DeficitRoundRobin()
        fill(drr, "a", 4)
        assert [item for _, item in drain(drr)] == [
            "a0",
            "a1",
            "a2",
            "a3",
        ]

    def test_backlogged_tenants_alternate(self):
        drr = DeficitRoundRobin()
        fill(drr, "a", 3)
        fill(drr, "b", 3)
        assert drain(drr) == [
            ("a", "a0"),
            ("b", "b0"),
            ("a", "a1"),
            ("b", "b1"),
            ("a", "a2"),
            ("b", "b2"),
        ]

    def test_deep_backlog_cannot_hog_the_front(self):
        # The front tenant's quantum is granted once per visit, not
        # once per pop — 20 queued requests still yield after one.
        drr = DeficitRoundRobin()
        fill(drr, "a", 20)
        fill(drr, "b", 2)
        order = drain(drr)
        assert order[:5] == [
            ("a", "a0"),
            ("b", "b0"),
            ("a", "a1"),
            ("b", "b1"),
            ("a", "a2"),
        ]
        # After b empties, a gets full throughput.
        assert all(tenant == "a" for tenant, _ in order[4:])

    def test_larger_quantum_serves_runs(self):
        drr = DeficitRoundRobin(quantum=2.0)
        fill(drr, "a", 4)
        fill(drr, "b", 4)
        assert [item for _, item in drain(drr)] == [
            "a0",
            "a1",
            "b0",
            "b1",
            "a2",
            "a3",
            "b2",
            "b3",
        ]

    def test_invalid_quantum_rejected(self):
        with pytest.raises(ValueError):
            DeficitRoundRobin(quantum=0.0)


class TestBookkeeping:
    def test_len_contains_depth(self):
        drr = DeficitRoundRobin()
        fill(drr, "a", 2)
        fill(drr, "b", 1)
        assert len(drr) == 3 and bool(drr)
        assert "a1" in drr and "c0" not in drr
        assert drr.depth("a") == 2 and drr.depth("missing") == 0
        assert list(drr.items()) == ["a0", "a1", "b0"]
        assert drr.tenants() == ["a", "b"]

    def test_duplicate_item_rejected(self):
        drr = DeficitRoundRobin()
        drr.push("a", "x")
        with pytest.raises(ValueError):
            drr.push("b", "x")

    def test_remove_anywhere(self):
        drr = DeficitRoundRobin()
        fill(drr, "a", 3)
        assert drr.remove("a1")
        assert not drr.remove("a1")
        assert [item for _, item in drain(drr)] == ["a0", "a2"]

    def test_snapshot_reports_per_tenant_depths(self):
        drr = DeficitRoundRobin()
        fill(drr, "b", 1)
        fill(drr, "a", 2)
        snapshot = drr.snapshot()
        assert snapshot["depth"] == 3
        assert snapshot["tenants"] == {"a": 2, "b": 1}

    def test_clear(self):
        drr = DeficitRoundRobin()
        fill(drr, "a", 2)
        drr.clear()
        assert len(drr) == 0 and drr.pop() is None


class TestDeficitAccounting:
    def test_push_front_round_trips_are_neutral(self):
        # pop + push_front (the linger hold-back path) must not let a
        # tenant double-dip its quantum when it is popped again.
        drr = DeficitRoundRobin()
        fill(drr, "a", 2)
        fill(drr, "b", 2)
        tenant, item = drr.pop()
        assert (tenant, item) == ("a", "a0")
        drr.push_front(tenant, item)
        assert drain(drr) == [
            ("a", "a0"),
            ("b", "b0"),
            ("a", "a1"),
            ("b", "b1"),
        ]

    def test_take_matching_charges_the_served_tenant(self):
        # Pulling b's items into a batch counts as serving b: on the
        # next rounds b owes deficit and a catches up.
        drr = DeficitRoundRobin()
        fill(drr, "a", 2)
        fill(drr, "b", 3)
        taken = drr.take_matching(lambda item: item.startswith("b"), 2)
        assert taken == [("b", "b0"), ("b", "b1")]
        order = drain(drr)
        # b was just served twice, so a's queued work goes first.
        assert order[0] == ("a", "a0")
        assert order[1] == ("a", "a1")
        assert order[2] == ("b", "b2")

    def test_take_matching_respects_limit_and_predicate(self):
        drr = DeficitRoundRobin()
        fill(drr, "a", 4)
        taken = drr.take_matching(lambda item: item in {"a1", "a3"}, 1)
        assert taken == [("a", "a1")]
        assert "a3" in drr
        assert drr.take_matching(lambda item: False, 5) == []


class TestFairness:
    def test_ten_to_one_offered_load_served_fairly(self):
        # Tentpole acceptance: two tenants, 10:1 offered load.  While
        # both are backlogged the served mix must be ~1:1, not 10:1.
        drr = DeficitRoundRobin()
        fill(drr, "heavy", 100)
        fill(drr, "light", 10)
        order = drain(drr)
        window = order[:20]  # both tenants backlogged throughout
        served = {
            "heavy": sum(1 for t, _ in window if t == "heavy"),
            "light": sum(1 for t, _ in window if t == "light"),
        }
        ratio = served["heavy"] / served["light"]
        assert 0.8 <= ratio <= 1.25, served
        assert jain(served.values()) >= 0.9
        # Nothing is lost: every queued item is eventually served.
        assert len(order) == 110

    def test_fifo_baseline_would_fail_the_same_gate(self):
        # Sanity check on the gate itself: the old global-FIFO order
        # (all of heavy first) scores far below the 0.9 Jain bar.
        window = ["heavy"] * 20
        served = [window.count("heavy"), window.count("light")]
        assert jain(served) < 0.9
