"""Tests for the API reference generator (and doc hygiene)."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))

from gen_api_docs import generate, iter_modules, main  # noqa: E402


class TestGenerator:
    @pytest.fixture(scope="class")
    def text(self):
        return generate()

    def test_covers_all_subpackages(self, text):
        for package in (
            "repro.rm.nanowire",
            "repro.dwlogic.multiplier",
            "repro.core.task",
            "repro.baselines.coruscant",
            "repro.workloads.polybench",
            "repro.frontend.compiler",
            "repro.dram.controller",
            "repro.analysis.area",
        ):
            assert f"## `{package}`" in text, package

    def test_key_api_items_present(self, text):
        for item in (
            "class PimTask",
            "class RMProcessor",
            "class RMBus",
            "def create_pim_task",
            "def polybench_workload",
            "class StreamPIMDevice",
        ):
            assert item in text, item

    def test_summaries_extracted(self, text):
        assert "Fig. 16" in text  # the task module docstring

    def test_writes_output(self, tmp_path, capsys):
        output = tmp_path / "api.md"
        assert main(str(output)) == 0
        assert output.exists()
        assert "# API reference" in output.read_text()

    def test_module_iteration_includes_root(self):
        names = [module.__name__ for module in iter_modules()]
        assert "repro" in names
        assert "repro.core.device" in names


class TestDocHygiene:
    def test_checked_in_reference_up_to_date_enough(self):
        """The committed docs/api.md covers the current module set."""
        committed = Path("docs/api.md")
        if not committed.exists():
            pytest.skip("docs/api.md not generated")
        text = committed.read_text()
        fresh = generate()
        committed_modules = {
            line for line in text.splitlines() if line.startswith("## ")
        }
        fresh_modules = {
            line for line in fresh.splitlines() if line.startswith("## ")
        }
        missing = fresh_modules - committed_modules
        assert not missing, (
            f"regenerate docs/api.md (missing {sorted(missing)[:3]}...)"
        )

    def test_public_api_docstring_coverage(self):
        """Every public class/function in the package is documented."""
        import inspect

        undocumented = []
        for module in iter_modules():
            names = getattr(module, "__all__", None)
            if names is None:
                continue
            for name in names:
                obj = getattr(module, name, None)
                if obj is None or not (
                    inspect.isclass(obj) or inspect.isfunction(obj)
                ):
                    continue
                if not inspect.getdoc(obj):
                    undocumented.append(f"{module.__name__}.{name}")
        assert not undocumented, undocumented
