"""Tests for the expression frontend (the section-VI compiler layer)."""

import numpy as np
import pytest

from repro.core.device import StreamPIMConfig, StreamPIMDevice
from repro.frontend import (
    Matrix,
    Program,
    Scalar,
    Vector,
    compile_program,
)
from repro.frontend.expr import Add, MatMul, Scale, Transpose
from repro.workloads.generator import random_matrix


@pytest.fixture
def device(small_geometry, small_bus_config):
    return StreamPIMDevice(
        StreamPIMConfig(geometry=small_geometry, bus=small_bus_config)
    )


class TestExpressions:
    def test_shapes_infer_through_matmul(self):
        A = Matrix("A", shape=(4, 6))
        B = Matrix("B", shape=(6, 3))
        assert (A @ B).shape == (4, 3)

    def test_matvec_shape(self):
        A = Matrix("A", shape=(4, 6))
        x = Vector("x", length=6)
        assert (A @ x).shape == (1, 4)

    def test_transposed_matvec_shape(self):
        A = Matrix("A", shape=(4, 6))
        z = Vector("z", length=4)
        assert (A.T @ z).shape == (1, 6)

    def test_incompatible_matmul_rejected(self):
        with pytest.raises(ValueError):
            Matrix("A", shape=(4, 6)) @ Matrix("B", shape=(5, 3))

    def test_incompatible_add_rejected(self):
        with pytest.raises(ValueError):
            Matrix("A", shape=(4, 6)) + Matrix("B", shape=(4, 5))

    def test_scaling_by_int_makes_literal(self):
        expr = 3 * Matrix("A", shape=(2, 2))
        assert isinstance(expr, Scale)
        assert expr.scalar.value == 3

    def test_scaling_by_float_rejected(self):
        with pytest.raises(TypeError):
            1.5 * Matrix("A", shape=(2, 2))

    def test_double_transpose_rejected(self):
        A = Matrix("A", shape=(2, 3))
        with pytest.raises(ValueError):
            A.T.T

    def test_vector_is_single_row(self):
        v = Vector("v", np.array([1, 2, 3]))
        assert v.shape == (1, 3)
        assert v.is_vector

    def test_matrix_needs_values_or_shape(self):
        with pytest.raises(ValueError):
            Matrix("A")

    def test_add_non_expression_rejected(self):
        with pytest.raises(TypeError):
            Matrix("A", shape=(2, 2)) + 5


class TestCompiler:
    def test_gemm_formula(self, device, rng):
        a = random_matrix(5, 4, rng)
        b = random_matrix(4, 3, rng)
        c = random_matrix(5, 3, rng)
        A, B, C = Matrix("A", a), Matrix("B", b), Matrix("C", c)
        alpha, beta = Scalar("alpha", 3), Scalar("beta", 2)
        program = Program()
        program.assign("G", alpha * (A @ B) + beta * C)
        task = compile_program(program, device)
        report = task.run()
        assert np.array_equal(report.results["G"], 3 * (a @ b) + 2 * c)

    def test_atax_formula(self, device, rng):
        a = random_matrix(4, 5, rng)
        x = random_matrix(1, 5, rng)[0]
        A = Matrix("A", a)
        program = Program()
        program.assign("tmp", A @ Vector("x", x))
        # Feed the result of one assignment into the next via a fresh
        # reference by reusing the expression object.
        program.assign("y", A.T @ (A @ Vector("x2", x)))
        task = compile_program(program, device)
        report = task.run()
        assert np.array_equal(report.results["tmp"][0], a @ x)
        assert np.array_equal(report.results["y"][0], a.T @ (a @ x))

    def test_shared_leaf_registered_once(self, device, rng):
        a = random_matrix(3, 3, rng)
        A = Matrix("A", a)
        program = Program()
        program.assign("S", A + A)
        task = compile_program(program, device)
        report = task.run()
        assert np.array_equal(report.results["S"], a + a)

    def test_plain_copy_assignment(self, device, rng):
        a = random_matrix(3, 4, rng)
        program = Program()
        program.assign("B", Matrix("A", a))
        report = compile_program(program, device).run()
        assert np.array_equal(report.results["B"], a)

    def test_vector_ops_use_vector_taskops(self, device, rng):
        from repro.core.task import TaskOp

        x = Vector("x", random_matrix(1, 6, rng)[0])
        y = Vector("y", random_matrix(1, 6, rng)[0])
        program = Program()
        program.assign("z", x + y)
        task = compile_program(program, device)
        assert task._operations[-1].op is TaskOp.VEC_ADD

    def test_duplicate_assignment_rejected(self):
        program = Program()
        program.assign("A2", Matrix("A", shape=(2, 2)))
        with pytest.raises(ValueError):
            program.assign("A2", Matrix("B", shape=(2, 2)))

    def test_duplicate_operand_name_rejected(self, device):
        program = Program()
        first = Matrix("A", shape=(2, 2))
        second = Matrix("A", shape=(2, 2))  # same name, different object
        program.assign("S", first + second)
        with pytest.raises(ValueError):
            compile_program(program, device)

    def test_scalar_redefinition_rejected(self, device):
        program = Program()
        program.assign(
            "S",
            Scalar("k", 2) * Matrix("A", shape=(2, 2))
            + Scalar("k", 3) * Matrix("B", shape=(2, 2)),
        )
        with pytest.raises(ValueError):
            compile_program(program, device)

    def test_bare_transpose_rejected(self):
        program = Program()
        with pytest.raises(NotImplementedError):
            program.assign("At", Matrix("A", shape=(2, 3)).T)

    def test_transpose_of_matrix_product_rejected(self, device):
        program = Program()
        program.assign(
            "G",
            Matrix("A", shape=(3, 3)).T @ Matrix("B", shape=(3, 3)),
        )
        with pytest.raises(NotImplementedError):
            compile_program(program, device)

    def test_empty_program_rejected(self, device):
        with pytest.raises(ValueError):
            compile_program(Program(), device)

    def test_timing_only_shapes(self, device):
        program = Program()
        program.assign(
            "C", Matrix("A", shape=(8, 8)) @ Matrix("B", shape=(8, 8))
        )
        report = compile_program(program, device).run(functional=False)
        assert report.time_ns > 0
        assert report.counts.pim_vpcs == 64
