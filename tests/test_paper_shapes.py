"""Integration tests: the paper's headline result shapes must hold.

These run the full evaluation pipeline at paper-scale dimensions (the
analytic execution mode makes this feasible) and assert the qualitative
conclusions of every evaluation figure: who wins, by roughly what factor,
and where behaviour saturates.  Exact factors are checked against the
paper's numbers with generous tolerances — the substrate is a simulator,
not the authors' testbed, so the *shape* is the contract.
"""

import pytest

from repro.analysis.endtoend import end_to_end_speedup
from repro.baselines import default_platforms
from repro.baselines.stpim import StreamPIMPlatform
from repro.core.device import StreamPIMConfig
from repro.core.rmbus import RMBusConfig
from repro.core.scheduler import SchedulerPolicy
from repro.rm.address import DeviceGeometry
from repro.workloads import DNN_WORKLOADS, POLYBENCH

WORKLOADS = list(POLYBENCH)


@pytest.fixture(scope="module")
def results():
    """All platforms x all PolyBench workloads at paper dimensions."""
    platforms = default_platforms()
    return {
        name: {w: platform.run(POLYBENCH[w]) for w in WORKLOADS}
        for name, platform in platforms.items()
    }


def _avg_speedup(results, platform, baseline="CPU-RM"):
    ratios = [
        results[baseline][w].time_ns / results[platform][w].time_ns
        for w in WORKLOADS
    ]
    return sum(ratios) / len(ratios)


class TestFig17OverallPerformance:
    def test_platform_ordering(self, results):
        """StPIM > CORUSCANT > StPIM-e > FELIX > ELP2IM > CPU-DRAM."""
        order = [
            _avg_speedup(results, p)
            for p in ("CPU-DRAM", "ELP2IM", "FELIX", "CORUSCANT", "StPIM")
        ]
        assert order == sorted(order)

    def test_stpim_near_39x(self, results):
        assert _avg_speedup(results, "StPIM") == pytest.approx(39.1, rel=0.25)

    def test_stpim_e_near_12_7x(self, results):
        assert _avg_speedup(results, "StPIM-e") == pytest.approx(
            12.7, rel=0.25
        )

    def test_coruscant_near_15_6x(self, results):
        assert _avg_speedup(results, "CORUSCANT") == pytest.approx(
            15.6, rel=0.25
        )

    def test_elp2im_near_3_6x(self, results):
        assert _avg_speedup(results, "ELP2IM") == pytest.approx(3.6, rel=0.25)

    def test_felix_near_8_7x(self, results):
        assert _avg_speedup(results, "FELIX") == pytest.approx(8.7, rel=0.25)

    def test_cpu_dram_near_1_5x(self, results):
        assert _avg_speedup(results, "CPU-DRAM") == pytest.approx(
            1.5, rel=0.15
        )

    def test_stpim_beats_stpim_e_by_about_3x(self, results):
        ratio = _avg_speedup(results, "StPIM") / _avg_speedup(
            results, "StPIM-e"
        )
        assert ratio == pytest.approx(3.1, rel=0.25)

    def test_stpim_beats_coruscant_on_every_workload(self, results):
        for w in WORKLOADS:
            assert (
                results["StPIM"][w].time_ns < results["CORUSCANT"][w].time_ns
            ), w


class TestFig18Energy:
    def _energy_ratio(self, results, platform):
        ratios = [
            results[platform][w].energy.total_pj
            / results["StPIM"][w].energy.total_pj
            for w in WORKLOADS
        ]
        return sum(ratios) / len(ratios)

    def test_cpu_dram_near_58x(self, results):
        assert self._energy_ratio(results, "CPU-DRAM") == pytest.approx(
            58.4, rel=0.25
        )

    def test_cpu_rm_close_to_cpu_dram(self, results):
        """Fig. 18: the two CPU platforms consume similar energy."""
        rm = self._energy_ratio(results, "CPU-RM")
        dram = self._energy_ratio(results, "CPU-DRAM")
        assert abs(rm - dram) / dram < 0.15

    def test_elp2im_near_11_7x(self, results):
        assert self._energy_ratio(results, "ELP2IM") == pytest.approx(
            11.7, rel=0.3
        )

    def test_felix_near_3_5x(self, results):
        assert self._energy_ratio(results, "FELIX") == pytest.approx(
            3.5, rel=0.3
        )

    def test_coruscant_near_2_8x(self, results):
        assert self._energy_ratio(results, "CORUSCANT") == pytest.approx(
            2.8, rel=0.35
        )

    def test_stpim_e_worse_than_stpim(self, results):
        assert self._energy_ratio(results, "StPIM-e") == pytest.approx(
            1.6, rel=0.5
        )

    def test_stpim_uses_least_energy_everywhere(self, results):
        for platform in results:
            if platform == "StPIM":
                continue
            for w in WORKLOADS:
                assert (
                    results[platform][w].energy.total_pj
                    > results["StPIM"][w].energy.total_pj
                ), (platform, w)


class TestFig19And20Breakdowns:
    def test_coruscant_transfer_dominated_time(self, results):
        """Fig. 19: CORUSCANT spends most time on data transfer."""
        shares = [
            results["CORUSCANT"][w].time_breakdown.transfer_ns
            / results["CORUSCANT"][w].time_breakdown.total_ns
            for w in WORKLOADS
        ]
        assert sum(shares) / len(shares) > 0.6

    def test_stpim_hides_transfer_time(self, results):
        """Fig. 19: StPIM's exclusive transfer time is below ~1%."""
        for w in WORKLOADS:
            b = results["StPIM"][w].time_breakdown
            assert b.transfer_ns / b.total_ns < 0.02, w

    def test_coruscant_transfer_dominated_energy(self, results):
        """Fig. 20: ~86% of CORUSCANT's energy is data transfer."""
        shares = [
            results["CORUSCANT"][w].energy.transfer_pj
            / results["CORUSCANT"][w].energy.total_pj
            for w in WORKLOADS
        ]
        assert sum(shares) / len(shares) == pytest.approx(0.86, abs=0.08)

    def test_stpim_transfer_energy_modest(self, results):
        """Fig. 20: StPIM's transfer energy drops to roughly 30%."""
        shares = [
            results["StPIM"][w].energy.transfer_pj
            / results["StPIM"][w].energy.total_pj
            for w in WORKLOADS
        ]
        assert sum(shares) / len(shares) < 0.55


class TestFig21SubarrayScaling:
    @pytest.fixture(scope="class")
    def scaling(self):
        times = {}
        for count in (128, 256, 512, 1024):
            geometry = DeviceGeometry().with_pim_subarrays(count)
            platform = StreamPIMPlatform(StreamPIMConfig(geometry=geometry))
            times[count] = {
                w: platform.run(POLYBENCH[w]).time_ns for w in WORKLOADS
            }
        return times

    def _gain(self, scaling, count):
        return sum(
            scaling[128][w] / scaling[count][w] for w in WORKLOADS
        ) / len(WORKLOADS)

    def test_monotone_up_to_512(self, scaling):
        assert 1.0 < self._gain(scaling, 256) < self._gain(scaling, 512)

    def test_256_gain_near_paper(self, scaling):
        assert self._gain(scaling, 256) == pytest.approx(1.74, rel=0.2)

    def test_512_gain_near_paper(self, scaling):
        assert self._gain(scaling, 512) == pytest.approx(3.0, rel=0.3)

    def test_saturates_at_1024(self, scaling):
        """Paper: 512 -> 1024 adds little (3.0x -> 3.2x)."""
        gain_512 = self._gain(scaling, 512)
        gain_1024 = self._gain(scaling, 1024)
        assert gain_1024 < 1.35 * gain_512


class TestFig22Optimisations:
    @pytest.fixture(scope="class")
    def by_policy(self):
        times = {}
        for policy in SchedulerPolicy:
            platform = StreamPIMPlatform(
                StreamPIMConfig(scheduler_policy=policy)
            )
            times[policy] = {
                w: platform.run(POLYBENCH[w]).time_ns for w in WORKLOADS
            }
        return times

    def _gain(self, by_policy, policy):
        base = by_policy[SchedulerPolicy.BASE]
        return sum(
            base[w] / by_policy[policy][w] for w in WORKLOADS
        ) / len(WORKLOADS)

    def test_distribute_order_of_magnitude(self, by_policy):
        """Paper: distribute ~7.1x over base."""
        gain = self._gain(by_policy, SchedulerPolicy.DISTRIBUTE)
        assert 4.0 < gain < 25.0

    def test_unblock_near_200x(self, by_policy):
        gain = self._gain(by_policy, SchedulerPolicy.UNBLOCK)
        assert gain == pytest.approx(199.7, rel=0.3)

    def test_strict_ordering(self, by_policy):
        d = self._gain(by_policy, SchedulerPolicy.DISTRIBUTE)
        u = self._gain(by_policy, SchedulerPolicy.UNBLOCK)
        assert 1.0 < d < u


class TestFig23EndToEnd:
    @pytest.fixture(scope="class")
    def dnn(self):
        platforms = default_platforms()
        cpu = platforms["CPU-DRAM"]
        out = {}
        for wname, spec in DNN_WORKLOADS.items():
            cpu_stats = cpu.run(spec)
            out[wname] = {
                p: end_to_end_speedup(
                    platforms[p], cpu, spec, cpu_stats=cpu_stats
                )
                for p in ("StPIM", "CORUSCANT", "StPIM-e", "FELIX", "ELP2IM")
            }
        return out

    def test_mlp_much_faster_than_bert(self, dnn):
        """Paper: MLP 54.77x vs BERT 4.49x — nonlinear layers cap BERT."""
        assert (
            dnn["mlp"]["StPIM"].speedup_vs_cpu
            > 3 * dnn["bert"]["StPIM"].speedup_vs_cpu
        )

    def test_bert_speedup_near_paper(self, dnn):
        assert dnn["bert"]["StPIM"].speedup_vs_cpu == pytest.approx(
            4.49, rel=0.25
        )

    def test_mlp_stpim_beats_coruscant_by_about_2x(self, dnn):
        ratio = (
            dnn["mlp"]["StPIM"].speedup_vs_cpu
            / dnn["mlp"]["CORUSCANT"].speedup_vs_cpu
        )
        assert ratio == pytest.approx(1.86, rel=0.35)

    def test_stpim_wins_on_both_dnns(self, dnn):
        for wname in ("mlp", "bert"):
            best = max(
                dnn[wname].values(), key=lambda r: r.speedup_vs_cpu
            )
            assert best.platform == "StPIM", wname


class TestTableVSegmentSize:
    @pytest.fixture(scope="class")
    def by_segment(self):
        out = {}
        for segment in (64, 256, 512, 1024):
            platform = StreamPIMPlatform(
                StreamPIMConfig(bus=RMBusConfig(segment_domains=segment))
            )
            stats = [platform.run(POLYBENCH[w]) for w in WORKLOADS]
            out[segment] = (
                sum(s.time_ns for s in stats),
                sum(s.energy.total_pj for s in stats),
            )
        return out

    def test_time_overhead_small_and_monotone(self, by_segment):
        """Table V: shrinking segments costs at most a few % time."""
        t1024 = by_segment[1024][0]
        overheads = {
            seg: by_segment[seg][0] / t1024 - 1.0 for seg in (64, 256, 512)
        }
        assert 0.0 <= overheads[512] <= overheads[256] <= overheads[64]
        assert overheads[64] < 0.05

    def test_energy_nearly_flat(self, by_segment):
        e1024 = by_segment[1024][1]
        for seg in (64, 256, 512):
            assert abs(by_segment[seg][1] / e1024 - 1.0) < 0.01


class TestTableIVCounts:
    def test_stpim_run_reports_match_closed_form(self):
        platform = StreamPIMPlatform()
        for name in ("gemm", "atax", "mvt"):
            spec = POLYBENCH[name]
            stats = platform.run(spec)
            pim, move = spec.vpc_counts()
            assert stats.counters["pim_vpcs"] == pim
            assert stats.counters["move_vpcs"] == move
