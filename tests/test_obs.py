"""Observability layer: metrics, spans, Chrome export, engine parity."""

import json
import math

import pytest

from repro.cli import main
from repro.core.device import StreamPIMDevice
from repro.isa.columnar import ColumnarTrace
from repro.isa.trace import VPCTrace
from repro.isa.vpc import VPC
from repro.obs import (
    Collector,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_COLLECTOR,
    NULL_REGISTRY,
    Span,
    chrome_trace_dict,
    exclusive_breakdown,
    spans_to_intervals,
    track_utilisation,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.resilience import (
    FaultCampaignConfig,
    RecoveryPolicy,
    run_with_faults,
)
from repro.workloads.polybench import polybench_workload

_BREAKDOWN_FIELDS = (
    "read_ns",
    "write_ns",
    "shift_ns",
    "process_ns",
    "overlapped_ns",
    "recovery_ns",
)


def _gemm_trace(scale=0.01):
    task = polybench_workload("gemm", scale=scale).build_task()
    return task, task.to_trace()


def _observed_run(trace, engine, config=None, functional=True):
    device = StreamPIMDevice(config) if config else StreamPIMDevice()
    collector = Collector()
    device.observe(collector)
    if engine == "vector":
        trace = ColumnarTrace.from_trace(trace)
    stats = device.execute_trace(
        trace, workload="obs", functional=functional, engine=engine
    )
    return stats, collector


def _engine_comparable(snapshot):
    """Drop rmbus.* model-query metrics (documented as engine-local)."""
    return {
        key: value
        for key, value in snapshot.items()
        if not key.startswith("rmbus.")
    }


class TestMetrics:
    def test_counter_accumulates(self):
        counter = Counter("n")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("n").inc(-1)

    def test_gauge_tracks_extrema(self):
        gauge = Gauge("g")
        for value in (3.0, -1.0, 7.0):
            gauge.set(value)
        assert gauge.value == 7.0
        assert gauge.min == -1.0
        assert gauge.max == 7.0

    def test_histogram_order_free_sum(self):
        hist = Histogram("h")
        values = [1e16, 1.0, -1e16, 1.0]
        hist.observe_many(values)
        assert hist.sum == math.fsum(values)
        assert hist.count == 4

    def test_registry_memoises(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")
        assert len(registry) == 3

    def test_registry_rejects_kind_collisions(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_snapshot_is_json_serialisable(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(2)
        registry.gauge("b").set(1.5)
        registry.histogram("c").observe(3.0)
        text = json.dumps(registry.snapshot())
        assert json.loads(text)["a"] == 2

    def test_null_registry_is_inert(self):
        NULL_REGISTRY.counter("a").inc(10)
        NULL_REGISTRY.gauge("b").set(1.0)
        NULL_REGISTRY.histogram("c").observe(2.0)
        assert NULL_REGISTRY.snapshot() == {}


class TestSpans:
    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            Span("x", "pim", 0.0, -1.0, "t")

    def test_end_ns(self):
        assert Span("x", "pim", 2.0, 3.0, "t").end_ns == 5.0

    def test_collector_emit_and_extend(self):
        collector = Collector()
        assert collector.enabled
        collector.emit("a", "pim", 0.0, 1.0, "t0")
        collector.extend([Span("b", "rw", 1.0, 2.0, "t1")])
        assert [span.name for span in collector.spans] == ["a", "b"]

    def test_null_collector_is_inert_singleton(self):
        assert not NULL_COLLECTOR.enabled
        NULL_COLLECTOR.emit("a", "pim", 0.0, 1.0, "t0")
        NULL_COLLECTOR.extend([Span("b", "rw", 1.0, 2.0, "t1")])
        NULL_COLLECTOR.counter("n").inc()

    def test_spans_to_intervals_lanes(self):
        spans = [Span("a", "pim", 0.0, 2.0, "sub-0")]
        intervals = spans_to_intervals(spans)
        assert intervals[0].lane == "sub-0"
        assert intervals[0].end_ns == 2.0

    def test_track_utilisation_ratio(self):
        spans = [
            Span("a", "pim", 0.0, 4.0, "t0"),
            Span("b", "pim", 6.0, 2.0, "t0"),
            Span("c", "rw", 0.0, 10.0, "bus"),
        ]
        rows = {row[0]: row for row in track_utilisation(spans, 10.0)}
        assert rows["t0"][1] == 6.0
        assert rows["t0"][2] == 2
        assert rows["t0"][3] == pytest.approx(0.6)
        assert rows["bus"][3] == pytest.approx(1.0)

    def test_exclusive_breakdown_includes_recovery(self):
        spans = [
            Span("MUL", "pim", 0.0, 10.0, "sub-0"),
            Span("bus.TRAN", "rw", 5.0, 10.0, "bus"),
            Span("retry", "recovery", 0.0, 3.0, "recovery"),
        ]
        swept = exclusive_breakdown(spans)
        # 0-5 pim only, 5-10 overlapped, 10-15 rw only (0.3/0.7 split).
        assert swept.process_ns == pytest.approx(5.0)
        assert swept.overlapped_ns == pytest.approx(5.0)
        assert swept.read_ns == pytest.approx(1.5)
        assert swept.write_ns == pytest.approx(3.5)
        assert swept.recovery_ns == pytest.approx(3.0)


class TestEngineParity:
    """Scalar and vector engines emit identical observation streams."""

    def test_span_streams_and_metrics_identical(self):
        _, trace = _gemm_trace()
        scalar_stats, scalar_obs = _observed_run(trace, "scalar")
        vector_stats, vector_obs = _observed_run(trace, "vector")
        assert scalar_obs.spans == vector_obs.spans
        assert len(scalar_obs.spans) > 0
        assert _engine_comparable(
            scalar_obs.registry.snapshot()
        ) == _engine_comparable(vector_obs.registry.snapshot())
        assert scalar_stats.time_ns == vector_stats.time_ns

    def test_span_count_matches_metric(self):
        _, trace = _gemm_trace()
        _, obs = _observed_run(trace, "vector")
        snapshot = obs.registry.snapshot()
        assert snapshot["trace.spans"] == len(obs.spans)
        assert snapshot["trace.vpcs"] == len(trace)

    def test_local_tran_span_is_named_pim(self):
        # Regression: in-subarray TRANs produced unnamed spans.
        trace = VPCTrace([VPC.tran(0, 64, 8), VPC.add(0, 64, 128, 8)])
        _, obs = _observed_run(trace, "scalar")
        tran = [span for span in obs.spans if span.name == "TRAN"]
        assert len(tran) == 1
        assert tran[0].category == "pim"

    def test_disabled_run_matches_observed_run(self):
        _, trace = _gemm_trace()
        observed_stats, _ = _observed_run(trace, "vector")
        plain_stats = StreamPIMDevice().execute_trace(
            ColumnarTrace.from_trace(trace),
            workload="obs",
            engine="vector",
        )
        for field in _BREAKDOWN_FIELDS:
            assert getattr(plain_stats.time_breakdown, field) == getattr(
                observed_stats.time_breakdown, field
            )
        assert plain_stats.time_ns == observed_stats.time_ns
        assert plain_stats.energy.total_pj == observed_stats.energy.total_pj

    @pytest.mark.parametrize("engine", ["scalar", "vector"])
    def test_breakdown_reconciles_exactly(self, engine):
        _, trace = _gemm_trace()
        stats, obs = _observed_run(trace, engine)
        swept = exclusive_breakdown(obs.spans)
        for field in _BREAKDOWN_FIELDS:
            assert getattr(swept, field) == pytest.approx(
                getattr(stats.time_breakdown, field), rel=1e-12, abs=1e-9
            ), field

    def test_empty_trace_observed(self):
        stats, obs = _observed_run(VPCTrace([]), "vector")
        assert obs.spans == []
        assert stats.time_ns == 0.0


class TestRecoverySpans:
    def test_recovery_span_sum_equals_charged_ns(self):
        task, trace = _gemm_trace(scale=0.02)
        collector = Collector()
        task.device.observe(collector)
        from repro.rm.faults import ShiftFaultConfig

        config = FaultCampaignConfig(
            faults=ShiftFaultConfig(p_per_step=2e-6),
            policy=RecoveryPolicy.RETRY,
        )
        stats, report = run_with_faults(
            task.device, trace, config=config, seed=0, workload="gemm"
        )
        assert report.retries > 0
        recovery = [
            span for span in collector.spans if span.category == "recovery"
        ]
        assert len(recovery) == report.retries
        total = 0.0
        for span in recovery:
            assert span.ts_ns == total  # running-offset layout
            total += span.dur_ns
        assert total == report.recovery_ns
        snapshot = collector.registry.snapshot()
        assert snapshot["faults.retries"] == report.retries
        assert snapshot["faults.injected"] == report.injected


class TestSchedulerSpans:
    def test_compose_emits_sched_lanes(self):
        from repro.core.scheduler import Round
        from repro.sim.stats import EnergyBreakdown, TimeBreakdown

        device = StreamPIMDevice()
        collector = Collector()
        device.observe(collector)
        rounds = [
            Round(
                label=f"r{i}",
                prep_words=256,
                prep_targets=2,
                compute_ns=100.0,
                compute_time=TimeBreakdown(process_ns=100.0),
                compute_energy=EnergyBreakdown(compute_pj=1.0),
            )
            for i in range(3)
        ]
        result = device.execute_rounds(rounds)
        sched = [
            span for span in collector.spans if span.category == "sched"
        ]
        assert sched
        assert {span.track for span in sched} == {
            "sched.prep",
            "sched.compute",
        }
        snapshot = collector.registry.snapshot()
        assert snapshot["sched.rounds"] == 3
        assert snapshot["sched.total_ns"]["value"] == result.total_ns


class TestChromeTrace:
    def _payload(self):
        _, trace = _gemm_trace()
        stats, obs = _observed_run(trace, "vector")
        return chrome_trace_dict(
            obs.spans, metrics=obs.registry.snapshot()
        )

    def test_payload_schema(self):
        payload = self._payload()
        validate_chrome_trace(payload)
        assert payload["displayTimeUnit"] == "ns"
        slices = [
            event
            for event in payload["traceEvents"]
            if event["ph"] == "X"
        ]
        assert slices
        for event in slices:
            assert event["dur"] >= 0
            assert event["args"]["dur_ns"] >= 0

    def test_ts_monotone_per_track(self):
        payload = self._payload()
        clocks = {}
        for event in payload["traceEvents"]:
            if event["ph"] != "X":
                continue
            key = (event["pid"], event["tid"])
            assert event["ts"] >= clocks.get(key, 0.0)
            clocks[key] = event["ts"]

    def test_validation_rejects_ts_rewind(self):
        payload = chrome_trace_dict(
            [
                Span("a", "pim", 10.0, 1.0, "t"),
                Span("b", "pim", 0.0, 1.0, "t"),
            ]
        )
        # Sorting repairs the order, so corrupt it after the fact.
        events = payload["traceEvents"]
        slices = [event for event in events if event["ph"] == "X"]
        slices[0]["ts"], slices[1]["ts"] = slices[1]["ts"], slices[0]["ts"]
        with pytest.raises(ValueError, match="rewinds"):
            validate_chrome_trace(payload)

    def test_validation_rejects_unknown_phase(self):
        payload = chrome_trace_dict([Span("a", "pim", 0.0, 1.0, "t")])
        payload["traceEvents"][-1]["ph"] = "Q"
        with pytest.raises(ValueError, match="phase"):
            validate_chrome_trace(payload)

    def test_write_roundtrip(self, tmp_path):
        _, trace = _gemm_trace()
        _, obs = _observed_run(trace, "vector")
        path = tmp_path / "trace.json"
        write_chrome_trace(
            str(path), obs.spans, metrics=obs.registry.snapshot()
        )
        payload = json.loads(path.read_text())
        validate_chrome_trace(payload)
        assert payload["otherData"]["metrics"]["trace.spans"] == len(
            obs.spans
        )


class TestProfileCLI:
    def test_profile_writes_valid_trace(self, tmp_path, capsys):
        target = tmp_path / "trace.json"
        assert main(
            [
                "profile",
                "gemm",
                "--scale",
                "0.01",
                "-o",
                str(target),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "breakdown reconciliation: OK" in out
        validate_chrome_trace(json.loads(target.read_text()))

    def test_profile_scalar_engine(self, tmp_path, capsys):
        target = tmp_path / "trace.json"
        argv = [
            "profile", "gemm", "--scale", "0.01",
            "--engine", "scalar", "-o", str(target),
        ]
        assert main(argv) == 0
        assert "engine scalar" in capsys.readouterr().out
        assert target.exists()

    def test_replay_profile_flag(self, tmp_path, capsys):
        trace_path = tmp_path / "t.trace"
        target = tmp_path / "trace.json"
        assert main(
            ["trace", "gemm", "--scale", "0.01", "-o", str(trace_path)]
        ) == 0
        capsys.readouterr()
        assert main(
            [
                "replay",
                str(trace_path),
                "--engine",
                "vector",
                "--profile",
                str(target),
            ]
        ) == 0
        assert "breakdown reconciliation: OK" in capsys.readouterr().out
        validate_chrome_trace(json.loads(target.read_text()))

    def test_faults_run_profile_flag(self, tmp_path, capsys):
        target = tmp_path / "trace.json"
        assert main(
            [
                "faults", "run", "gemm", "--scale", "0.01",
                "--p-per-step", "2e-6",
                "--profile", str(target),
            ]
        ) == 0
        capsys.readouterr()
        payload = json.loads(target.read_text())
        validate_chrome_trace(payload)


class TestHistogramBounds:
    """Review regression: the histogram used to keep every sample
    forever and re-sort them all on each percentile call."""

    def test_reservoir_bounds_memory(self):
        hist = Histogram("h", reservoir_size=64)
        hist.observe_many(float(i) for i in range(10_000))
        assert hist.count == 10_000
        assert len(hist._samples) == 64
        assert hist.sum == math.fsum(float(i) for i in range(10_000))
        assert hist.min == 0.0 and hist.max == 9999.0
        p99 = hist.percentile(99.0)
        assert 0.0 <= p99 <= 9999.0

    def test_percentile_exact_below_capacity(self):
        hist = Histogram("h")
        hist.observe_many([5.0, 1.0, 3.0, 2.0, 4.0])
        assert hist.percentile(0.0) == 1.0
        assert hist.percentile(50.0) == 3.0
        assert hist.percentile(100.0) == 5.0

    def test_reservoir_is_deterministic_per_name(self):
        first = Histogram("same", reservoir_size=32)
        second = Histogram("same", reservoir_size=32)
        values = [float((i * 37) % 101) for i in range(1000)]
        first.observe_many(values)
        second.observe_many(values)
        assert first._samples == second._samples
        assert first.percentile(99.0) == second.percentile(99.0)
