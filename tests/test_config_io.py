"""Tests for configuration serialisation (experiment provenance)."""

import io

import pytest

from repro.core.config_io import (
    config_from_dict,
    config_to_dict,
    load_config,
    save_config,
)
from repro.core.device import StreamPIMConfig, StreamPIMDevice
from repro.core.processor import RMProcessorConfig
from repro.core.rmbus import RMBusConfig
from repro.core.scheduler import SchedulerPolicy
from repro.rm.address import DeviceGeometry
from repro.workloads import polybench_workload


class TestRoundtrip:
    def test_default_config(self):
        original = StreamPIMConfig()
        restored = config_from_dict(config_to_dict(original))
        assert restored == original

    def test_customised_config(self):
        original = StreamPIMConfig(
            geometry=DeviceGeometry().with_pim_subarrays(256),
            processor=RMProcessorConfig(duplicators=4),
            bus=RMBusConfig(segment_domains=256),
            scheduler_policy=SchedulerPolicy.DISTRIBUTE,
            vpc_decode_ns=25.0,
        )
        restored = config_from_dict(config_to_dict(original))
        assert restored == original

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "config.json"
        original = StreamPIMConfig(scheduler_policy=SchedulerPolicy.BASE)
        save_config(original, path)
        assert load_config(path) == original

    def test_stream_roundtrip(self):
        buffer = io.StringIO()
        save_config(StreamPIMConfig(), buffer)
        buffer.seek(0)
        assert load_config(buffer) == StreamPIMConfig()

    def test_restored_config_simulates_identically(self):
        spec = polybench_workload("atax", scale=0.05)
        original = StreamPIMConfig(
            processor=RMProcessorConfig(duplicators=4)
        )
        restored = config_from_dict(config_to_dict(original))
        from repro.baselines.stpim import StreamPIMPlatform

        a = StreamPIMPlatform(original).run(spec)
        b = StreamPIMPlatform(restored).run(spec)
        assert a.time_ns == b.time_ns
        assert a.energy.total_pj == b.energy.total_pj


class TestValidation:
    def test_version_checked(self):
        with pytest.raises(ValueError, match="version"):
            config_from_dict({"format_version": 99})

    def test_missing_fields_reported(self):
        with pytest.raises(ValueError, match="missing"):
            config_from_dict({"format_version": 1})
