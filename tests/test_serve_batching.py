"""Batch planner tests: grouping, linger, demux, crash semantics, and
the batched-vs-unbatched equivalence property.

The planner lives in the pure ``ServiceCore``, so the closing
hypothesis test drives a batched core (``max_batch=4``) and an
unbatched one (``max_batch=1``) through *identical* operation
sequences with a virtual clock and asserts the per-request response
envelopes are bit-identical (same JSON bytes) — batching is a pure
throughput optimisation, invisible in results.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.core import (
    CoreConfig,
    Dispatch,
    KillWorker,
    Respond,
    ServiceCore,
)
from repro.serve.protocol import ErrorCode, Request
from repro.serve.retry import RetryPolicy


def make_core(**overrides):
    defaults = dict(
        queue_limit=64,
        tenant_rate=10000.0,
        tenant_burst=10000.0,
        max_batch=3,
        retry=RetryPolicy(max_attempts=3, base_delay_s=0.05, jitter=0.0),
    )
    defaults.update(overrides)
    return ServiceCore(CoreConfig(**defaults))


def req(rid, workload="atax", tenant="t", deadline_ms=None):
    return Request(
        id=rid,
        method="run",
        params={"workload": workload},
        tenant=tenant,
        deadline_ms=deadline_ms,
    )


def responses(actions):
    return [a.response for a in actions if isinstance(a, Respond)]


def dispatches(actions):
    return [a for a in actions if isinstance(a, Dispatch)]


def batch_ids(dispatch):
    if dispatch.message["type"] == "batch":
        return [item["id"] for item in dispatch.message["items"]]
    return [dispatch.message["id"]]


class TestBatchAssembly:
    def test_queued_peers_share_one_dispatch(self):
        core = make_core()
        core.submit(req("r1"), 0.0, batch_key="k")
        core.submit(req("r2"), 0.0, batch_key="k")
        core.submit(req("r3"), 0.0, batch_key="k")
        (d,) = dispatches(core.register_worker("w0", 0.1))
        assert d.message["type"] == "batch"
        assert batch_ids(d) == ["r1", "r2", "r3"]
        # Each item carries its own envelope fields.
        for item in d.message["items"]:
            assert item["attempt"] == 1
            assert item["method"] == "run"
        assert core.inflight_count == 3
        assert core.batch_dispatches == 1
        assert core.batched_requests == 3

    def test_max_batch_caps_the_group(self):
        core = make_core(max_batch=2)
        for i in range(5):
            core.submit(req(f"r{i}"), 0.0, batch_key="k")
        (d,) = dispatches(core.register_worker("w0", 0.1))
        assert batch_ids(d) == ["r0", "r1"]
        assert dispatches(
            core.worker_result("w0", "r0", {"ok": True, "result": {}}, 0.2)
        ) == []
        (d2,) = dispatches(
            core.worker_result("w0", "r1", {"ok": True, "result": {}}, 0.2)
        )
        assert batch_ids(d2) == ["r2", "r3"]

    def test_distinct_keys_never_mix(self):
        core = make_core()
        core.submit(req("r1"), 0.0, batch_key="k1")
        core.submit(req("r2"), 0.0, batch_key="k2")
        (d,) = dispatches(core.register_worker("w0", 0.1))
        assert batch_ids(d) == ["r1"]

    def test_none_key_always_dispatches_alone(self):
        core = make_core()
        core.submit(req("r1"), 0.0, batch_key=None)
        core.submit(req("r2"), 0.0, batch_key=None)
        (d,) = dispatches(core.register_worker("w0", 0.1))
        assert d.message["type"] == "request"
        assert batch_ids(d) == ["r1"]

    def test_single_request_keeps_legacy_message_shape(self):
        # Compatibility contract: a batch of one is indistinguishable
        # from the pre-batching wire format.
        core = make_core()
        core.register_worker("w0", 0.0)
        (d,) = dispatches(core.submit(req("r1"), 0.0, batch_key="k"))
        assert d.message["type"] == "request"
        assert d.message["id"] == "r1"
        assert core.batch_dispatches == 0

    def test_batch_results_demux_per_request(self):
        core = make_core()
        for i in range(3):
            core.submit(req(f"r{i}"), 0.0, batch_key="k")
        core.register_worker("w0", 0.1)
        for i in range(3):
            actions = core.worker_result(
                "w0", f"r{i}", {"ok": True, "result": {"i": i}}, 0.2
            )
            (r,) = responses(actions)
            assert r.id == f"r{i}" and r.result == {"i": i}
        # Worker is idle again only after the whole batch resolved.
        assert core.is_quiescent()
        assert "w0" in core._idle

    def test_worker_busy_until_batch_fully_resolved(self):
        core = make_core()
        for i in range(2):
            core.submit(req(f"r{i}"), 0.0, batch_key="k")
        core.register_worker("w0", 0.1)
        core.worker_result("w0", "r0", {"ok": True, "result": {}}, 0.2)
        # One batch-mate still runs: new work must not be dispatched
        # to w0.
        assert dispatches(core.submit(req("r9"), 0.3)) == []


class TestBatchLinger:
    def test_partial_batch_waits_then_flushes(self):
        core = make_core(max_batch=4, batch_linger_s=0.1)
        core.register_worker("w0", 0.0)
        # One batchable request with an idle worker: held for peers.
        assert dispatches(core.submit(req("r1"), 0.0, batch_key="k")) == []
        assert dispatches(core.tick(0.05)) == []
        # A peer arrives inside the window: still partial, still young.
        assert dispatches(core.submit(req("r2"), 0.06, batch_key="k")) == []
        # The oldest member ages past the linger: flush as-is.
        (d,) = dispatches(core.tick(0.11))
        assert d.message["type"] == "batch"
        assert batch_ids(d) == ["r1", "r2"]

    def test_full_batch_skips_the_linger(self):
        core = make_core(max_batch=2, batch_linger_s=5.0)
        core.register_worker("w0", 0.0)
        core.submit(req("r1"), 0.0, batch_key="k")
        (d,) = dispatches(core.submit(req("r2"), 0.01, batch_key="k"))
        assert batch_ids(d) == ["r1", "r2"]

    def test_unbatchable_requests_never_linger(self):
        core = make_core(max_batch=4, batch_linger_s=5.0)
        core.register_worker("w0", 0.0)
        (d,) = dispatches(core.submit(req("r1"), 0.0, batch_key=None))
        assert d.message["id"] == "r1"

    def test_drain_flushes_lingering_work(self):
        core = make_core(max_batch=4, batch_linger_s=60.0)
        core.register_worker("w0", 0.0)
        core.submit(req("r1"), 0.0, batch_key="k")
        core.begin_drain(0.1)
        (d,) = dispatches(core.tick(0.2))
        assert batch_ids(d) == ["r1"]


class TestBatchFailureSemantics:
    def test_crash_redelivers_every_batched_request(self):
        core = make_core(breaker_failure_threshold=100)
        for i in range(3):
            core.submit(req(f"r{i}"), 0.0, batch_key="k")
        core.register_worker("w0", 0.1)
        assert core.worker_exit("w0", 0.2, reason="crash") == []
        assert core.unresolved_count == 3
        # All three mature from backoff and re-dispatch as one batch.
        core.register_worker("w1", 0.3)
        (d,) = dispatches(core.tick(0.5))
        assert sorted(batch_ids(d)) == ["r0", "r1", "r2"]
        assert all(
            item["attempt"] == 2 for item in d.message["items"]
        )

    def test_batch_crash_counts_one_breaker_failure_per_class(self):
        # A single worker death must not trip a class breaker N times
        # because N requests of that class shared the dispatch.
        core = make_core(breaker_failure_threshold=2)
        for i in range(3):
            core.submit(req(f"r{i}"), 0.0, batch_key="k")
        core.register_worker("w0", 0.1)
        core.worker_exit("w0", 0.2, reason="crash")
        # One failure recorded (threshold 2): class still admits.
        assert responses(core.submit(req("r9"), 0.3)) == []
        assert (
            core.breakers.breaker("run:atax").consecutive_failures == 1
        )

    def test_dead_letters_are_per_request(self):
        core = make_core(max_redeliveries=0, breaker_failure_threshold=100)
        for i in range(2):
            core.submit(req(f"r{i}"), 0.0, batch_key="k")
        core.register_worker("w0", 0.1)
        actions = core.worker_exit("w0", 0.2, reason="crash")
        got = {r.id: r.error.code for r in responses(actions)}
        assert got == {
            "r0": ErrorCode.DEAD_LETTER,
            "r1": ErrorCode.DEAD_LETTER,
        }

    def test_hang_kill_answers_overdue_keeps_batchmates(self):
        core = make_core(hang_grace_s=1.0)
        core.submit(req("r0", deadline_ms=1000), 0.0, batch_key="k")
        core.submit(req("r1", deadline_ms=60000), 0.0, batch_key="k")
        core.register_worker("w0", 0.1)
        actions = core.tick(2.5)  # r0 past deadline+grace
        kills = [a for a in actions if isinstance(a, KillWorker)]
        assert [k.worker_id for k in kills] == ["w0"]
        (r,) = responses(actions)
        assert r.id == "r0"
        assert r.error.code is ErrorCode.DEADLINE_EXCEEDED
        # r1 is still attributed to the doomed worker; its exit
        # redelivers r1 rather than losing it.
        assert core.worker_exit("w0", 2.6, reason="killed") == []
        assert core.unresolved_count == 1
        core.register_worker("w1", 2.7)
        (d,) = dispatches(core.tick(3.5))
        assert batch_ids(d) == ["r1"]


# ----------------------------------------------------------------------
# Tentpole acceptance: batched == unbatched, bit for bit
# ----------------------------------------------------------------------
class _Replay:
    """Drive one core through ops with deterministic fake workers.

    Workers compute ``result = f(request id)`` — a pure function — so
    two cores given the same submissions must emit byte-identical
    response envelopes regardless of how requests were grouped into
    dispatches.
    """

    def __init__(self, max_batch, linger, workers=2):
        self.core = make_core(
            max_batch=max_batch,
            batch_linger_s=linger,
            queue_limit=4096,
        )
        self.now = 0.0
        self.held = {}  # worker id -> list of request ids
        self.envelopes = {}  # request id -> encoded response line
        for i in range(workers):
            self.run(self.core.register_worker(f"w{i}", self.now))

    def run(self, actions):
        for action in actions:
            if isinstance(action, Respond):
                rid = action.response.id
                assert rid not in self.envelopes, "duplicate response"
                self.envelopes[rid] = json.dumps(
                    action.response.to_dict(), sort_keys=True
                )
            elif isinstance(action, Dispatch):
                ids = (
                    [i["id"] for i in action.message["items"]]
                    if action.message["type"] == "batch"
                    else [action.message["id"]]
                )
                self.held.setdefault(action.worker_id, []).extend(ids)

    def submit(self, rid, key, tenant):
        self.run(
            self.core.submit(
                req(rid, tenant=tenant, deadline_ms=300000.0),
                self.now,
                batch_key=key,
            )
        )

    def complete_one(self):
        """Finish the lowest outstanding request id (deterministic)."""
        candidates = [
            (rid, wid)
            for wid, rids in self.held.items()
            for rid in rids
        ]
        if not candidates:
            return
        rid, wid = min(candidates)
        self.held[wid].remove(rid)
        payload = {"ok": True, "result": {"rid": rid, "value": hash_of(rid)}}
        self.run(self.core.worker_result(wid, rid, payload, self.now))

    def advance(self, dt):
        self.now += dt
        self.run(self.core.tick(self.now))

    def finish(self):
        for _ in range(10000):
            if not any(self.held.values()):
                # Flush lingering/backoff work into dispatches.
                self.advance(1.0)
            if self.core.is_quiescent():
                return
            self.complete_one()
        raise AssertionError("replay did not converge")


def hash_of(rid):
    # Deterministic stand-in for real simulation output.
    return sum(ord(c) * 31 ** i for i, c in enumerate(rid)) % 997


_BATCH_OPS = st.lists(
    st.one_of(
        st.tuples(
            st.just("submit"),
            st.sampled_from([None, "ka", "kb"]),  # batch key
            st.sampled_from(["t1", "t2"]),  # tenant
        ),
        st.tuples(st.just("complete")),
        st.tuples(st.just("advance"), st.sampled_from([0.01, 0.2])),
    ),
    min_size=1,
    max_size=30,
)


@settings(max_examples=50, deadline=None)
@given(ops=_BATCH_OPS, max_batch=st.sampled_from([2, 4]))
def test_batched_execution_is_bit_identical_to_unbatched(ops, max_batch):
    batched = _Replay(max_batch=max_batch, linger=0.05)
    plain = _Replay(max_batch=1, linger=0.0)
    seq = 0
    for op in ops:
        if op[0] == "submit":
            seq += 1
            rid = f"r{seq:03d}"
            batched.submit(rid, op[1], op[2])
            plain.submit(rid, op[1], op[2])
        elif op[0] == "complete":
            batched.complete_one()
            plain.complete_one()
        else:
            batched.advance(op[1])
            plain.advance(op[1])
    batched.finish()
    plain.finish()
    # Every request got exactly one envelope in both worlds, and the
    # encoded bytes match request by request: batching is invisible in
    # results.
    assert set(batched.envelopes) == set(plain.envelopes)
    assert batched.envelopes == plain.envelopes
    for rid, line in batched.envelopes.items():
        decoded = json.loads(line)
        assert decoded["ok"] and decoded["result"]["value"] == hash_of(rid)
