"""Simulator-invariant lint rules (SPL101..SPL104)."""

import textwrap

from repro.verify import LINT_RULES, Severity, lint_paths, lint_source


def lint(source, rel_path="core/module.py"):
    return lint_source(textwrap.dedent(source), rel_path)


def rule_ids(diags):
    return [d.rule_id for d in diags]


class TestFloatEquality:
    def test_flags_float_literal_comparison(self):
        diags = lint(
            """
            def f(elapsed):
                if elapsed == 1.5:
                    return True
            """
        )
        assert rule_ids(diags) == ["SPL101"]

    def test_flags_quantity_suffixed_names(self):
        diags = lint(
            """
            def f(time_ns, energy_pj):
                return time_ns != energy_pj * 0
            """,
            rel_path="rm/timing.py",
        )
        assert rule_ids(diags) == ["SPL101"]

    def test_integer_equality_is_fine(self):
        diags = lint(
            """
            def f(count):
                return count == 4
            """
        )
        assert not diags

    def test_ordering_comparisons_are_fine(self):
        diags = lint(
            """
            def f(time_ns):
                return time_ns >= 1.5
            """
        )
        assert not diags

    def test_out_of_scope_module_is_exempt(self):
        diags = lint(
            """
            def f(time_ns):
                return time_ns == 1.5
            """,
            rel_path="workloads/polybench.py",
        )
        assert not diags


class TestDeviceStateMutation:
    def test_flags_attribute_assignment(self):
        diags = lint(
            """
            def poke(nanowire):
                nanowire.offset = 3
            """,
            rel_path="analysis/hack.py",
        )
        assert rule_ids(diags) == ["SPL102"]
        assert "nanowire.offset" in diags[0].message

    def test_flags_augmented_assignment(self):
        diags = lint(
            """
            def poke(subarray):
                subarray.shifts += 1
            """,
            rel_path="workloads/hack.py",
        )
        assert rule_ids(diags) == ["SPL102"]

    def test_owner_packages_are_exempt(self):
        source = """
        def poke(nanowire):
            nanowire.offset = 3
        """
        assert not lint(source, rel_path="rm/nanowire.py")
        assert not lint(source, rel_path="core/device.py")

    def test_self_attribute_is_fine(self):
        diags = lint(
            """
            class Tracker:
                def bump(self):
                    self.subarray_hits = 1
            """,
            rel_path="analysis/tracker.py",
        )
        assert not diags

    def test_unrelated_names_are_fine(self):
        diags = lint(
            """
            def f(config):
                config.scale = 2
            """,
            rel_path="analysis/tuner.py",
        )
        assert not diags


class TestFrozenConfigValidation:
    def test_flags_unvalidated_frozen_config(self):
        diags = lint(
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class PumpConfig:
                rate: float
            """
        )
        assert rule_ids(diags) == ["SPL103"]
        assert "PumpConfig" in diags[0].message

    def test_flags_qualified_decorator_too(self):
        diags = lint(
            """
            import dataclasses

            @dataclasses.dataclass(frozen=True)
            class PumpConfig:
                rate: float
            """
        )
        assert rule_ids(diags) == ["SPL103"]

    def test_post_init_satisfies_the_rule(self):
        diags = lint(
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class PumpConfig:
                rate: float

                def __post_init__(self):
                    if self.rate < 0:
                        raise ValueError("rate must be non-negative")
            """
        )
        assert not diags

    def test_mutable_dataclass_is_exempt(self):
        diags = lint(
            """
            from dataclasses import dataclass

            @dataclass
            class PumpConfig:
                rate: float
            """
        )
        assert not diags

    def test_non_config_class_is_exempt(self):
        diags = lint(
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class PumpResult:
                rate: float
            """
        )
        assert not diags


class TestBareAssert:
    def test_flags_assert(self):
        diags = lint(
            """
            def f(x):
                assert x > 0
                return x
            """,
            rel_path="workloads/f.py",
        )
        assert rule_ids(diags) == ["SPL104"]

    def test_explicit_raise_is_fine(self):
        diags = lint(
            """
            def f(x):
                if x <= 0:
                    raise ValueError("x must be positive")
                return x
            """
        )
        assert not diags


class TestRuleMetadata:
    def test_every_lint_rule_is_an_error(self):
        for rule in LINT_RULES.values():
            assert rule.severity is Severity.ERROR
            assert rule.hint

    def test_diagnostics_carry_file_and_line(self):
        (diag,) = lint(
            """
            assert True
            """,
            rel_path="sim/x.py",
        )
        assert diag.location == "sim/x.py:2"


class TestRepoIsClean:
    def test_shipped_package_lints_clean(self):
        report = lint_paths()
        assert report.ok(), report.render()
