"""Whole-trace dataflow analysis: SPV008-SPV012, index queries, CLI."""

import json

import pytest

from repro.core.placement import (
    MatrixHandle,
    PlacementPlan,
    PlacementPolicy,
    RowSlice,
)
from repro.isa.columnar import ColumnarTrace
from repro.isa.trace import VPCTrace, write_trace
from repro.isa.vpc import VPC
from repro.rm.address import AddressMap, DeviceGeometry
from repro.verify import (
    DataflowAnalyzer,
    DataflowIndex,
    Severity,
    TraceVerifier,
)


@pytest.fixture
def geometry(small_geometry):
    return small_geometry


@pytest.fixture
def amap(geometry):
    return AddressMap(geometry)


def cols_of(*vpcs):
    return ColumnarTrace.from_trace(VPCTrace(list(vpcs)))


def rules_of(report):
    return set(report.rule_ids())


def _plan_with(handles):
    plan = PlacementPlan(policy=PlacementPolicy.DISTRIBUTE)
    for handle in handles:
        plan.matrices[handle.name] = handle
    return plan


def _handle(name, slices, result=False):
    return MatrixHandle(
        name=name,
        rows=len(slices),
        cols=slices[0].length,
        rows_placement=[[piece] for piece in slices],
        result_set=result,
    )


def _plan_at(base, length=16):
    """One placed matrix covering ``[base, base + length)``."""
    return _plan_with([_handle("A", [RowSlice(0, 1, base, 0, length)])])


class TestIndexQueries:
    def test_def_use_chain(self, geometry, amap):
        base = amap.subarray_base(0, 0)
        a, b, c, d = base, base + 16, base + 32, base + 48
        cols = cols_of(
            VPC.tran(a, b, 4),
            VPC.add(b, c, d, 4),
        )
        index = DataflowIndex(
            cols,
            init_intervals=[(a, a + 4), (c, c + 4)],
            liveout_intervals=[(d, d + 4)],
        )
        assert index.last_writer(b, b + 4) == 0
        assert index.last_writer(a, a + 4) == -1  # placement init only
        assert index.first_reader(b, b + 4) == 1
        # d is written by vpc#1 but no command reads it.
        assert index.first_reader(d, d + 4) == index.n_commands

    def test_live_ranges_sentinels(self, geometry, amap):
        base = amap.subarray_base(0, 0)
        a, b = base, base + 16
        cols = cols_of(VPC.tran(a, b, 4))
        index = DataflowIndex(
            cols,
            init_intervals=[(a, a + 4)],
            liveout_intervals=[(a, a + 4)],
        )
        starts, ends, first_def, last_use = index.live_ranges()
        ranges = {
            (int(s), int(e)): (int(fd), int(lu))
            for s, e, fd, lu in zip(starts, ends, first_def, last_use)
        }
        # a: defined by placement (-1), last used by the live-out read.
        assert ranges[(a, a + 4)] == (-1, index.n_commands)
        # b: defined by vpc#0, never used again.
        assert ranges[(b, b + 4)] == (0, 0)

    def test_any_write_between_is_exclusive(self, geometry, amap):
        base = amap.subarray_base(0, 0)
        a, b = base, base + 16
        cols = cols_of(VPC.tran(a, b, 4), VPC.tran(a, b, 4))
        index = DataflowIndex(cols)
        assert index.any_write_between(b, b + 4, -1, 1)
        assert not index.any_write_between(b, b + 4, 0, 1)
        assert not index.any_write_between(a, a + 4, -1, 2)

    def test_empty_trace(self):
        index = DataflowIndex(cols_of())
        starts, ends, first_def, last_use = index.live_ranges()
        assert len(starts) == 0
        report = DataflowAnalyzer().analyze(cols_of())
        assert report.ok(strict=True)
        assert not report.diagnostics


class TestUninitializedReads:
    def test_spv008_read_of_unwritten_words(self, geometry, amap):
        base = amap.subarray_base(0, 0)
        plan = _plan_at(base)
        analyzer = DataflowAnalyzer(
            geometry=geometry, plan=plan, rules=("SPV008",)
        )
        # Reads [base+32, base+36): neither placed nor written.
        report = analyzer.analyze(cols_of(VPC.tran(base + 32, base, 4)))
        (diag,) = report.by_rule("SPV008")
        assert diag.index == 0
        assert diag.severity is Severity.ERROR
        assert "no prior writer" in diag.message
        assert not report.ok()

    def test_placed_and_written_reads_are_clean(self, geometry, amap):
        base = amap.subarray_base(0, 0)
        plan = _plan_at(base)
        analyzer = DataflowAnalyzer(
            geometry=geometry, plan=plan, rules=("SPV008",)
        )
        report = analyzer.analyze(
            cols_of(
                VPC.tran(base, base + 32, 4),  # read placed words
                VPC.tran(base + 32, base + 48, 4),  # read written words
            )
        )
        assert report.ok(strict=True)
        assert not report.diagnostics

    def test_scalar_slots_count_as_initialised(self, geometry, amap):
        base = amap.subarray_base(0, 0)
        plan = _plan_at(base)
        trace = cols_of(VPC.tran(base + 100, base + 32, 1))
        with_slot = DataflowAnalyzer(
            geometry=geometry,
            plan=plan,
            scalar_slots={base + 100: "alpha"},
            rules=("SPV008",),
        ).analyze(trace)
        without = DataflowAnalyzer(
            geometry=geometry, plan=plan, rules=("SPV008",)
        ).analyze(trace)
        assert not with_slot.by_rule("SPV008")
        assert without.by_rule("SPV008")

    def test_skipped_without_plan(self, geometry, amap):
        base = amap.subarray_base(0, 0)
        report = DataflowAnalyzer(
            geometry=geometry, rules=("SPV008",)
        ).analyze(cols_of(VPC.tran(base + 32, base, 4)))
        assert not report.diagnostics


class TestDeadStores:
    def test_spv009_overwritten_before_read(self, geometry, amap):
        base = amap.subarray_base(0, 0)
        plan = _plan_at(base)
        analyzer = DataflowAnalyzer(
            geometry=geometry, plan=plan, rules=("SPV009",)
        )
        report = analyzer.analyze(
            cols_of(
                VPC.tran(base, base + 32, 4),
                VPC.tran(base + 4, base + 32, 4),  # overwrites vpc#0
                VPC.tran(base + 32, base + 48, 4),  # reads vpc#1's store
            )
        )
        (diag,) = report.by_rule("SPV009")
        assert diag.index == 0
        assert "overwritten before any read" in diag.message
        assert report.ok() and not report.ok(strict=True)

    def test_read_store_is_live(self, geometry, amap):
        base = amap.subarray_base(0, 0)
        plan = _plan_at(base)
        analyzer = DataflowAnalyzer(
            geometry=geometry, plan=plan, rules=("SPV009",)
        )
        report = analyzer.analyze(
            cols_of(
                VPC.tran(base, base + 32, 4),
                VPC.tran(base + 32, base + 4, 4),  # consumes the store
            )
        )
        assert not report.diagnostics

    def test_overwrite_detected_even_without_plan(self, geometry, amap):
        base = amap.subarray_base(0, 0)
        analyzer = DataflowAnalyzer(geometry=geometry, rules=("SPV009",))
        report = analyzer.analyze(
            cols_of(
                VPC.tran(base, base + 32, 4),
                VPC.tran(base + 4, base + 32, 4),
                VPC.tran(base + 32, base + 48, 4),
            )
        )
        assert report.by_rule("SPV009")

    def test_trailing_store_needs_liveout_knowledge(self, geometry, amap):
        # Without a plan, end-of-trace liveness is unknown: a store the
        # trace never reads again must not be called dead.
        base = amap.subarray_base(0, 0)
        report = DataflowAnalyzer(
            geometry=geometry, rules=("SPV009", "SPV011")
        ).analyze(cols_of(VPC.tran(base, base + 32, 4)))
        assert not report.diagnostics


class TestScratchLeaks:
    def test_spv011_unconsumed_scratch_write(self, geometry, amap):
        base = amap.subarray_base(0, 0)
        plan = _plan_at(base)
        analyzer = DataflowAnalyzer(
            geometry=geometry, plan=plan, rules=("SPV011",)
        )
        report = analyzer.analyze(cols_of(VPC.tran(base, base + 64, 4)))
        (diag,) = report.by_rule("SPV011")
        assert diag.index == 0
        assert diag.severity is Severity.WARNING
        assert "scratch" in diag.message

    def test_consumed_scratch_is_clean(self, geometry, amap):
        base = amap.subarray_base(0, 0)
        plan = _plan_at(base)
        analyzer = DataflowAnalyzer(geometry=geometry, plan=plan)
        report = analyzer.analyze(
            cols_of(
                VPC.tran(base, base + 64, 4),
                VPC.tran(base + 64, base + 4, 4),  # back into placed rows
            )
        )
        assert report.ok(strict=True)
        assert not report.diagnostics

    def test_skipped_without_plan(self, geometry, amap):
        base = amap.subarray_base(0, 0)
        report = DataflowAnalyzer(
            geometry=geometry, rules=("SPV011",)
        ).analyze(cols_of(VPC.tran(base, base + 64, 4)))
        assert not report.diagnostics


class TestScheduleRaces:
    def _straddling_tran(self, amap):
        """A TRAN whose write spills past its destination subarray."""
        wps = amap.words_per_subarray
        sub0 = amap.subarray_base(0, 0)
        sub1 = amap.subarray_base(0, 1)
        # Write [sub1 + wps - 2, sub1 + wps + 2): the last two words
        # land in subarray 2, which the TRAN never acquires.
        return VPC.tran(sub0, sub1 + wps - 2, 4), sub1 + wps

    def test_spv010_unordered_conflict(self, geometry, amap):
        tran, spill = self._straddling_tran(amap)
        # The ADD lives entirely in subarray 2: acquired sets {0, 1}
        # vs {2} are disjoint, so no busy-until edge orders the pair.
        add = VPC.add(spill, spill + 16, spill + 32, 4)
        report = DataflowAnalyzer(
            geometry=geometry, rules=("SPV010",)
        ).analyze(cols_of(tran, add))
        (diag,) = report.by_rule("SPV010")
        assert diag.index == 0
        assert diag.severity is Severity.ERROR
        assert "no ordering edge" in diag.message
        assert not report.ok()

    def test_no_partner_no_race(self, geometry, amap):
        tran, spill = self._straddling_tran(amap)
        # Nothing else touches the spilled words: unprotected access,
        # but no conflicting partner.
        report = DataflowAnalyzer(
            geometry=geometry, rules=("SPV010",)
        ).analyze(cols_of(tran))
        assert not report.diagnostics

    def test_bus_serialises_cross_subarray_trans(self, geometry, amap):
        tran, spill = self._straddling_tran(amap)
        # A second cross-subarray TRAN overlaps the spilled words, but
        # both hold the global RM bus, which orders them.
        other = VPC.tran(amap.subarray_base(0, 3), spill, 2)
        report = DataflowAnalyzer(
            geometry=geometry, rules=("SPV010",)
        ).analyze(cols_of(tran, other))
        assert not report.diagnostics

    def test_same_subarray_accesses_are_ordered(self, geometry, amap):
        base = amap.subarray_base(0, 0)
        report = DataflowAnalyzer(
            geometry=geometry, rules=("SPV010",)
        ).analyze(
            cols_of(
                VPC.add(base, base + 16, base + 32, 4),
                VPC.add(base + 32, base + 48, base + 64, 4),
            )
        )
        assert not report.diagnostics


class TestRedundantCopies:
    def test_spv012_repeat_tran(self, geometry, amap):
        base = amap.subarray_base(0, 0)
        copy = VPC.tran(base, base + 32, 4)
        report = DataflowAnalyzer(
            geometry=geometry, rules=("SPV012",)
        ).analyze(cols_of(copy, copy))
        (diag,) = report.by_rule("SPV012")
        assert diag.index == 1
        assert diag.severity is Severity.INFO
        assert "vpc #0" in diag.message
        # INFO findings never fail, even under strict.
        assert report.ok(strict=True)

    def test_intervening_write_makes_copy_useful(self, geometry, amap):
        base = amap.subarray_base(0, 0)
        copy = VPC.tran(base, base + 32, 4)
        clobber = VPC.tran(base + 64, base + 32, 4)
        report = DataflowAnalyzer(
            geometry=geometry, rules=("SPV012",)
        ).analyze(cols_of(copy, clobber, copy))
        assert not report.diagnostics

    def test_identity_trans_are_exempt(self, geometry, amap):
        # Identity TRANs deliver pre-seeded scalars to the processor;
        # repeating one is the calling convention, not a copy.
        base = amap.subarray_base(0, 0)
        seed = VPC.tran(base, base, 1)
        report = DataflowAnalyzer(
            geometry=geometry, rules=("SPV012",)
        ).analyze(cols_of(seed, seed))
        assert not report.diagnostics


class TestAnalyzerMechanics:
    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError) as excinfo:
            DataflowAnalyzer(rules=("SPV08",))
        assert "SPV08" in str(excinfo.value)

    def test_non_dataflow_rule_rejected(self):
        # SPV001 is a TraceVerifier rule, not a deep rule.
        with pytest.raises(ValueError):
            DataflowAnalyzer(rules=("SPV001",))

    def test_verifier_rejects_unknown_rules(self):
        with pytest.raises(ValueError) as excinfo:
            TraceVerifier(rules=("SPV08", "SPV001"))
        assert "SPV08" in str(excinfo.value)
        assert "SPV001" not in str(excinfo.value).split(";")[0]

    def test_diagnostic_cap(self, geometry, amap):
        base = amap.subarray_base(0, 0)
        plan = _plan_at(base)
        vpcs = [
            VPC.tran(base, base + 64 + 8 * i, 4) for i in range(8)
        ]
        report = DataflowAnalyzer(
            geometry=geometry,
            plan=plan,
            rules=("SPV011",),
            max_diagnostics=3,
        ).analyze(cols_of(*vpcs))
        assert len(report.diagnostics) == 3
        assert report.suppressed == 5

    def test_metrics_emitted(self, geometry, amap):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        base = amap.subarray_base(0, 0)
        plan = _plan_at(base)
        analyzer = DataflowAnalyzer(
            geometry=geometry, plan=plan, registry=registry
        )
        trace = cols_of(VPC.tran(base, base + 64, 4))
        report = analyzer.analyze(trace)
        snapshot = registry.snapshot()
        assert snapshot["dataflow.analyses"] == 1
        assert snapshot["dataflow.commands"] == 1
        assert snapshot["dataflow.access_events"] > 0
        assert snapshot["dataflow.segments"] > 0
        assert snapshot["dataflow.findings.SPV011"] == len(
            report.by_rule("SPV011")
        )
        assert snapshot["dataflow.analyze_ns"]["value"] > 0


class TestCompileIntegration:
    def test_compile_attaches_deep_report(self):
        from repro.core.compile import compile_workload
        from repro.workloads import polybench_workload

        spec = polybench_workload("gemm", scale=0.01)
        cold = compile_workload(spec, deep_verify=True)
        assert cold.deep_report is not None
        assert cold.deep_report.ok(strict=True)
        # Deep verification also runs on cache hits: a stale or corrupt
        # cached trace would be caught before execution.
        warm = compile_workload(spec, deep_verify=True)
        assert warm.cache_hit
        assert warm.deep_report is not None
        assert warm.deep_report.ok(strict=True)
        plain = compile_workload(spec)
        assert plain.deep_report is None

    def test_campaign_deep_check_passes_clean_workload(self):
        from repro.resilience import run_campaign

        report = run_campaign(
            "gemm", scale=0.01, runs=1, deep_check=True
        )
        assert report.n_runs == 1


class TestDeepCli:
    def test_check_deep_workload_passes(self, capsys):
        from repro.cli import main

        assert (
            main(["check", "gemm", "--scale", "0.01", "--deep", "--strict"])
            == 0
        )
        assert "PASS" in capsys.readouterr().out

    def test_check_deep_trace_file(self, tmp_path, capsys):
        from repro.cli import main

        amap = AddressMap(DeviceGeometry())
        base = amap.subarray_base(0, 0)
        # Each copied range is read back, so only the repeat copy at
        # vpc #2 is findable — an INFO hint, clean even under strict.
        trace = VPCTrace(
            [
                VPC.tran(base, base + 32, 4),
                VPC.tran(base + 32, base + 64, 4),
                VPC.tran(base, base + 32, 4),
                VPC.tran(base + 32, base + 96, 4),
            ]
        )
        path = tmp_path / "dup.trace"
        write_trace(trace, path)
        # Redundant copy is an INFO hint: reported but never failing.
        assert main(["check", str(path), "--deep", "--strict"]) == 0
        out = capsys.readouterr().out
        assert "SPV012" in out
        assert "1 hint(s)" in out

    def test_json_schema(self, tmp_path, capsys):
        from repro.cli import main
        from repro.isa.columnar import binary_record_offset

        amap = AddressMap(DeviceGeometry())
        base = amap.subarray_base(0, 0)
        trace = VPCTrace(
            [
                VPC.tran(amap.total_words + 5, base, 4),  # SPV001
                VPC.add(base, base + 16, base + 4, 8),  # SPV003
            ]
        )
        path = tmp_path / "corrupt.trace"
        write_trace(trace, path)
        assert main(["check", str(path), "--json"]) == 1
        captured = capsys.readouterr()
        lines = [
            line for line in captured.out.splitlines() if line.strip()
        ]
        records = [json.loads(line) for line in lines]
        assert {record["rule"] for record in records} == {
            "SPV001",
            "SPV003",
        }
        for record in records:
            assert set(record) == {
                "rule",
                "severity",
                "subject",
                "location",
                "index",
                "offset",
                "line",
                "message",
                "hint",
            }
            assert record["subject"] == f"trace {path}"
            assert record["offset"] == binary_record_offset(
                record["index"]
            )
        # The human summary stays off the NDJSON stream.
        assert "FAILED" in captured.err

    def test_select_and_ignore_filters(self, tmp_path, capsys):
        from repro.cli import main

        amap = AddressMap(DeviceGeometry())
        base = amap.subarray_base(0, 0)
        trace = VPCTrace(
            [
                VPC.tran(amap.total_words + 5, base, 4),  # SPV001
                VPC.add(base, base + 16, base + 4, 8),  # SPV003
            ]
        )
        path = tmp_path / "corrupt.trace"
        write_trace(trace, path)

        assert main(["check", str(path), "--select", "SPV003"]) == 1
        out = capsys.readouterr().out
        assert "SPV003" in out and "SPV001" not in out

        # Ignoring every firing rule also clears the verdict.
        assert (
            main(["check", str(path), "--ignore", "SPV001,SPV003"]) == 0
        )
        assert "PASS" in capsys.readouterr().out

    def test_unknown_filter_rule_rejected(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "empty.trace"
        write_trace(VPCTrace(), path)
        with pytest.raises(SystemExit) as excinfo:
            main(["check", str(path), "--select", "SPV08"])
        assert "SPV08" in str(excinfo.value)

    def test_lint_json_clean(self, capsys):
        from repro.cli import main

        assert main(["lint", "--json"]) == 0
        assert capsys.readouterr().out.strip() == ""

    def test_campaign_deep_flag(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "faults",
                    "campaign",
                    "gemm",
                    "--scale",
                    "0.01",
                    "--runs",
                    "1",
                    "--deep",
                ]
            )
            == 0
        )
        assert "campaign" in capsys.readouterr().out


class TestWorkloadsDeepClean:
    @pytest.mark.parametrize("name", ["gemm", "atax", "mvt", "2mm"])
    def test_polybench_deep_clean(self, name):
        from repro.workloads import polybench_workload

        task = polybench_workload(name, scale=0.01).build_task()
        trace = task.to_trace()
        analyzer = DataflowAnalyzer(
            geometry=task.device.config.geometry,
            plan=task.placement_plan,
            scalar_slots=task.trace_scalar_slots,
        )
        report = analyzer.analyze(trace, subject=name)
        assert report.ok(strict=True), report.render(strict=True)
        assert not report.infos
