"""Tests for the discrete-event engine, pipeline algebra, and stats."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import Engine, Resource
from repro.sim.pipeline import PipelineModel, PipelineStage
from repro.sim.stats import (
    EnergyBreakdown,
    RunStats,
    TimeBreakdown,
    geometric_mean,
)


class TestEngine:
    def test_events_run_in_time_order(self):
        engine = Engine()
        order = []
        engine.schedule(5.0, lambda: order.append("b"))
        engine.schedule(1.0, lambda: order.append("a"))
        engine.schedule(9.0, lambda: order.append("c"))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_fifo_among_equal_times(self):
        engine = Engine()
        order = []
        engine.schedule(1.0, lambda: order.append(1))
        engine.schedule(1.0, lambda: order.append(2))
        engine.run()
        assert order == [1, 2]

    def test_clock_advances(self):
        engine = Engine()
        engine.schedule(7.0, lambda: None)
        assert engine.run() == 7.0
        assert engine.now == 7.0

    def test_callbacks_can_schedule(self):
        engine = Engine()
        seen = []

        def first():
            engine.schedule(3.0, lambda: seen.append(engine.now))

        engine.schedule(1.0, first)
        engine.run()
        assert seen == [4.0]

    def test_cancelled_events_skipped(self):
        engine = Engine()
        seen = []
        event = engine.schedule(1.0, lambda: seen.append("x"))
        event.cancel()
        engine.run()
        assert seen == []
        assert engine.pending == 0

    def test_run_until_stops_clock(self):
        engine = Engine()
        seen = []
        engine.schedule(10.0, lambda: seen.append("late"))
        assert engine.run(until=5.0) == 5.0
        assert seen == []
        engine.run()
        assert seen == ["late"]

    def test_step_processes_single_event(self):
        engine = Engine()
        seen = []
        engine.schedule(1.0, lambda: seen.append(1))
        engine.schedule(2.0, lambda: seen.append(2))
        assert engine.step()
        assert seen == [1]
        assert engine.step()
        assert not engine.step()

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            Engine().schedule(-1.0, lambda: None)

    def test_rejects_past_absolute_time(self):
        engine = Engine()
        engine.schedule(5.0, lambda: None)
        engine.run()
        with pytest.raises(ValueError):
            engine.schedule_at(1.0, lambda: None)

    def test_run_until_never_rewinds_clock(self):
        # Regression: run(until=t) with t < now used to drag the clock
        # backwards, letting later schedule_at calls "time travel".
        engine = Engine()
        engine.schedule(10.0, lambda: None)
        engine.run()
        assert engine.now == 10.0
        engine.schedule(10.0, lambda: None)  # pending event at t=20
        assert engine.run(until=3.0) == 10.0
        assert engine.now == 10.0
        engine.schedule_at(10.0, lambda: None)  # still legal
        with pytest.raises(ValueError):
            engine.schedule_at(5.0, lambda: None)


class TestResource:
    def test_serialises_overlapping_requests(self):
        res = Resource("sub")
        s1, f1 = res.acquire(0.0, 10.0)
        s2, f2 = res.acquire(5.0, 10.0)
        assert (s1, f1) == (0.0, 10.0)
        assert (s2, f2) == (10.0, 20.0)

    def test_idle_gap_allows_immediate_start(self):
        res = Resource()
        res.acquire(0.0, 5.0)
        s, f = res.acquire(100.0, 5.0)
        assert s == 100.0

    def test_utilisation(self):
        res = Resource()
        res.acquire(0.0, 25.0)
        assert res.utilisation(100.0) == pytest.approx(0.25)
        assert res.utilisation(0.0) == 0.0

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            Resource().acquire(0.0, -1.0)

    def test_utilisation_raises_on_overaccounting(self):
        # Regression: busy time beyond the elapsed window used to be
        # silently clamped to 1.0, hiding double-charged intervals.
        res = Resource("sub0")
        res.acquire(0.0, 25.0)
        with pytest.raises(ValueError, match="over-accounted"):
            res.utilisation(10.0)

    def test_utilisation_full_window_is_exact(self):
        res = Resource()
        res.acquire(0.0, 50.0)
        assert res.utilisation(50.0) == 1.0


class TestPipelineModel:
    def test_fill_is_sum_of_depths(self):
        model = PipelineModel(
            (
                PipelineStage("a", depth=2),
                PipelineStage("b", depth=3, interval=4),
            )
        )
        assert model.fill_cycles == 5
        assert model.initiation_interval == 4

    def test_latency_formula(self):
        model = PipelineModel((PipelineStage("a", depth=3, interval=2),))
        assert model.latency_cycles(1) == 3
        assert model.latency_cycles(10) == 3 + 9 * 2

    def test_zero_items(self):
        model = PipelineModel((PipelineStage("a", depth=1),))
        assert model.latency_cycles(0) == 0

    def test_rejects_negative_items(self):
        model = PipelineModel((PipelineStage("a", depth=1),))
        with pytest.raises(ValueError):
            model.latency_cycles(-1)

    def test_bottleneck(self):
        slow = PipelineStage("slow", depth=1, interval=7)
        model = PipelineModel((PipelineStage("fast", depth=1), slow))
        assert model.bottleneck() == slow

    def test_without_bypasses_stages(self):
        model = PipelineModel(
            (
                PipelineStage("a", depth=5),
                PipelineStage("b", depth=1),
            )
        )
        assert model.without("a").fill_cycles == 1

    def test_without_everything_rejected(self):
        model = PipelineModel((PipelineStage("a", depth=1),))
        with pytest.raises(ValueError):
            model.without("a")

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            PipelineModel(())

    def test_stage_validation(self):
        with pytest.raises(ValueError):
            PipelineStage("a", depth=0)
        with pytest.raises(ValueError):
            PipelineStage("a", depth=1, interval=0)

    @given(
        n=st.integers(min_value=1, max_value=10_000),
        depth=st.integers(min_value=1, max_value=20),
        interval=st.integers(min_value=1, max_value=8),
    )
    def test_property_latency_monotone_and_linear(self, n, depth, interval):
        model = PipelineModel((PipelineStage("s", depth, interval),))
        assert (
            model.latency_cycles(n + 1) - model.latency_cycles(n) == interval
        )


class TestTimeBreakdown:
    def test_total_and_transfer(self):
        t = TimeBreakdown()
        t.add("read", 10)
        t.add("write", 20)
        t.add("shift", 5)
        t.add("process", 60)
        t.add("overlapped", 5)
        assert t.total_ns == 100
        assert t.transfer_ns == 35

    def test_fractions_sum_to_one(self):
        t = TimeBreakdown(read_ns=1, write_ns=2, shift_ns=3, process_ns=4)
        assert sum(t.fractions().values()) == pytest.approx(1.0)

    def test_fractions_of_empty(self):
        assert all(v == 0 for v in TimeBreakdown().fractions().values())

    def test_add_rejects_unknown_category(self):
        with pytest.raises(ValueError):
            TimeBreakdown().add("dma", 1.0)

    def test_add_rejects_negative(self):
        with pytest.raises(ValueError):
            TimeBreakdown().add("read", -1.0)

    def test_merge(self):
        a = TimeBreakdown(read_ns=1)
        a.merge(TimeBreakdown(read_ns=2, process_ns=3))
        assert a.read_ns == 3
        assert a.process_ns == 3

    def test_scaled(self):
        t = TimeBreakdown(read_ns=2, process_ns=4).scaled(2.5)
        assert t.read_ns == 5
        assert t.process_ns == 10

    def test_scaled_rejects_negative(self):
        with pytest.raises(ValueError):
            TimeBreakdown().scaled(-1)


class TestEnergyBreakdown:
    def test_total_and_transfer(self):
        e = EnergyBreakdown(read_pj=1, write_pj=2, shift_pj=3, compute_pj=4)
        assert e.total_pj == 10
        assert e.transfer_pj == 6

    def test_fractions(self):
        e = EnergyBreakdown(compute_pj=3, write_pj=1)
        f = e.fractions()
        assert f["compute"] == pytest.approx(0.75)

    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyBreakdown().add("refresh", 1.0)
        with pytest.raises(ValueError):
            EnergyBreakdown().add("read", -2.0)


class TestRunStats:
    def test_speedup_and_energy_saving(self):
        fast = RunStats("A", "w", time_ns=10.0)
        slow = RunStats("B", "w", time_ns=100.0)
        fast.energy.add("compute", 5.0)
        slow.energy.add("compute", 50.0)
        assert fast.speedup_over(slow) == pytest.approx(10.0)
        assert fast.energy_saving_over(slow) == pytest.approx(10.0)

    def test_zero_time_rejected(self):
        zero = RunStats("A", "w", time_ns=0.0)
        with pytest.raises(ZeroDivisionError):
            zero.speedup_over(zero)

    def test_counters(self):
        stats = RunStats("A", "w", time_ns=1.0)
        stats.bump("vpcs", 5)
        stats.bump("vpcs")
        assert stats.counters["vpcs"] == 6


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)

    def test_single_value(self):
        assert geometric_mean([7.0]) == pytest.approx(7.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_huge_values_do_not_overflow(self):
        # Regression: the product accumulator overflowed to inf for
        # realistic speedup lists; the log-domain form stays finite.
        import math

        values = [1e300, 1e305, 1e308]
        result = geometric_mean(values)
        assert math.isfinite(result)
        expected = 10 ** ((300 + 305 + 308) / 3)
        assert result == pytest.approx(expected, rel=1e-12)

    def test_tiny_values_do_not_underflow(self):
        result = geometric_mean([1e-300] * 4)
        assert result == pytest.approx(1e-300, rel=1e-12)
