"""ServiceCore state-machine tests: deterministic paths + property test.

The core is pure (no I/O, no clock, no randomness — every method takes
``now``), so these tests drive it with a virtual clock.  The closing
hypothesis test is the serving layer's exactly-once contract: *any*
interleaving of worker death, deadline expiry, retries, queue-full
rejection and drain yields exactly one response per submitted request,
each carrying a valid typed code.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.core import (
    CoreConfig,
    Dispatch,
    KillWorker,
    Respond,
    ServiceCore,
)
from repro.serve.protocol import ErrorCode, Request
from repro.serve.retry import RetryPolicy


def make_core(**overrides):
    defaults = dict(
        queue_limit=8,
        tenant_rate=1000.0,
        tenant_burst=1000.0,
        default_deadline_s=30.0,
        hang_grace_s=2.0,
        max_redeliveries=2,
        retry=RetryPolicy(max_attempts=3, base_delay_s=0.05, jitter=0.0),
        breaker_failure_threshold=3,
        breaker_cooldown_s=5.0,
    )
    defaults.update(overrides)
    return ServiceCore(CoreConfig(**defaults))


def req(rid, method="run", params=None, tenant="t", deadline_ms=None):
    return Request(
        id=rid,
        method=method,
        params=params or {"workload": "atax"},
        tenant=tenant,
        deadline_ms=deadline_ms,
    )


def responses(actions):
    return [a.response for a in actions if isinstance(a, Respond)]


def dispatches(actions):
    return [a for a in actions if isinstance(a, Dispatch)]


def kills(actions):
    return [a for a in actions if isinstance(a, KillWorker)]


class TestHappyPath:
    def test_submit_dispatch_respond(self):
        core = make_core()
        core.register_worker("w0", 0.0)
        actions = core.submit(req("r1"), 0.0)
        (d,) = dispatches(actions)
        assert d.worker_id == "w0"
        assert d.message["id"] == "r1"
        assert d.message["attempt"] == 1
        actions = core.worker_result(
            "w0", "r1", {"ok": True, "result": {"time_ns": 5.0}}, 0.1
        )
        (r,) = responses(actions)
        assert r.ok and r.result == {"time_ns": 5.0}
        assert core.outcome("r1") == "ok"
        assert core.is_quiescent()

    def test_queue_waits_for_idle_worker(self):
        core = make_core()
        assert dispatches(core.submit(req("r1"), 0.0)) == []
        assert core.queue_depth == 1
        (d,) = dispatches(core.register_worker("w0", 0.1))
        assert d.message["id"] == "r1"

    def test_typed_worker_failure_passes_through(self):
        core = make_core()
        core.register_worker("w0", 0.0)
        core.submit(req("r1"), 0.0)
        actions = core.worker_result(
            "w0",
            "r1",
            {"ok": False, "code": "SIMULATION_FAULT", "message": "boom"},
            0.1,
        )
        (r,) = responses(actions)
        assert not r.ok
        assert r.error.code is ErrorCode.SIMULATION_FAULT
        assert core.outcome("r1") == "SIMULATION_FAULT"


class TestRejections:
    def test_duplicate_id_rejected_without_touching_original(self):
        core = make_core()
        core.register_worker("w0", 0.0)
        core.submit(req("r1"), 0.0)
        (r,) = responses(core.submit(req("r1"), 0.1))
        assert r.error.code is ErrorCode.INVALID_REQUEST
        # The original still completes normally.
        (r,) = responses(
            core.worker_result("w0", "r1", {"ok": True, "result": {}}, 0.2)
        )
        assert r.ok

    def test_unknown_method_rejected(self):
        core = make_core()
        (r,) = responses(core.submit(req("r1", method="frobnicate"), 0.0))
        assert r.error.code is ErrorCode.UNKNOWN_METHOD

    def test_debug_methods_gated(self):
        closed = make_core()
        (r,) = responses(closed.submit(req("r1", method="x-crash"), 0.0))
        assert r.error.code is ErrorCode.UNKNOWN_METHOD
        chaos = make_core(enable_debug_methods=True)
        assert responses(chaos.submit(req("r1", method="x-crash"), 0.0)) == []

    def test_queue_full_shed(self):
        core = make_core(queue_limit=1)
        core.submit(req("r1"), 0.0)  # queued (no workers)
        (r,) = responses(core.submit(req("r2"), 0.0))
        assert r.error.code is ErrorCode.QUEUE_FULL

    def test_rate_limited_per_tenant(self):
        core = make_core(tenant_rate=1.0, tenant_burst=1.0)
        core.submit(req("r1", tenant="a"), 0.0)
        (r,) = responses(core.submit(req("r2", tenant="a"), 0.0))
        assert r.error.code is ErrorCode.RATE_LIMITED
        assert responses(core.submit(req("r3", tenant="b"), 0.0)) == []

    def test_draining_rejects_new_work(self):
        core = make_core()
        core.begin_drain(0.0)
        (r,) = responses(core.submit(req("r1"), 0.1))
        assert r.error.code is ErrorCode.DRAINING

    def test_circuit_open_rejects_class(self):
        core = make_core(breaker_failure_threshold=1, max_redeliveries=5)
        core.register_worker("w0", 0.0)
        core.submit(req("r1", params={"workload": "gemm"}), 0.0)
        core.worker_exit("w0", 0.1)  # unexpected death trips the breaker
        (r,) = responses(
            core.submit(req("r2", params={"workload": "gemm"}), 0.2)
        )
        assert r.error.code is ErrorCode.CIRCUIT_OPEN
        # Other workload classes are unaffected.
        assert responses(
            core.submit(req("r3", params={"workload": "atax"}), 0.2)
        ) == []


class TestCrashRedelivery:
    def test_crash_requeues_with_backoff(self):
        core = make_core()
        core.register_worker("w0", 0.0)
        core.submit(req("r1"), 0.0)
        assert core.worker_exit("w0", 0.1) == []  # requeued, not answered
        assert core.unresolved_count == 1
        # Backoff gate: a fresh worker gets nothing until the delay
        # (base 0.05s, jitter 0) matures.
        core.register_worker("w1", 0.11)
        assert dispatches(core.tick(0.12)) == []
        (d,) = dispatches(core.tick(0.2))
        assert d.message["id"] == "r1"
        assert d.message["attempt"] == 2

    def test_dead_letter_after_max_redeliveries(self):
        core = make_core(max_redeliveries=1)
        core.register_worker("w0", 0.0)
        core.submit(req("r1"), 0.0)
        core.worker_exit("w0", 0.1, reason="crash")  # redelivery 1
        core.register_worker("w1", 0.2)
        assert dispatches(core.tick(0.3))
        actions = core.worker_exit("w1", 0.4, reason="crash")
        (r,) = responses(actions)
        assert r.error.code is ErrorCode.DEAD_LETTER
        assert r.error.detail["redeliveries"] == 1
        assert core.outcome("r1") == "DEAD_LETTER"
        (record,) = core.dead_letters
        assert record["request_id"] == "r1"
        assert record["workload_class"] == "run:atax"
        assert record["reason"] == "crash"

    def test_retryable_typed_failure_retries_then_surfaces(self):
        core = make_core(
            retry=RetryPolicy(max_attempts=2, base_delay_s=0.01, jitter=0.0)
        )
        core.register_worker("w0", 0.0)
        core.submit(req("r1"), 0.0)
        fail = {"ok": False, "code": "CACHE_IO", "message": "disk"}
        assert responses(core.worker_result("w0", "r1", fail, 0.1)) == []
        (d,) = dispatches(core.tick(0.2))
        assert d.message["attempt"] == 2
        (r,) = responses(core.worker_result("w0", "r1", fail, 0.3))
        assert r.error.code is ErrorCode.CACHE_IO
        assert r.error.attempts == 2

    def test_non_retryable_failure_is_immediate(self):
        core = make_core()
        core.register_worker("w0", 0.0)
        core.submit(req("r1"), 0.0)
        (r,) = responses(
            core.worker_result(
                "w0", "r1", {"ok": False, "code": "VERIFY_FAILED"}, 0.1
            )
        )
        assert r.error.code is ErrorCode.VERIFY_FAILED


class TestDeadlines:
    def test_queued_request_expires(self):
        core = make_core()  # no workers
        core.submit(req("r1", deadline_ms=500), 0.0)
        assert responses(core.tick(0.4)) == []
        (r,) = responses(core.tick(0.6))
        assert r.error.code is ErrorCode.DEADLINE_EXCEEDED

    def test_never_dispatches_expired_request(self):
        core = make_core()
        core.submit(req("r1", deadline_ms=100), 0.0)
        actions = core.register_worker("w0", 0.5)
        assert dispatches(actions) == []
        (r,) = responses(actions)
        assert r.error.code is ErrorCode.DEADLINE_EXCEEDED

    def test_inflight_hang_kill_after_grace(self):
        core = make_core(hang_grace_s=2.0)
        core.register_worker("w0", 0.0)
        core.submit(req("r1", deadline_ms=1000), 0.0)
        # Past deadline but inside grace: cooperative window.
        assert core.tick(1.5) == []
        actions = core.tick(3.1)
        (k,) = kills(actions)
        assert k.worker_id == "w0"
        (r,) = responses(actions)
        assert r.error.code is ErrorCode.DEADLINE_EXCEEDED
        # The doomed worker's late result and exit change nothing.
        assert responses(core.worker_result("w0", "r1", {"ok": True}, 3.2)) == []
        assert responses(core.worker_exit("w0", 3.3, reason="killed")) == []
        assert core.outcome("r1") == "DEADLINE_EXCEEDED"
        assert core.is_quiescent()


class TestCoalescing:
    def test_followers_share_leader_result(self):
        core = make_core()
        core.register_worker("w0", 0.0)
        core.submit(req("r1"), 0.0, coalesce_key="k")
        assert core.submit(req("r2"), 0.1, coalesce_key="k") == []
        assert core.inflight_count == 1  # the follower never runs
        actions = core.worker_result(
            "w0", "r1", {"ok": True, "result": {"sha": "abc"}}, 0.2
        )
        got = {r.id: r.result for r in responses(actions)}
        assert got["r1"] == {"sha": "abc"}
        assert got["r2"] == {"sha": "abc", "coalesced": True}
        assert core.is_quiescent()

    def test_distinct_keys_do_not_coalesce(self):
        core = make_core()
        core.submit(req("r1"), 0.0, coalesce_key="k1")
        core.submit(req("r2"), 0.0, coalesce_key="k2")
        assert core.queue_depth == 2

    def test_follower_promoted_on_leader_terminal_failure(self):
        core = make_core(max_redeliveries=0)
        core.register_worker("w0", 0.0)
        core.submit(req("r1"), 0.0, coalesce_key="k")
        core.submit(req("r2"), 0.1, coalesce_key="k")
        actions = core.worker_exit("w0", 0.2)  # leader dead-letters
        (r,) = responses(actions)
        assert r.id == "r1" and r.error.code is ErrorCode.DEAD_LETTER
        # The follower is not failed by proxy: it was re-queued and
        # runs on its own as soon as a worker appears.
        (d,) = dispatches(core.register_worker("w1", 0.3))
        assert d.message["id"] == "r2"
        (r,) = responses(
            core.worker_result("w1", "r2", {"ok": True, "result": {}}, 0.5)
        )
        assert r.ok and r.id == "r2"


class TestDrain:
    def test_accepted_work_finishes_during_drain(self):
        core = make_core()
        core.register_worker("w0", 0.0)
        core.submit(req("r1"), 0.0)
        core.begin_drain(0.1)
        (r,) = responses(
            core.worker_result("w0", "r1", {"ok": True, "result": {}}, 0.2)
        )
        assert r.ok
        assert core.is_quiescent()

    def test_abort_remaining_answers_everything(self):
        core = make_core()
        core.register_worker("w0", 0.0)
        core.submit(req("r1"), 0.0)  # in flight
        core.submit(req("r2"), 0.0)  # queued
        core.begin_drain(0.1)
        actions = core.abort_remaining(0.2)
        assert {k.worker_id for k in kills(actions)} == {"w0"}
        got = {r.id: r.error.code for r in responses(actions)}
        assert got == {
            "r1": ErrorCode.DRAINING,
            "r2": ErrorCode.DRAINING,
        }
        assert core.is_quiescent()


# ----------------------------------------------------------------------
# Satellite: exactly-once under arbitrary interleavings
# ----------------------------------------------------------------------
_OPS = st.lists(
    st.one_of(
        st.tuples(
            st.just("submit"),
            st.sampled_from([0.2, 1.0, 5.0]),  # deadline_s
            st.sampled_from([None, "k1", "k2"]),  # coalesce key
        ),
        st.tuples(st.just("complete_ok")),
        st.tuples(st.just("complete_fault")),
        st.tuples(st.just("complete_cacheio")),
        st.tuples(st.just("crash")),
        st.tuples(st.just("advance"), st.sampled_from([0.05, 0.5, 3.0])),
        st.tuples(st.just("drain")),
    ),
    min_size=1,
    max_size=40,
)

_VALID_CODES = {"ok"} | {code.value for code in ErrorCode}


class _Harness:
    """Drives a ServiceCore with a virtual clock and fake workers.

    The harness is the property test's model of the I/O layer: it
    executes Dispatch/KillWorker/Respond actions, simulates worker
    exits and respawns, and records every response delivered.
    """

    def __init__(self, workers=2):
        self.core = make_core(
            queue_limit=4,
            max_redeliveries=1,
            hang_grace_s=0.5,
            retry=RetryPolicy(max_attempts=2, base_delay_s=0.05, jitter=0.0),
            breaker_failure_threshold=2,
            breaker_cooldown_s=2.0,
        )
        self.now = 0.0
        self.seq = 0
        self.wseq = workers
        self.busy = {}  # worker id -> request id
        self.live = set()
        self.submitted = set()
        self.delivered = {}  # request id -> count
        for i in range(workers):
            self.live.add(f"w{i}")
            self.run(self.core.register_worker(f"w{i}", self.now))

    def run(self, actions):
        queue = list(actions)
        while queue:
            action = queue.pop(0)
            if isinstance(action, Respond):
                rid = action.response.id
                self.delivered[rid] = self.delivered.get(rid, 0) + 1
                code = (
                    "ok"
                    if action.response.ok
                    else action.response.error.code.value
                )
                assert code in _VALID_CODES
            elif isinstance(action, Dispatch):
                assert action.worker_id in self.live
                assert action.worker_id not in self.busy
                self.busy[action.worker_id] = action.message["id"]
            elif isinstance(action, KillWorker):
                # The worker process is terminated; its exit event
                # arrives and a replacement spawns.
                self.busy.pop(action.worker_id, None)
                self.live.discard(action.worker_id)
                queue.extend(
                    self.core.worker_exit(
                        action.worker_id, self.now, reason="killed"
                    )
                )
                queue.extend(self._respawn())

    def _respawn(self):
        wid = f"w{self.wseq}"
        self.wseq += 1
        self.live.add(wid)
        return self.core.register_worker(wid, self.now)

    def apply(self, op):
        kind = op[0]
        if kind == "submit":
            self.seq += 1
            rid = f"r{self.seq}"
            self.submitted.add(rid)
            request = req(rid, deadline_ms=op[1] * 1000.0)
            self.run(self.core.submit(request, self.now, coalesce_key=op[2]))
        elif kind in ("complete_ok", "complete_fault", "complete_cacheio"):
            if not self.busy:
                return
            wid = sorted(self.busy)[0]
            rid = self.busy.pop(wid)
            payload = {
                "complete_ok": {"ok": True, "result": {"x": 1.5}},
                "complete_fault": {
                    "ok": False,
                    "code": "SIMULATION_FAULT",
                    "message": "fault",
                },
                "complete_cacheio": {
                    "ok": False,
                    "code": "CACHE_IO",
                    "message": "disk",
                },
            }[kind]
            self.run(self.core.worker_result(wid, rid, payload, self.now))
        elif kind == "crash":
            if not self.live:
                return
            wid = sorted(self.live)[0]
            self.live.discard(wid)
            self.busy.pop(wid, None)
            self.run(
                self.core.worker_exit(wid, self.now, reason="crash")
            )
            self.run(self._respawn())
        elif kind == "advance":
            self.now += op[1]
            self.run(self.core.tick(self.now))
        elif kind == "drain":
            self.core.begin_drain(self.now)

    def finish(self):
        self.core.begin_drain(self.now)
        self.now += 0.1
        self.run(self.core.abort_remaining(self.now))


@settings(max_examples=60, deadline=None)
@given(ops=_OPS)
def test_exactly_once_under_arbitrary_interleavings(ops):
    harness = _Harness()
    for op in ops:
        harness.apply(op)
    harness.finish()
    assert harness.core.is_quiescent()
    # Every submitted request was answered exactly once with a valid
    # typed outcome — no losses, no duplicates, regardless of how
    # deaths, deadlines, retries and drain interleaved.
    assert set(harness.delivered) == harness.submitted
    assert all(count == 1 for count in harness.delivered.values())
    for rid in harness.submitted:
        assert harness.core.outcome(rid) in _VALID_CODES


class TestLedgerBounds:
    """The exactly-once ledger and dead letters are bounded (a
    long-lived service must not grow per-request state forever)."""

    def _resolve(self, core, rid, now):
        core.submit(req(rid), now)
        core.worker_result("w0", rid, {"ok": True, "result": {}}, now)

    def test_responded_ledger_evicts_lru(self):
        core = make_core(responded_ledger_limit=2)
        core.register_worker("w0", 0.0)
        for i, rid in enumerate(["r1", "r2", "r3", "r4"]):
            self._resolve(core, rid, float(i))
        assert core.outcome("r1") is None  # evicted
        assert core.outcome("r2") is None
        assert core.outcome("r3") == "ok"
        assert core.outcome("r4") == "ok"
        # The snapshot's "responded" is the monotonic total, not the
        # (bounded) ledger size.
        snapshot = core.snapshot(4.0)
        assert snapshot["responded"] == 4
        assert snapshot["responded_ledger"] == 2

    def test_evicted_id_may_be_reused(self):
        # Documented semantics: the duplicate-id rejection only spans
        # the remembered window; clients must use fresh ids anyway.
        core = make_core(responded_ledger_limit=1)
        core.register_worker("w0", 0.0)
        self._resolve(core, "r1", 0.0)
        self._resolve(core, "r2", 1.0)  # evicts r1
        actions = core.submit(req("r1"), 2.0)
        assert dispatches(actions)  # accepted again, not INVALID_REQUEST

    def test_pending_ids_never_evicted_from_duplicate_guard(self):
        # Eviction only touches *responded* ids; a still-pending id is
        # guarded by the pending map, so exactly-once survives any
        # ledger size.
        core = make_core(responded_ledger_limit=1)
        core.register_worker("w0", 0.0)
        core.submit(req("r1"), 0.0)
        self._resolve(core, "r2", 0.5)  # churns the tiny ledger
        (r,) = responses(core.submit(req("r1"), 1.0))
        assert r.error.code is ErrorCode.INVALID_REQUEST

    def test_dead_letters_ring_buffer_keeps_total(self):
        core = make_core(
            max_redeliveries=0,
            dead_letter_limit=2,
            breaker_failure_threshold=100,  # keep the breaker out of it
        )
        for i in range(4):
            rid = f"r{i}"
            wid = f"w{i}"
            core.register_worker(wid, float(i))
            core.submit(req(rid), float(i))
            actions = core.worker_exit(wid, float(i) + 0.1, reason="crash")
            (r,) = responses(actions)
            assert r.error.code is ErrorCode.DEAD_LETTER
        assert core.dead_letter_total == 4
        assert [rec["request_id"] for rec in core.dead_letters] == [
            "r2",
            "r3",
        ]
        assert core.snapshot(5.0)["dead_letters"] == 4
