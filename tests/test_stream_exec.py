"""Streamed compile/execute pipeline: chunk-boundary invariance.

The streaming contract (``src/repro/core/stream.py``) is that chunking
is *unobservable* in the results: for any chunk size, a streamed run's
``RunStats``, word-store contents, and emitted spans are bit-identical
to the phased ``to_trace -> materialize -> execute_trace`` sequence on
both the vector engine and the scalar reference.  Hypothesis drives
random task shapes through chunk sizes spanning the degenerate cases
(one record per chunk, a prime stride, a typical stride, and a chunk
larger than the whole trace); a parametrized sweep covers every shipped
workload generator.

The second half pins the producer-side invariant: chunks are cut only
at operation boundaries (a multi-record op group never splits across
chunks), drains without a boundary yield nothing, and a drained
builder refuses ``build()``.
"""

import numpy as np
import pytest

from repro.cli import _check_specs
from repro.core.device import StreamPIMDevice
from repro.core.stream import (
    iter_trace_chunks,
    run_stream,
    task_chunk_producer,
)
from repro.core.task import PimTask, TaskOp
from repro.isa.columnar import (
    ColumnarTrace,
    ColumnarTraceBuilder,
    TRAN_BYTE,
)
from repro.obs import Collector

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

#: The degenerate chunk sizes the contract must survive; None stands
#: for "larger than the whole trace" (resolved per-test).
CHUNK_SIZES = (1, 7, 64, None)
_HUGE_CHUNK = 1 << 30

_SETTINGS = settings(max_examples=15, deadline=None)


def _build_task(device, seed, m, k, n, with_add, with_scale, with_matvec):
    """A deterministic random task covering every op record shape."""
    rng = np.random.default_rng(seed)
    task = PimTask(device)
    task.add_matrix("A", rng.integers(0, 50, size=(m, k)))
    task.add_matrix("B", rng.integers(0, 50, size=(k, n)))
    task.add_matrix("C", shape=(m, n))
    task.add_operation(TaskOp.MATMUL, "A", "B", "C")
    if with_add:
        task.add_matrix("D", rng.integers(0, 50, size=(m, n)))
        task.add_matrix("E", shape=(m, n))
        task.add_operation(TaskOp.MAT_ADD, "C", "D", "E")
    if with_scale:
        task.add_scalar("alpha", int(rng.integers(1, 9)))
        task.add_matrix("F", shape=(m, n))
        task.add_operation(TaskOp.MAT_SCALE, "C", "F", scalar="alpha")
    if with_matvec:
        task.add_vector("x", rng.integers(0, 50, size=k))
        task.add_matrix("y", shape=(1, m))
        task.add_operation(TaskOp.MATVEC, "A", "x", "y")
    return task


def _phased(make_task, engine):
    """Reference run: full lowering, then one phased execution."""
    device = StreamPIMDevice()
    collector = Collector()
    device.observe(collector)
    task = make_task(device)
    trace = task.to_trace()
    task.materialize()
    stats = device.execute_trace(
        trace, workload="stream", functional=True, engine=engine
    )
    return stats, dict(device.store._words), collector.spans, trace


def _streamed(make_task, chunk_vpcs):
    """Streamed run: chunks execute as lowering produces them."""
    device = StreamPIMDevice()
    collector = Collector()
    device.observe(collector)
    task = make_task(device)
    result, telemetry = run_stream(
        device,
        task_chunk_producer(task, chunk_vpcs=chunk_vpcs),
        workload="stream",
        functional=True,
    )
    return result, dict(device.store._words), collector.spans, telemetry


class TestChunkBoundaryInvariance:
    """Chunking is unobservable: streamed == phased == scalar."""

    @_SETTINGS
    @given(
        seed=st.integers(0, 2**32 - 1),
        m=st.integers(1, 5),
        k=st.integers(1, 5),
        n=st.integers(1, 5),
        with_add=st.booleans(),
        with_scale=st.booleans(),
        with_matvec=st.booleans(),
        chunk=st.sampled_from(CHUNK_SIZES),
    )
    def test_random_tasks(
        self, seed, m, k, n, with_add, with_scale, with_matvec, chunk
    ):
        def make_task(device):
            return _build_task(
                device, seed, m, k, n, with_add, with_scale, with_matvec
            )

        ref_stats, ref_store, ref_spans, ref_trace = _phased(
            make_task, "vector"
        )
        chunk_vpcs = chunk if chunk is not None else _HUGE_CHUNK
        result, store, spans, telemetry = _streamed(make_task, chunk_vpcs)

        assert result.stats == ref_stats
        assert store == ref_store
        assert spans == ref_spans
        assert result.trace == ref_trace
        if chunk == 1:
            # One record per chunk still cuts only at op boundaries:
            # chunk count equals op count, not record count.
            ops = 1 + with_add + with_scale + with_matvec
            assert result.chunks == ops
        if chunk is None:
            assert result.chunks == 1

        scalar_stats, scalar_store, _, _ = _phased(make_task, "scalar")
        assert result.stats == scalar_stats
        assert store == scalar_store

    @pytest.mark.parametrize(
        "spec", list(_check_specs(0.01)), ids=lambda spec: spec.name
    )
    def test_shipped_workloads(self, spec):
        def make_task(device):
            return spec.build_task(device)

        try:
            ref_stats, ref_store, ref_spans, ref_trace = _phased(
                make_task, "vector"
            )
        except ValueError as exc:
            # Generators the functional model rejects (power_iter's
            # negative intermediates) must be rejected identically by
            # the streamed path.
            with pytest.raises(ValueError) as excinfo:
                _streamed(make_task, 64)
            assert str(excinfo.value) == str(exc)
            return
        result, store, spans, _ = _streamed(make_task, 64)
        assert result.stats == ref_stats
        assert store == ref_store
        assert spans == ref_spans
        assert result.trace == ref_trace


class TestOpBoundaryChunks:
    """Chunks are cut at operation boundaries, never inside an op."""

    def _three_op_task(self, device):
        return _build_task(
            device, 11, 3, 4, 2,
            with_add=True, with_scale=True, with_matvec=False,
        )

    def test_chunk_per_op_at_min_size(self):
        task = self._three_op_task(StreamPIMDevice())
        chunks = list(task.to_trace_chunks(chunk_vpcs=1))
        assert len(chunks) == 3
        reference = self._three_op_task(StreamPIMDevice()).to_trace()
        merged = np.concatenate([chunk.records for chunk in chunks])
        assert ColumnarTrace(merged) == reference

    def test_huge_chunk_yields_whole_trace(self):
        task = self._three_op_task(StreamPIMDevice())
        chunks = list(task.to_trace_chunks(chunk_vpcs=_HUGE_CHUNK))
        assert len(chunks) == 1
        reference = self._three_op_task(StreamPIMDevice()).to_trace()
        assert chunks[0] == reference

    def test_chunk_vpcs_must_be_positive(self):
        task = self._three_op_task(StreamPIMDevice())
        with pytest.raises(ValueError):
            list(task.to_trace_chunks(chunk_vpcs=0))
        with pytest.raises(ValueError):
            list(iter_trace_chunks(ColumnarTrace.from_trace([]), 0))

    def test_drain_waits_for_op_boundary(self):
        builder = ColumnarTraceBuilder()
        builder.emit(TRAN_BYTE, 0, None, 100, 4)
        builder.emit(TRAN_BYTE, 4, None, 200, 4)
        # Records are buffered but no op has finished: nothing drains.
        assert list(builder.drain_chunks(min_records=1)) == []
        assert builder.pending_records() == 0
        builder.mark_op_boundary()
        assert builder.pending_records() == 2
        [chunk] = list(builder.drain_chunks(min_records=1))
        assert len(chunk) == 2

    def test_min_records_and_force(self):
        builder = ColumnarTraceBuilder()
        builder.emit(TRAN_BYTE, 0, None, 100, 4)
        builder.mark_op_boundary()
        assert list(builder.drain_chunks(min_records=5)) == []
        [chunk] = list(builder.drain_chunks(min_records=5, force=True))
        assert len(chunk) == 1
        with pytest.raises(ValueError):
            list(builder.drain_chunks(min_records=0))

    def test_build_after_drain_raises(self):
        builder = ColumnarTraceBuilder()
        builder.emit(TRAN_BYTE, 0, None, 100, 4)
        builder.mark_op_boundary()
        list(builder.drain_chunks(min_records=1))
        with pytest.raises(RuntimeError):
            builder.build()
