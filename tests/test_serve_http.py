"""HTTP/REST adapter tests.

Three layers, cheapest first: the ErrorCode→HTTP-status table, the
routing/parsing logic against a stub server (no sockets), and one live
end-to-end class that boots the real service with ``--http-port 0``
and speaks actual HTTP/1.1 at it with ``http.client``.
"""

import asyncio
import http.client
import json
import os
import re
import subprocess
import sys
import time

import pytest

from repro.serve.http import HttpFrontend, _BadRequest
from repro.serve.protocol import (
    HTTP_STATUS,
    ErrorCode,
    Response,
    ServeError,
    http_status,
)

SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


class TestStatusMap:
    def test_issue_mandated_mappings(self):
        assert HTTP_STATUS[ErrorCode.RATE_LIMITED] == 429
        assert HTTP_STATUS[ErrorCode.QUEUE_FULL] == 503
        assert HTTP_STATUS[ErrorCode.DEADLINE_EXCEEDED] == 504

    def test_every_code_has_a_mapping(self):
        for code in ErrorCode:
            assert 400 <= HTTP_STATUS[code] <= 599, code

    def test_helper_defaults_to_500(self):
        assert http_status(ErrorCode.INTERNAL) == 500
        assert http_status("not-a-code") == 500

    def test_client_faults_are_4xx_server_faults_5xx(self):
        assert http_status(ErrorCode.INVALID_REQUEST) == 400
        assert http_status(ErrorCode.UNKNOWN_WORKLOAD) == 404
        assert http_status(ErrorCode.CIRCUIT_OPEN) == 503
        assert http_status(ErrorCode.WORKER_CRASH) == 502


class _FakeServer:
    """Stub of SimulationServer: scripted sink answers, call recording."""

    def __init__(self, answer=None):
        self.answer = answer or (
            lambda request: Response.success(request.id, {"echo": True})
        )
        self.submitted = []
        self.drained = False

    def stats(self, now):
        return {"server": {"fake": True}}

    def request_drain(self):
        self.drained = True

    def submit_request(self, request, sink, now):
        self.submitted.append(request)
        sink(self.answer(request))


def route(frontend, method, path, body=b""):
    return asyncio.run(frontend._route(method, path, body))


class TestRouting:
    def test_stats_get(self):
        status, payload = route(
            HttpFrontend(_FakeServer()), "GET", "/v1/stats"
        )
        assert status == 200
        assert payload == {"server": {"fake": True}}

    def test_stats_wrong_verb(self):
        status, _ = route(HttpFrontend(_FakeServer()), "POST", "/v1/stats")
        assert status == 405

    def test_drain_accepted(self):
        fake = _FakeServer()
        status, payload = route(HttpFrontend(fake), "POST", "/v1/drain")
        assert status == 202 and payload == {"draining": True}
        assert fake.drained

    def test_unknown_route_404(self):
        status, _ = route(HttpFrontend(_FakeServer()), "GET", "/v2/run")
        assert status == 404

    def test_query_string_is_ignored_for_routing(self):
        status, _ = route(
            HttpFrontend(_FakeServer()), "GET", "/v1/stats?pretty=1"
        )
        assert status == 200

    def test_run_success_is_200_with_envelope(self):
        fake = _FakeServer()
        status, payload = route(
            HttpFrontend(fake),
            "POST",
            "/v1/run",
            json.dumps(
                {"id": "r1", "params": {"workload": "atax"}, "tenant": "t9"}
            ).encode(),
        )
        assert status == 200
        assert payload["id"] == "r1" and payload["ok"]
        (request,) = fake.submitted
        assert request.method == "run"
        assert request.tenant == "t9"
        assert request.params == {"workload": "atax"}

    def test_compile_path_sets_method(self):
        fake = _FakeServer()
        route(HttpFrontend(fake), "POST", "/v1/compile", b"{}")
        assert fake.submitted[0].method == "compile"

    def test_generated_ids_are_unique(self):
        fake = _FakeServer()
        frontend = HttpFrontend(fake)
        route(frontend, "POST", "/v1/run", b"{}")
        route(frontend, "POST", "/v1/run", b"{}")
        ids = [r.id for r in fake.submitted]
        assert len(set(ids)) == 2 and all(ids)

    @pytest.mark.parametrize(
        "body",
        [
            b"not json",
            b"[1,2]",
            b'{"params": 7}',
            b'{"id": 9}',
            b'{"tenant": ""}',
            b'{"deadline_ms": -5}',
        ],
    )
    def test_malformed_bodies_are_400(self, body):
        status, payload = route(
            HttpFrontend(_FakeServer()), "POST", "/v1/run", body
        )
        assert status == 400
        assert "error" in payload

    @pytest.mark.parametrize(
        ("code", "want"),
        [
            (ErrorCode.RATE_LIMITED, 429),
            (ErrorCode.QUEUE_FULL, 503),
            (ErrorCode.DEADLINE_EXCEEDED, 504),
            (ErrorCode.UNKNOWN_WORKLOAD, 404),
        ],
    )
    def test_core_rejections_map_to_http_status(self, code, want):
        fake = _FakeServer(
            answer=lambda request: Response.failure(
                request.id, ServeError(code=code, message="no")
            )
        )
        status, payload = route(
            HttpFrontend(fake), "POST", "/v1/run", b"{}"
        )
        assert status == want
        assert payload["error"]["code"] == code.value


class TestRequestParsing:
    def parse(self, raw):
        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(raw)
            reader.feed_eof()
            return await HttpFrontend(_FakeServer())._read_request(reader)

        return asyncio.run(go())

    def test_minimal_get(self):
        method, path, headers, body = self.parse(
            b"GET /v1/stats HTTP/1.1\r\nHost: x\r\n\r\n"
        )
        assert (method, path, body) == ("GET", "/v1/stats", b"")
        assert headers["host"] == "x"

    def test_body_read_by_content_length(self):
        *_, body = self.parse(
            b"POST /v1/run HTTP/1.1\r\nContent-Length: 4\r\n\r\n{}{}"
        )
        assert body == b"{}{}"

    def test_clean_eof_is_none(self):
        assert self.parse(b"") is None

    @pytest.mark.parametrize(
        ("raw", "status"),
        [
            (b"GET /v1/stats\r\n\r\n", 400),  # no HTTP version
            (b"GARBAGE\r\n\r\n", 400),
            (b"GET / HTTP/1.1\r\nContent-Length: zap\r\n\r\n", 400),
            (b"GET / HTTP/1.1\r\nContent-Length: -1\r\n\r\n", 413),
            (b"GET / HTTP/1.1\r\nContent-Length: 9\r\n\r\nshort", 400),
            (b"truncated head no terminator", 400),
        ],
    )
    def test_malformed_heads_raise_with_status(self, raw, status):
        with pytest.raises(_BadRequest) as err:
            self.parse(raw)
        assert err.value.status == status


@pytest.fixture(scope="class")
def live_http(tmp_path_factory):
    """Real service with both frontends; yields the bound HTTP port."""
    root = tmp_path_factory.mktemp("serve-http")
    socket_path = str(root / "serve.sock")
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    env["REPRO_STREAMPIM_CACHE_DIR"] = str(root / "cache")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--socket",
            socket_path,
            "--http-port",
            "0",
            "--workers",
            "2",
            "--cache-dir",
            str(root / "cache"),
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    try:
        line = proc.stdout.readline()
        match = re.search(r"http://127\.0\.0\.1:(\d+)", line)
        if not match:
            raise RuntimeError(f"no http endpoint in ready line: {line!r}")
        yield int(match.group(1)), proc
    finally:
        if proc.poll() is None:
            proc.terminate()
            proc.wait(timeout=15)


def http_call(port, method, path, obj=None, timeout=60.0):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        body = json.dumps(obj).encode() if obj is not None else None
        conn.request(method, path, body=body)
        response = conn.getresponse()
        return response.status, json.loads(response.read().decode())
    finally:
        conn.close()


class TestLiveHttp:
    def test_stats_round_trip(self, live_http):
        port, _ = live_http
        status, payload = http_call(port, "GET", "/v1/stats")
        assert status == 200
        assert len(payload["pool"]["workers"]) == 2

    def test_run_matches_in_process_execution(self, live_http):
        from repro.serve.supervisor import execute_request

        port, _ = live_http
        params = {"workload": "atax", "platform": "StPIM", "scale": 0.01}
        status, payload = http_call(
            port, "POST", "/v1/run", {"id": "h1", "params": params}
        )
        assert status == 200 and payload["ok"]
        local = execute_request("run", params, None, {})
        assert payload["result"] == local["result"]

    def test_unknown_workload_is_404_with_typed_error(self, live_http):
        port, _ = live_http
        status, payload = http_call(
            port, "POST", "/v1/run", {"params": {"workload": "nope"}}
        )
        assert status == 404
        assert payload["error"]["code"] == ErrorCode.UNKNOWN_WORKLOAD.value

    def test_unknown_route_is_404(self, live_http):
        port, _ = live_http
        status, _ = http_call(port, "GET", "/nope")
        assert status == 404

    def test_zz_drain_shuts_the_service_down(self, live_http):
        # Named zz: runs last in the class; the fixture's finally
        # tolerates the process already being gone.
        port, proc = live_http
        status, payload = http_call(port, "POST", "/v1/drain")
        assert status == 202 and payload == {"draining": True}
        assert proc.wait(timeout=30) == 0
