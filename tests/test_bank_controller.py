"""Tests for the bank controller's VPC decode (Fig. 14)."""

import pytest

from repro.core.bank_controller import BankController, DecodedVPC
from repro.isa.vpc import BankOp, VPC, VPCOpcode
from repro.rm.address import AddressMap


@pytest.fixture
def controller(small_geometry):
    return BankController(small_geometry)


@pytest.fixture
def amap(small_geometry):
    return AddressMap(small_geometry)


class TestComputeDecode:
    def test_local_dot_product_sequence(self, controller, amap):
        """The paper's decode: transfer-in, compute groups, transfer-out."""
        base = amap.subarray_base(0, 0)
        decoded = controller.decode(VPC.mul(base, base + 32, base + 64, 8))
        ops = [c.op for c in decoded.commands]
        assert ops == [
            BankOp.TRANSFER_IN,
            BankOp.COMPUTE,
            BankOp.TRANSFER_OUT,
        ]

    def test_home_is_first_operand_subarray(self, controller, amap):
        base = amap.subarray_base(0, 2)
        decoded = controller.decode(VPC.add(base, base + 8, base + 16, 4))
        assert decoded.home == (0, 2)
        assert all(c.subarray == 2 for c in decoded.commands)

    def test_remote_operand_prepended_read_write(self, controller, amap):
        here = amap.subarray_base(0, 0)
        there = amap.subarray_base(0, 1)
        decoded = controller.decode(VPC.mul(here, there, here + 64, 8))
        ops = [c.op for c in decoded.commands]
        assert ops[:2] == [BankOp.READ, BankOp.WRITE]
        assert decoded.commands[0].subarray == 1  # read at the source
        assert decoded.commands[1].subarray == 0  # write at home

    def test_remote_destination_appended_copy(self, controller, amap):
        here = amap.subarray_base(0, 0)
        there = amap.subarray_base(0, 3)
        decoded = controller.decode(VPC.mul(here, here + 32, there, 8))
        ops = [c.op for c in decoded.commands]
        assert ops[-2:] == [BankOp.READ, BankOp.WRITE]
        assert decoded.commands[-1].subarray == 3

    def test_mul_result_is_scalar(self, controller, amap):
        base = amap.subarray_base(0, 0)
        decoded = controller.decode(VPC.mul(base, base + 32, base + 64, 16))
        transfer_out = [
            c for c in decoded.commands if c.op is BankOp.TRANSFER_OUT
        ]
        assert transfer_out[0].elements == 1

    def test_add_result_is_vector(self, controller, amap):
        base = amap.subarray_base(0, 0)
        decoded = controller.decode(VPC.add(base, base + 32, base + 64, 16))
        transfer_out = [
            c for c in decoded.commands if c.op is BankOp.TRANSFER_OUT
        ]
        assert transfer_out[0].elements == 16

    def test_transfer_in_covers_both_operands(self, controller, amap):
        base = amap.subarray_base(0, 0)
        decoded = controller.decode(VPC.mul(base, base + 32, base + 64, 16))
        transfer_in = [
            c for c in decoded.commands if c.op is BankOp.TRANSFER_IN
        ]
        assert transfer_in[0].elements == 32


class TestTranDecode:
    def test_local_tran_is_pure_shift(self, controller, amap):
        base = amap.subarray_base(0, 0)
        decoded = controller.decode(VPC.tran(base, base + 32, 8))
        ops = [c.op for c in decoded.commands]
        assert ops == [BankOp.TRANSFER_IN, BankOp.TRANSFER_OUT]
        assert not decoded.rw_commands

    def test_cross_subarray_tran_is_read_write(self, controller, amap):
        src = amap.subarray_base(0, 0)
        dst = amap.subarray_base(1, 0)
        decoded = controller.decode(VPC.tran(src, dst, 8))
        ops = [c.op for c in decoded.commands]
        assert ops == [BankOp.READ, BankOp.WRITE]
        assert decoded.commands[0].bank == 0
        assert decoded.commands[1].bank == 1


class TestFilters:
    def test_rw_pim_partition(self, controller, amap):
        here = amap.subarray_base(0, 0)
        there = amap.subarray_base(0, 1)
        decoded = controller.decode(VPC.mul(here, there, there, 8))
        assert set(decoded.rw_commands) | set(decoded.pim_commands) == set(
            decoded.commands
        )
        assert all(c.uses_rw for c in decoded.rw_commands)
        assert not any(c.uses_rw for c in decoded.pim_commands)

    def test_decode_many_counts(self, controller, amap):
        base = amap.subarray_base(0, 0)
        vpcs = [VPC.add(base, base + 8, base + 16, 4) for _ in range(5)]
        decoded = controller.decode_many(vpcs)
        assert len(decoded) == 5
        assert controller.decoded_count == 5

    def test_decode_agrees_with_event_mode_energy_classes(
        self, controller, amap, small_device
    ):
        """Commands classified rw by the decode are exactly the ones the
        event-driven device charges read/write energy for."""
        from repro.isa.trace import VPCTrace

        here = amap.subarray_base(0, 0)
        there = amap.subarray_base(0, 1)
        local = VPC.mul(here, here + 32, here + 64, 8)
        remote = VPC.mul(here, there, here + 64, 8)

        assert not controller.decode(local).rw_commands
        assert controller.decode(remote).rw_commands

        stats_local = small_device.execute_trace(
            VPCTrace([local]), functional=False
        )
        assert stats_local.energy.read_pj == 0.0

        import repro.core.device as device_mod

        fresh = device_mod.StreamPIMDevice(small_device.config)
        stats_remote = fresh.execute_trace(
            VPCTrace([remote]), functional=False
        )
        assert stats_remote.energy.read_pj > 0.0
