"""Static trace verifier: every SPV rule, positive and negative."""

import io

import pytest

from repro.core.device import StreamPIMConfig, StreamPIMDevice
from repro.core.placement import (
    MatrixHandle,
    PlacementPlan,
    PlacementPolicy,
    RowSlice,
)
from repro.isa.trace import VPCTrace, write_trace, write_trace_binary
from repro.isa.vpc import VPC
from repro.rm.address import AddressMap, DeviceGeometry
from repro.verify import (
    Severity,
    TraceVerificationError,
    TraceVerifier,
    verify_trace,
)


@pytest.fixture
def geometry(small_geometry):
    return small_geometry


@pytest.fixture
def amap(geometry):
    return AddressMap(geometry)


def rules_of(report):
    return set(report.rule_ids())


class TestBounds:
    def test_clean_trace_passes(self, geometry, amap):
        base = amap.subarray_base(0, 0)
        trace = VPCTrace([VPC.mul(base, base + 8, base + 16, 4)])
        report = verify_trace(trace, geometry=geometry)
        assert report.ok(strict=True)
        assert not report.diagnostics

    def test_spv001_out_of_device(self, geometry, amap):
        end = amap.total_words
        trace = VPCTrace([VPC.tran(end + 10, 0, 4)])
        report = verify_trace(trace, geometry=geometry)
        assert "SPV001" in rules_of(report)
        assert not report.ok()

    def test_spv001_range_runs_past_end(self, geometry, amap):
        # Start is in bounds; start + size is not.
        trace = VPCTrace([VPC.tran(amap.total_words - 2, 0, 8)])
        report = verify_trace(trace, geometry=geometry)
        assert "SPV001" in rules_of(report)

    def test_spv002_crosses_subarray(self, geometry, amap):
        base = amap.subarray_base(0, 0)
        cap = amap.words_per_subarray
        trace = VPCTrace([VPC.tran(base + cap - 2, base, 4)])
        report = verify_trace(trace, geometry=geometry)
        assert "SPV002" in rules_of(report)
        # Subarray overflow is a warning: fails only under strict.
        assert report.ok()
        assert not report.ok(strict=True)

    def test_diagnostic_carries_index_and_hint(self, geometry, amap):
        trace = VPCTrace(
            [
                VPC.tran(amap.subarray_base(0, 0), amap.subarray_base(0, 1), 2),
                VPC.tran(amap.total_words, 0, 1),
            ]
        )
        report = verify_trace(trace, geometry=geometry)
        (diag,) = report.by_rule("SPV001")
        assert diag.index == 1
        assert diag.hint
        assert diag.severity is Severity.ERROR
        assert "vpc #1" in diag.render()


class TestOverlap:
    def test_spv003_des_inside_source(self, geometry, amap):
        base = amap.subarray_base(0, 0)
        trace = VPCTrace([VPC.add(base, base + 16, base + 4, 8)])
        report = verify_trace(trace, geometry=geometry)
        assert "SPV003" in rules_of(report)
        assert not report.ok()

    def test_spv003_partial_tran_overlap(self, geometry, amap):
        base = amap.subarray_base(0, 0)
        trace = VPCTrace([VPC.tran(base, base + 2, 4)])
        report = verify_trace(trace, geometry=geometry)
        assert "SPV003" in rules_of(report)

    def test_identity_tran_is_defined(self, geometry, amap):
        base = amap.subarray_base(0, 0)
        trace = VPCTrace([VPC.tran(base, base, 3)])
        report = verify_trace(trace, geometry=geometry)
        assert report.ok(strict=True)

    def test_aligned_inplace_add_is_defined(self, geometry, amap):
        # C = C + B with C read and written at the same aligned range
        # (the MLP bias add) is element-wise defined.
        base = amap.subarray_base(0, 0)
        trace = VPCTrace([VPC.add(base, base + 32, base, 8)])
        report = verify_trace(trace, geometry=geometry)
        assert report.ok(strict=True)


class TestHazards:
    def test_spv004_raw_between_adjacent_computes(self, geometry, amap):
        base = amap.subarray_base(0, 0)
        trace = VPCTrace(
            [
                VPC.mul(base, base + 8, base + 16, 4),
                VPC.add(base + 16, base + 32, base + 48, 4),
            ]
        )
        report = verify_trace(trace, geometry=geometry)
        (diag,) = report.by_rule("SPV004")
        assert "RAW" in diag.message
        assert report.ok() and not report.ok(strict=True)

    def test_spv004_waw_and_war(self, geometry, amap):
        base = amap.subarray_base(0, 0)
        # vpc1 writes [base+8, base+20): over vpc0's src2 read (WAR) and
        # its destination (WAW), without reading anything vpc0 wrote.
        trace = VPCTrace(
            [
                VPC.add(base, base + 8, base + 16, 4),
                VPC.add(base + 64, base + 96, base + 8, 12),
            ]
        )
        report = verify_trace(trace, geometry=geometry)
        (diag,) = report.by_rule("SPV004")
        assert "WAR" in diag.message
        assert "WAW" in diag.message
        assert "RAW" not in diag.message

    def test_no_hazard_outside_window(self, geometry, amap):
        base = amap.subarray_base(0, 0)
        filler = [
            VPC.tran(base + 64 + 8 * i, base + 128 + 8 * i, 4)
            for i in range(4)
        ]
        trace = VPCTrace(
            [VPC.mul(base, base + 8, base + 16, 4)]
            + filler
            + [VPC.add(base + 16, base + 32, base + 48, 4)]
        )
        report = verify_trace(trace, geometry=geometry)
        assert not report.by_rule("SPV004")

    def test_tran_never_hazards(self, geometry, amap):
        # Move-VPCs go through the blocking read/write path, not the
        # processor pipeline: MUL -> TRAN(result) at distance 1 is the
        # generator's collection idiom and must stay clean.
        base = amap.subarray_base(0, 0)
        trace = VPCTrace(
            [
                VPC.mul(base, base + 8, base + 16, 4),
                VPC.tran(base + 16, base + 32, 1),
            ]
        )
        report = verify_trace(trace, geometry=geometry)
        assert report.ok(strict=True)

    def test_window_is_configurable(self, geometry, amap):
        base = amap.subarray_base(0, 0)
        trace = VPCTrace(
            [
                VPC.mul(base, base + 8, base + 16, 4),
                VPC.tran(base + 64, base + 96, 4),
                VPC.add(base + 16, base + 32, base + 48, 4),
            ]
        )
        wide = verify_trace(trace, geometry=geometry, hazard_window=8)
        narrow = verify_trace(trace, geometry=geometry, hazard_window=2)
        assert wide.by_rule("SPV004")
        assert not narrow.by_rule("SPV004")


def _plan_with(handles):
    plan = PlacementPlan(policy=PlacementPolicy.DISTRIBUTE)
    for handle in handles:
        plan.matrices[handle.name] = handle
    return plan


def _handle(name, slices, result=False):
    return MatrixHandle(
        name=name,
        rows=len(slices),
        cols=slices[0].length,
        rows_placement=[[piece] for piece in slices],
        result_set=result,
    )


class TestPlacementRules:
    def test_spv005_tran_overwrites_operand(self, geometry, amap):
        base = amap.subarray_base(0, 1)
        plan = _plan_with(
            [
                _handle(
                    "A",
                    [RowSlice(0, 1, base, 0, 16)],
                    result=False,
                )
            ]
        )
        trace = VPCTrace([VPC.tran(amap.subarray_base(0, 0), base + 4, 4)])
        report = verify_trace(trace, geometry=geometry, plan=plan)
        (diag,) = report.by_rule("SPV005")
        assert "'A'" in diag.message
        assert not report.ok()

    def test_tran_into_result_rows_is_fine(self, geometry, amap):
        base = amap.subarray_base(0, 1)
        plan = _plan_with(
            [_handle("C", [RowSlice(0, 1, base, 0, 16)], result=True)]
        )
        trace = VPCTrace([VPC.tran(amap.subarray_base(0, 0), base + 4, 4)])
        report = verify_trace(trace, geometry=geometry, plan=plan)
        assert not report.by_rule("SPV005")

    def test_spv006_double_booked_slice(self, geometry, amap):
        base = amap.subarray_base(0, 2)
        plan = _plan_with(
            [
                _handle("A", [RowSlice(0, 2, base, 0, 16)]),
                _handle("B", [RowSlice(0, 2, base + 8, 0, 16)]),
            ]
        )
        report = verify_trace(VPCTrace(), geometry=geometry, plan=plan)
        (diag,) = report.by_rule("SPV006")
        assert "'A'" in diag.message and "'B'" in diag.message
        assert not report.ok()

    def test_disjoint_slices_pass(self, geometry, amap):
        base = amap.subarray_base(0, 2)
        plan = _plan_with(
            [
                _handle("A", [RowSlice(0, 2, base, 0, 16)]),
                _handle("B", [RowSlice(0, 2, base + 16, 0, 16)]),
            ]
        )
        report = verify_trace(VPCTrace(), geometry=geometry, plan=plan)
        assert report.ok(strict=True)


class TestSegmentLength:
    """SPV007: commanded shift bounded by one RM-bus segment."""

    def _small_bus(self):
        from repro.core.rmbus import RMBusConfig

        # words_per_segment = 16 * (8 // 8) = 16
        return RMBusConfig(
            segment_domains=16,
            length_domains=64,
            width_wires=8,
            word_bits=8,
        )

    def test_oversized_shift_flagged(self, geometry, amap):
        base = amap.subarray_base(0, 0)
        trace = VPCTrace([VPC.tran(base, base + 64, 17)])
        report = verify_trace(
            trace, geometry=geometry, bus=self._small_bus()
        )
        (diag,) = report.by_rule("SPV007")
        assert diag.index == 0
        assert "17 words" in diag.message
        assert "16 words" in diag.message
        assert not report.ok()

    def test_segment_sized_shift_passes(self, geometry, amap):
        base = amap.subarray_base(0, 0)
        trace = VPCTrace([VPC.tran(base, base + 64, 16)])
        report = verify_trace(
            trace, geometry=geometry, bus=self._small_bus()
        )
        assert not report.by_rule("SPV007")

    def test_default_bus_never_flags_shipped_workloads(self):
        from repro.workloads import polybench_workload

        task = polybench_workload("gemm", scale=0.01).build_task()
        verifier = TraceVerifier(
            geometry=task.device.config.geometry, rules=("SPV007",)
        )
        report = verifier.verify(task.to_trace())
        assert report.ok(strict=True)

    def test_columnar_fast_path_matches_scalar_walk(self, geometry, amap):
        from repro.isa.columnar import ColumnarTrace

        base = amap.subarray_base(0, 0)
        end = amap.total_words
        trace = VPCTrace(
            [
                VPC.tran(base, base + 64, 8),
                VPC.tran(base, base + 64, 17),  # SPV007 only
                VPC.tran(end - 4, base, 17),  # SPV001 + SPV007
            ]
        )
        verifier = TraceVerifier(
            geometry=geometry,
            rules=("SPV001", "SPV007"),
            bus=self._small_bus(),
        )
        scalar = verifier.verify(trace)
        columnar = verifier.verify_columnar(
            ColumnarTrace.from_trace(trace)
        )
        assert scalar.diagnostics == columnar.diagnostics
        assert scalar.suppressed == columnar.suppressed
        assert [d.rule_id for d in scalar.diagnostics] == [
            "SPV007",
            "SPV001",
            "SPV007",
        ]

    def test_columnar_fast_path_respects_cap(self, geometry, amap):
        from repro.isa.columnar import ColumnarTrace

        base = amap.subarray_base(0, 0)
        trace = VPCTrace(
            [VPC.tran(base, base + 64, 17) for _ in range(8)]
        )
        verifier = TraceVerifier(
            geometry=geometry,
            rules=("SPV007",),
            bus=self._small_bus(),
            max_diagnostics=3,
        )
        report = verifier.verify_columnar(ColumnarTrace.from_trace(trace))
        assert len(report.diagnostics) == 3
        assert report.suppressed == 5


class TestVerifierMechanics:
    def test_rule_subset(self, geometry, amap):
        base = amap.subarray_base(0, 0)
        trace = VPCTrace([VPC.add(base, base + 16, base + 4, 8)])
        verifier = TraceVerifier(geometry=geometry, rules=("SPV001",))
        assert verifier.verify(trace).ok(strict=True)

    def test_diagnostic_cap(self, geometry, amap):
        bad = amap.total_words
        trace = VPCTrace([VPC.tran(bad, 0, 1) for _ in range(40)])
        verifier = TraceVerifier(geometry=geometry, max_diagnostics=10)
        report = verifier.verify(trace)
        assert len(report.diagnostics) == 10
        assert report.suppressed == 30
        assert "suppressed" in report.render()

    def test_bad_window_rejected(self, geometry):
        with pytest.raises(ValueError):
            TraceVerifier(geometry=geometry, hazard_window=0)

    def test_report_render_mentions_verdict(self, geometry, amap):
        report = verify_trace(VPCTrace(), geometry=geometry)
        assert "PASS" in report.render()


class TestDeviceAutoVerify:
    def test_execute_trace_rejects_out_of_bounds(self, small_device):
        bad = small_device.address_map.total_words
        trace = VPCTrace([VPC.tran(bad, 0, 4)])
        with pytest.raises(TraceVerificationError) as excinfo:
            small_device.execute_trace(trace)
        assert "SPV001" in str(excinfo.value)
        assert excinfo.value.report.by_rule("SPV001")

    def test_verify_flag_skips_the_gate(self, small_device):
        # With the gate off the bad address reaches the address map raw:
        # an IndexError from deep inside instead of a typed report.
        bad = small_device.address_map.total_words
        trace = VPCTrace([VPC.tran(bad, 0, 4)])
        with pytest.raises(IndexError):
            small_device.execute_trace(trace, verify=False)

    def test_semantic_warnings_do_not_block_execution(self, small_device):
        # Only memory-safety (bounds) gates execution; Table II overlap
        # is check-tool territory.
        base = small_device.address_map.subarray_base(0, 0)
        trace = VPCTrace([VPC.add(base, base + 16, base + 4, 8)])
        stats = small_device.execute_trace(trace)
        assert stats.time_ns > 0


class TestWorkloadGeneratorsPassStrict:
    @pytest.mark.parametrize(
        "name", ["gemm", "atax", "bicg", "mvt", "gesu", "2mm"]
    )
    def test_polybench_strict_clean(self, name):
        from repro.workloads import polybench_workload

        spec = polybench_workload(name, scale=0.01)
        task = spec.build_task()
        trace = task.to_trace()
        verifier = TraceVerifier(
            geometry=task.device.config.geometry,
            plan=task.placement_plan,
        )
        report = verifier.verify(trace, subject=spec.name)
        assert report.ok(strict=True), report.render(strict=True)

    def test_dnn_generators_strict_clean(self):
        from repro.workloads.dnn import (
            BERTShape,
            MLPShape,
            bert_spec,
            mlp_spec,
        )

        for spec in (
            mlp_spec(MLPShape(batch=4, layers=(16, 12, 8))),
            bert_spec(
                BERTShape(seq_len=4, hidden=8, ffn=16, heads=2, layers=1)
            ),
        ):
            task = spec.build_task()
            trace = task.to_trace()
            verifier = TraceVerifier(
                geometry=task.device.config.geometry,
                plan=task.placement_plan,
            )
            report = verifier.verify(trace, subject=spec.name)
            assert report.ok(strict=True), report.render(strict=True)


class TestCheckCli:
    def test_check_workload_passes(self, capsys):
        from repro.cli import main

        assert main(["check", "gemm", "--scale", "0.01", "--strict"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_check_flags_seeded_corrupt_trace(self, tmp_path, capsys):
        from repro.cli import main

        amap = AddressMap(DeviceGeometry())
        base = amap.subarray_base(0, 0)
        trace = VPCTrace(
            [
                # out-of-bounds address
                VPC.tran(amap.total_words + 5, base, 4),
                # overlapping src/des
                VPC.add(base, base + 16, base + 4, 8),
            ]
        )
        path = tmp_path / "corrupt.trace"
        write_trace(trace, path)
        assert main(["check", str(path)]) == 1
        out = capsys.readouterr().out
        assert "SPV001" in out
        assert "SPV003" in out
        assert "FAIL" in out

    def test_check_reads_binary_traces(self, tmp_path, capsys):
        from repro.cli import main

        amap = AddressMap(DeviceGeometry())
        base = amap.subarray_base(0, 0)
        trace = VPCTrace([VPC.mul(base, base + 8, base + 16, 4)])
        path = tmp_path / "ok.bin"
        write_trace_binary(trace, path)
        assert main(["check", str(path), "--strict"]) == 0

    def test_check_requires_a_target(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["check"])

    def test_lint_cli_clean_on_repo(self, capsys):
        from repro.cli import main

        assert main(["lint"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_replay_no_verify_flag(self, tmp_path, capsys):
        from repro.cli import main

        amap = AddressMap(DeviceGeometry())
        trace = VPCTrace([VPC.tran(amap.total_words + 5, 0, 1)])
        path = tmp_path / "bad.trace"
        write_trace(trace, path)
        # Gated replay fails with the typed report; --no-verify bypasses
        # the gate, so the raw IndexError from the address map surfaces.
        with pytest.raises(TraceVerificationError):
            main(["replay", str(path)])
        with pytest.raises(IndexError):
            main(["replay", str(path), "--no-verify"])
