"""Tests for the domain-wall nanowire (racetrack) state model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.rm.nanowire import AccessPort, Racetrack, ShiftError


class TestConstruction:
    def test_default_port_in_middle(self):
        track = Racetrack(64)
        assert track.ports[0].position == 32

    def test_rejects_zero_domains(self):
        with pytest.raises(ValueError):
            Racetrack(0)

    def test_rejects_out_of_range_ports(self):
        with pytest.raises(ValueError):
            Racetrack(16, ports=[16])
        with pytest.raises(ValueError):
            Racetrack(16, ports=[-1])

    def test_rejects_empty_port_list(self):
        with pytest.raises(ValueError):
            Racetrack(16, ports=[])

    def test_duplicate_ports_deduplicated(self):
        track = Racetrack(16, ports=[4, 4, 8])
        assert [p.position for p in track.ports] == [4, 8]

    def test_default_overhead_bounded_by_domains(self):
        # Paper: reserved domains never exceed the regular domains.
        track = Racetrack(16, ports=[8])
        assert 0 < track.overhead <= 16

    def test_total_length_includes_overhead(self):
        track = Racetrack(16, overhead=4, ports=[8])
        assert track.total_length == 16 + 2 * 4

    def test_rejects_negative_overhead(self):
        with pytest.raises(ValueError):
            Racetrack(16, overhead=-1)


class TestShift:
    def test_shift_moves_offset(self):
        track = Racetrack(16, overhead=4, ports=[8])
        track.shift(3)
        assert track.offset == 3
        track.shift(-5)
        assert track.offset == -2

    def test_zero_shift_is_noop(self):
        track = Racetrack(16, overhead=4)
        track.shift(0)
        assert track.offset == 0
        assert track.shift_count == 0

    def test_overshift_raises(self):
        track = Racetrack(16, overhead=2, ports=[8])
        with pytest.raises(ShiftError):
            track.shift(3)

    def test_overshift_preserves_state(self):
        track = Racetrack(16, overhead=2, ports=[8])
        track.set(5, 1)
        with pytest.raises(ShiftError):
            track.shift(5)
        assert track.offset == 0
        assert track.get(5) == 1

    def test_shift_count_accumulates_distance(self):
        track = Racetrack(16, overhead=8, ports=[8])
        track.shift(3)
        track.shift(-3)
        assert track.shift_count == 6

    def test_data_preserved_across_shifts(self):
        track = Racetrack(8, overhead=8, ports=[4])
        bits = [1, 0, 1, 1, 0, 0, 1, 0]
        track.load(bits)
        track.shift(5)
        track.shift(-7)
        track.shift(2)
        assert track.dump() == bits


class TestPortAccess:
    def test_write_then_read_roundtrip(self):
        track = Racetrack(16, ports=[8], overhead=16)
        for logical in range(16):
            track.align(logical)
            track.write_at_port(logical % 2)
        for logical in range(16):
            track.align(logical)
            assert track.read_at_port() == logical % 2

    def test_align_returns_distance(self):
        track = Racetrack(16, ports=[8], overhead=16)
        assert track.align(5) == 3  # port 8, bit 5 -> shift by 3
        assert track.align(5) == 0  # already aligned

    def test_nearest_port_picks_closest(self):
        track = Racetrack(64, ports=[16, 48], overhead=32)
        assert track.nearest_port(10) == 0
        assert track.nearest_port(40) == 1

    def test_read_only_port_rejects_write(self):
        track = Racetrack(16, ports=[8], overhead=16)
        track.ports[0] = AccessPort(8, read_only=True)
        with pytest.raises(PermissionError):
            track.write_at_port(1)

    def test_read_counts_increment(self):
        track = Racetrack(16, ports=[8], overhead=16)
        track.align(8)
        track.read_at_port()
        track.write_at_port(1)
        assert track.read_count == 1
        assert track.write_count == 1

    def test_unaligned_port_read_out_of_range_raises(self):
        track = Racetrack(8, ports=[4], overhead=8)
        track.shift(8)  # port now faces logical -4
        with pytest.raises(IndexError):
            track.read_at_port()


class TestTransverseRead:
    def test_counts_set_bits_in_span(self):
        track = Racetrack(16, ports=[4], overhead=16)
        track.load([1, 0, 1, 1, 1, 0, 0, 1] + [0] * 8)
        track.align(0)
        assert track.transverse_read(0, 5) == 4

    def test_single_domain_span(self):
        track = Racetrack(8, ports=[4], overhead=8)
        track.set(4, 1)
        assert track.transverse_read(0, 1) == 1

    def test_span_beyond_end_raises(self):
        track = Racetrack(8, ports=[4], overhead=8)
        with pytest.raises(IndexError):
            track.transverse_read(0, 8)

    def test_rejects_nonpositive_span(self):
        track = Racetrack(8, ports=[4], overhead=8)
        with pytest.raises(ValueError):
            track.transverse_read(0, 0)

    def test_counts_as_one_read_operation(self):
        # The point of TR: one sensing operation for many domains.
        track = Racetrack(16, ports=[2], overhead=16)
        track.transverse_read(0, 8)
        assert track.read_count == 1


class TestDataAccessors:
    def test_load_rejects_wrong_length(self):
        track = Racetrack(8)
        with pytest.raises(ValueError):
            track.load([1, 0])

    def test_set_rejects_non_bit(self):
        track = Racetrack(8)
        with pytest.raises(ValueError):
            track.set(0, 2)

    def test_get_out_of_range(self):
        track = Racetrack(8)
        with pytest.raises(IndexError):
            track.get(8)
        with pytest.raises(IndexError):
            track.get(-1)


@settings(max_examples=50)
@given(
    bits=st.lists(st.integers(min_value=0, max_value=1), min_size=4, max_size=32),
    shifts=st.lists(st.integers(min_value=-3, max_value=3), max_size=10),
)
def test_property_shifts_never_corrupt_data(bits, shifts):
    """Any in-range shift sequence leaves the stored bits intact."""
    n = len(bits)
    track = Racetrack(n, ports=[n // 2], overhead=n)
    track.load(bits)
    for amount in shifts:
        try:
            track.shift(amount)
        except ShiftError:
            pass
    assert track.dump() == bits


@settings(max_examples=50)
@given(
    n=st.integers(min_value=4, max_value=64),
    target=st.data(),
)
def test_property_align_brings_bit_under_port(n, target):
    """After align(i), the logical bit under the port is i."""
    logical = target.draw(st.integers(min_value=0, max_value=n - 1))
    track = Racetrack(n, ports=[n // 2], overhead=n)
    track.set(logical, 1)
    track.align(logical)
    assert track.read_at_port() == 1
