"""Tests for the mat model (save/transfer tracks, word access)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.rm.mat import Mat, MatConfig
from repro.rm.timing import EnergyModel


@pytest.fixture
def mat(small_mat_config):
    return Mat(small_mat_config)


class TestMatConfig:
    def test_defaults_match_table3(self):
        cfg = MatConfig()
        assert cfg.save_tracks == 512
        assert cfg.transfer_tracks == 512
        assert cfg.word_bits == 8

    def test_default_capacity_is_256_kib(self):
        assert MatConfig().capacity_bytes == 256 * 1024

    def test_word_groups(self):
        cfg = MatConfig(save_tracks=32, word_bits=8)
        assert cfg.word_groups == 4

    def test_capacity_words(self, small_mat_config):
        cfg = small_mat_config
        assert cfg.capacity_words == cfg.word_groups * cfg.domains_per_track

    def test_rejects_save_tracks_not_multiple_of_word_bits(self):
        with pytest.raises(ValueError):
            MatConfig(save_tracks=30, word_bits=8)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"save_tracks": 0},
            {"transfer_tracks": -1},
            {"domains_per_track": 0},
            {"word_bits": 0},
            {"ports_per_track": 0},
        ],
    )
    def test_rejects_bad_geometry(self, kwargs):
        with pytest.raises(ValueError):
            MatConfig(**kwargs)


class TestWordAccess:
    def test_write_read_roundtrip(self, mat):
        mat.write_word(0, 5, 0xA7)
        assert mat.read_word(0, 5) == 0xA7

    def test_distinct_groups_independent(self, mat):
        mat.write_word(0, 3, 11)
        mat.write_word(1, 3, 22)
        assert mat.read_word(0, 3) == 11
        assert mat.read_word(1, 3) == 22

    def test_vector_roundtrip(self, mat):
        values = [1, 2, 3, 4, 5, 255, 0, 128]
        mat.write_vector(0, 8, values)
        assert mat.read_vector(0, 8, len(values)) == values

    def test_rejects_oversized_value(self, mat):
        with pytest.raises(ValueError):
            mat.write_word(0, 0, 256)

    def test_rejects_bad_group(self, mat):
        with pytest.raises(IndexError):
            mat.read_word(mat.config.word_groups, 0)

    def test_rejects_bad_index(self, mat):
        with pytest.raises(IndexError):
            mat.read_word(0, mat.config.words_per_group)

    def test_access_charges_energy(self, small_mat_config):
        energy = EnergyModel()
        mat = Mat(small_mat_config, energy=energy)
        mat.write_word(0, 0, 1)
        mat.read_word(0, 0)
        assert energy.n_writes == 1
        assert energy.n_reads == 1
        assert energy.n_shifts >= 0

    def test_far_word_costs_more_shift(self, small_mat_config):
        """Accessing a word far from a port charges more shift energy."""
        e1, e2 = EnergyModel(), EnergyModel()
        ports_stride = (
            small_mat_config.domains_per_track
            // small_mat_config.ports_per_track
        )
        near = ports_stride // 2  # at a port position
        far = 0  # maximally distant from the first port
        Mat(small_mat_config, energy=e1).write_word(0, near, 1)
        Mat(small_mat_config, energy=e2).write_word(0, far, 1)
        assert e2.n_shifts > e1.n_shifts


class TestTransferTracks:
    def test_copy_is_nondestructive(self, mat):
        values = [9, 8, 7, 6]
        mat.write_vector(0, 0, values)
        mat.copy_to_transfer(0, 0, len(values))
        assert mat.read_vector(0, 0, len(values)) == values

    def test_copy_lands_on_transfer_tracks(self, mat):
        mat.write_vector(0, 0, [0xFF, 0x00, 0xAA])
        mat.copy_to_transfer(0, 0, 3)
        word_bits = mat.config.word_bits
        for bit in range(word_bits):
            track = mat.transfer_track(bit)
            assert track.get(0) == (0xFF >> bit) & 1
            assert track.get(2) == (0xAA >> bit) & 1

    def test_copy_charges_only_shift_energy(self, small_mat_config):
        energy = EnergyModel()
        mat = Mat(small_mat_config, energy=energy)
        mat.write_vector(0, 0, [1, 2, 3])
        before = (energy.n_reads, energy.n_writes)
        mat.copy_to_transfer(0, 0, 3)
        assert (energy.n_reads, energy.n_writes) == before
        assert energy.n_shifts > 0

    def test_copy_returns_shift_count(self, mat):
        shifts = mat.copy_to_transfer(0, 0, 4)
        assert shifts == 4 * mat.config.word_bits

    def test_plain_mat_has_no_transfer_path(self, small_mat_config):
        cfg = MatConfig(
            save_tracks=small_mat_config.save_tracks,
            transfer_tracks=0,
            domains_per_track=small_mat_config.domains_per_track,
            word_bits=8,
        )
        mat = Mat(cfg)
        with pytest.raises(RuntimeError):
            mat.copy_to_transfer(0, 0, 1)


class TestLazyInstantiation:
    def test_untouched_mat_has_no_tracks(self, mat):
        assert mat.instantiated_tracks == 0

    def test_word_access_creates_one_group(self, mat):
        mat.write_word(0, 0, 1)
        assert mat.instantiated_tracks == mat.config.word_bits

    def test_track_indices_validated(self, mat):
        with pytest.raises(IndexError):
            mat.save_track(mat.config.save_tracks)
        with pytest.raises(IndexError):
            mat.transfer_track(mat.config.transfer_tracks)


@settings(max_examples=30, deadline=None)
@given(
    values=st.lists(
        st.integers(min_value=0, max_value=255), min_size=1, max_size=16
    ),
    start=st.integers(min_value=0, max_value=40),
)
def test_property_vector_roundtrip(values, start):
    mat = Mat(
        MatConfig(
            save_tracks=8,
            transfer_tracks=8,
            domains_per_track=64,
            word_bits=8,
            ports_per_track=2,
        )
    )
    if start + len(values) > mat.config.words_per_group:
        values = values[: mat.config.words_per_group - start]
    if not values:
        return
    mat.write_vector(0, start, values)
    assert mat.read_vector(0, start, len(values)) == values
