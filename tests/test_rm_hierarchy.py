"""Tests for subarray, bank, address map and whole-device hierarchy."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.rm.address import AddressMap, DeviceGeometry, PhysicalAddress
from repro.rm.bank import Bank, BankConfig
from repro.rm.device import RMDevice
from repro.rm.subarray import Subarray, SubarrayConfig


class TestSubarray:
    def test_capacity(self, small_geometry):
        sub_cfg = small_geometry.bank.subarray
        assert sub_cfg.capacity_bytes == (
            sub_cfg.mats * sub_cfg.mat.capacity_bytes
        )

    def test_pim_mats_have_transfer_tracks(self, small_geometry):
        sub = Subarray(small_geometry.bank.subarray)
        assert sub.mat(0).config.transfer_tracks > 0
        assert sub.mat(1).config.transfer_tracks == 0

    def test_pim_capable_flag(self, small_geometry):
        assert Subarray(small_geometry.bank.subarray).pim_capable
        plain = SubarrayConfig(
            mats=2, pim_mats=0, mat=small_geometry.bank.subarray.mat
        )
        assert not Subarray(plain).pim_capable

    def test_mat_index_validated(self, small_geometry):
        sub = Subarray(small_geometry.bank.subarray)
        with pytest.raises(IndexError):
            sub.mat(sub.config.mats)

    def test_rejects_more_pim_mats_than_mats(self, small_mat_config):
        with pytest.raises(ValueError):
            SubarrayConfig(mats=2, pim_mats=3, mat=small_mat_config)

    def test_row_buffer_hit_miss(self, small_geometry):
        sub = Subarray(small_geometry.bank.subarray)
        assert not sub.activate_row(5)
        assert sub.activate_row(5)
        assert not sub.activate_row(6)
        sub.precharge()
        assert sub.open_row is None

    def test_busy_ledger_serialises(self, small_geometry):
        sub = Subarray(small_geometry.bank.subarray)
        finish = sub.occupy(0.0, 100.0, "pim")
        assert finish == 100.0
        # A later request starting "now" is pushed back.
        finish2 = sub.occupy(50.0, 10.0, "rw")
        assert finish2 == 110.0

    def test_occupy_rejects_unknown_kind(self, small_geometry):
        sub = Subarray(small_geometry.bank.subarray)
        with pytest.raises(ValueError):
            sub.occupy(0.0, 1.0, "dma")

    def test_release_marks_idle(self, small_geometry):
        sub = Subarray(small_geometry.bank.subarray)
        sub.occupy(0.0, 10.0, "pim")
        sub.release_at(5.0)
        assert sub.activity == "pim"
        sub.release_at(10.0)
        assert sub.activity == "idle"


class TestBank:
    def test_lazy_subarrays(self, small_geometry):
        bank = Bank(
            BankConfig(
                subarrays=4,
                subarray=small_geometry.bank.subarray,
                pim_bank=True,
            )
        )
        assert list(bank.iter_instantiated()) == []
        bank.subarray(2)
        assert len(list(bank.iter_instantiated())) == 1

    def test_memory_bank_subarrays_not_pim(self, small_geometry):
        bank = Bank(
            BankConfig(
                subarrays=2,
                subarray=small_geometry.bank.subarray,
                pim_bank=False,
            )
        )
        assert bank.pim_subarrays == 0
        assert not bank.subarray(0).pim_capable

    def test_global_row_buffer(self, small_geometry):
        bank = Bank(BankConfig(subarrays=2, subarray=small_geometry.bank.subarray))
        assert not bank.activate_global_row(3)
        assert bank.activate_global_row(3)
        bank.precharge_global()
        assert bank.global_open_row is None

    def test_subarray_index_validated(self, small_geometry):
        bank = Bank(BankConfig(subarrays=2, subarray=small_geometry.bank.subarray))
        with pytest.raises(IndexError):
            bank.subarray(2)


class TestDeviceGeometry:
    def test_paper_defaults(self):
        geo = DeviceGeometry()
        assert geo.banks == 32
        assert geo.pim_banks == 8
        assert geo.subarrays_per_bank == 64
        assert geo.pim_subarrays == 512
        assert geo.total_subarrays == 2048

    def test_paper_capacity_8gib(self):
        assert DeviceGeometry().capacity_bytes == 8 * 1024**3

    def test_subarray_is_1_2048th_of_capacity(self):
        # Section IV-C: "only 1/2048 of the total memory capacity".
        geo = DeviceGeometry()
        assert (
            geo.bank.subarray.capacity_bytes * 2048 == geo.capacity_bytes
        )

    def test_pim_banks_are_low_indices(self):
        geo = DeviceGeometry()
        assert geo.is_pim_bank(0)
        assert geo.is_pim_bank(7)
        assert not geo.is_pim_bank(8)

    @pytest.mark.parametrize("count", [64, 128, 256, 512, 1024, 2048])
    def test_with_pim_subarrays_even_division(self, count):
        geo = DeviceGeometry().with_pim_subarrays(count)
        assert geo.pim_subarrays == count

    def test_with_pim_subarrays_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            DeviceGeometry().with_pim_subarrays(0)

    def test_rejects_more_pim_banks_than_banks(self):
        with pytest.raises(ValueError):
            DeviceGeometry(banks=4, pim_banks=5)


class TestAddressMap:
    def test_total_words_matches_capacity(self):
        amap = AddressMap()
        geo = DeviceGeometry()
        assert amap.total_words == geo.capacity_bytes  # 8-bit words

    def test_compose_decompose_roundtrip_samples(self):
        amap = AddressMap()
        for linear in (0, 1, 4095, 4096, 123_456_789, amap.total_words - 1):
            assert amap.compose(amap.decompose(linear)) == linear

    def test_decompose_first_word(self):
        loc = AddressMap().decompose(0)
        assert loc == PhysicalAddress(0, 0, 0, 0, 0)

    def test_consecutive_words_share_group(self):
        amap = AddressMap()
        a, b = amap.decompose(100), amap.decompose(101)
        assert (a.bank, a.subarray, a.mat, a.group) == (
            b.bank,
            b.subarray,
            b.mat,
            b.group,
        )
        assert b.word == a.word + 1

    def test_subarray_base(self):
        amap = AddressMap()
        base = amap.subarray_base(1, 2)
        loc = amap.decompose(base)
        assert (loc.bank, loc.subarray, loc.mat, loc.group, loc.word) == (
            1,
            2,
            0,
            0,
            0,
        )

    def test_out_of_range_rejected(self):
        amap = AddressMap()
        with pytest.raises(IndexError):
            amap.decompose(amap.total_words)
        with pytest.raises(IndexError):
            amap.decompose(-1)

    def test_compose_validates_components(self):
        amap = AddressMap()
        with pytest.raises(IndexError):
            amap.compose(PhysicalAddress(99, 0, 0, 0, 0))

    @settings(max_examples=100)
    @given(st.integers(min_value=0))
    def test_property_roundtrip(self, linear):
        amap = AddressMap()
        linear %= amap.total_words
        assert amap.compose(amap.decompose(linear)) == linear

    def test_small_geometry_roundtrip(self, small_geometry):
        amap = AddressMap(small_geometry)
        for linear in range(0, amap.total_words, 97):
            assert amap.compose(amap.decompose(linear)) == linear


class TestRMDevice:
    def test_word_roundtrip_with_latency(self, small_geometry):
        device = RMDevice(small_geometry)
        latency = device.write_word(17, 200)
        assert latency >= device.timing.write_ns
        value, read_latency = device.read_word(17)
        assert value == 200
        assert read_latency >= device.timing.read_ns

    def test_vector_roundtrip(self, small_geometry):
        device = RMDevice(small_geometry)
        device.write_vector(100, [5, 6, 7])
        values, _ = device.read_vector(100, 3)
        assert values == [5, 6, 7]

    def test_energy_accumulates(self, small_geometry):
        device = RMDevice(small_geometry)
        device.write_word(0, 1)
        device.read_word(0)
        assert device.energy.n_writes == 1
        assert device.energy.n_reads == 1

    def test_banks_lazy(self, small_geometry):
        device = RMDevice(small_geometry)
        assert device.instantiated_banks == 0
        device.write_word(0, 1)
        assert device.instantiated_banks == 1

    def test_bank_index_validated(self, small_geometry):
        device = RMDevice(small_geometry)
        with pytest.raises(IndexError):
            device.bank(small_geometry.banks)

    def test_cross_subarray_addresses_land_in_right_place(
        self, small_geometry
    ):
        device = RMDevice(small_geometry)
        base = device.address_map.subarray_base(1, 3)
        device.write_word(base, 42)
        sub = device.bank(1).subarray(3)
        assert sub.mat(0).read_word(0, 0) == 42


class TestGeometryScalingBranch:
    def test_uneven_budget_scales_subarrays_per_bank(self):
        """96 PIM subarrays don't divide into 64-subarray banks, so the
        geometry scales subarrays-per-bank while holding capacity."""
        geo = DeviceGeometry().with_pim_subarrays(96)
        assert geo.pim_subarrays == 96
        assert geo.bank.subarrays == 12
        # Capacity is preserved to within rounding of the track length.
        assert abs(geo.capacity_bytes / 2**30 - 8.0) < 0.01

    def test_impossible_budget_rejected(self):
        with pytest.raises(ValueError):
            DeviceGeometry().with_pim_subarrays(97)  # not divisible

    def test_scaled_geometry_simulates(self):
        from repro.baselines.stpim import StreamPIMPlatform
        from repro.core.device import StreamPIMConfig
        from repro.workloads import polybench_workload

        geo = DeviceGeometry().with_pim_subarrays(96)
        platform = StreamPIMPlatform(StreamPIMConfig(geometry=geo))
        stats = platform.run(polybench_workload("atax", scale=0.05))
        assert stats.time_ns > 0
