"""Tests for the segmented RM bus model."""

import pytest
from hypothesis import given, strategies as st

from repro.core.rmbus import RMBus, RMBusConfig
from repro.rm.timing import RMTimingConfig


class TestConfig:
    def test_paper_defaults(self):
        cfg = RMBusConfig()
        assert cfg.segment_domains == 1024
        assert cfg.n_segments == 4
        assert cfg.words_per_segment == 1024

    def test_segment_count_rounds_up(self):
        cfg = RMBusConfig(segment_domains=1000, length_domains=4096)
        assert cfg.n_segments == 5

    def test_rejects_bus_shorter_than_segment(self):
        with pytest.raises(ValueError):
            RMBusConfig(segment_domains=128, length_domains=64)

    def test_rejects_width_not_multiple_of_word(self):
        with pytest.raises(ValueError):
            RMBusConfig(width_wires=12, word_bits=8)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"segment_domains": 0},
            {"width_wires": 0},
            {"reference_segment": 0},
            {"current_overhead": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RMBusConfig(**kwargs)


class TestTiming:
    def test_fill_equals_segment_hops(self):
        bus = RMBus(RMBusConfig(segment_domains=256, length_domains=4096))
        assert bus.fill_cycles == 16

    def test_single_chunk_costs_fill(self):
        bus = RMBus()
        assert bus.transfer_cycles(100) == bus.fill_cycles

    def test_chunks_arrive_every_two_cycles(self):
        # Data segments alternate with empty segments (Fig. 12).
        bus = RMBus()
        per_seg = bus.config.words_per_segment
        assert (
            bus.transfer_cycles(3 * per_seg)
            == bus.fill_cycles + 2 * bus.streaming_interval()
        )

    def test_smaller_segments_slower_transfer(self):
        # Table V: shrinking the segment size costs time.
        big = RMBus(RMBusConfig(segment_domains=1024))
        small = RMBus(RMBusConfig(segment_domains=64))
        assert small.transfer_cycles(2000) > big.transfer_cycles(2000)

    def test_transfer_ns(self):
        bus = RMBus()
        assert bus.transfer_ns(10) == pytest.approx(
            bus.transfer_cycles(10) * bus.timing.cycle_ns
        )

    def test_rejects_nonpositive_words(self):
        with pytest.raises(ValueError):
            RMBus().transfer_cycles(0)


class TestEnergy:
    def test_energy_nearly_segment_invariant(self):
        """Table V: energy is almost flat across segment sizes."""
        words = 2000
        energies = {
            seg: RMBus(RMBusConfig(segment_domains=seg)).transfer_energy_pj(
                words
            )
            for seg in (64, 256, 512, 1024)
        }
        reference = energies[1024]
        for seg, energy in energies.items():
            assert abs(energy / reference - 1.0) < 0.06, seg

    def test_smaller_segments_marginally_cheaper(self):
        """Table V: energy *decreases* slightly for smaller segments."""
        small = RMBus(RMBusConfig(segment_domains=64)).transfer_energy_pj(4096)
        big = RMBus(RMBusConfig(segment_domains=1024)).transfer_energy_pj(4096)
        assert small < big

    def test_energy_proportional_to_words(self):
        bus = RMBus()
        assert bus.transfer_energy_pj(2000) == pytest.approx(
            2 * bus.transfer_energy_pj(1000)
        )

    def test_shift_operations_counted(self):
        bus = RMBus(RMBusConfig(segment_domains=512, length_domains=4096))
        # 1000 words -> 2 chunks, 8 hops each.
        assert bus.shift_operations(1000) == 16

    def test_longer_bus_costs_more(self):
        short = RMBus(RMBusConfig(length_domains=2048))
        long = RMBus(RMBusConfig(length_domains=8192))
        assert long.transfer_energy_pj(100) > short.transfer_energy_pj(100)

    def test_rejects_nonpositive_words(self):
        with pytest.raises(ValueError):
            RMBus().transfer_energy_pj(0)


@given(
    words=st.integers(min_value=1, max_value=100_000),
    segment=st.sampled_from([64, 128, 256, 512, 1024]),
)
def test_property_transfer_cycles_monotone_in_words(words, segment):
    bus = RMBus(RMBusConfig(segment_domains=segment))
    assert bus.transfer_cycles(words + 1) >= bus.transfer_cycles(words)


@given(words=st.integers(min_value=1, max_value=10_000))
def test_property_fill_lower_bound(words):
    bus = RMBus()
    assert bus.transfer_cycles(words) >= bus.fill_cycles
