"""Operational validation of the closed-form timing algebra.

The analytic mode's costs rest on two formulas: the pipeline latency
``fill + (n-1)*II`` and the bus transfer ``n_segments + (chunks-1)*2``.
These tests prove both against explicit cycle-by-cycle simulations,
including the structural invariants (in-order completion, one-segment
shifts, the data/empty alternation of Fig. 12).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bus_sim import SegmentedBusSimulator
from repro.core.processor import RMProcessor, RMProcessorConfig
from repro.core.rmbus import RMBus, RMBusConfig
from repro.isa.vpc import VPCOpcode
from repro.sim.cycle_sim import PipelineSimulator
from repro.sim.pipeline import PipelineModel, PipelineStage


class TestPipelineSimulator:
    @pytest.mark.parametrize(
        "opcode", [VPCOpcode.MUL, VPCOpcode.SMUL, VPCOpcode.ADD]
    )
    @pytest.mark.parametrize("n", [1, 2, 7, 64, 500])
    def test_processor_pipelines_match_closed_form(self, opcode, n):
        processor = RMProcessor()
        sim = PipelineSimulator(processor.pipeline_for(opcode))
        assert sim.matches_closed_form(n)

    def test_duplicator_variants_match(self):
        for duplicators in (1, 2, 4, 8):
            processor = RMProcessor(RMProcessorConfig(duplicators=duplicators))
            sim = PipelineSimulator(processor.pipeline_for(VPCOpcode.MUL))
            assert sim.matches_closed_form(100), duplicators

    @settings(max_examples=40, deadline=None)
    @given(
        depths=st.lists(st.integers(1, 6), min_size=1, max_size=5),
        intervals=st.lists(st.integers(1, 5), min_size=1, max_size=5),
        n=st.integers(min_value=1, max_value=60),
    )
    def test_property_arbitrary_pipelines_match(self, depths, intervals, n):
        stages = tuple(
            PipelineStage(f"s{i}", depth=d, interval=iv)
            for i, (d, iv) in enumerate(zip(depths, intervals))
        )
        model = PipelineModel(stages)
        assert PipelineSimulator(model).matches_closed_form(n)

    def test_items_complete_in_order(self):
        processor = RMProcessor()
        sim = PipelineSimulator(processor.pipeline_for(VPCOpcode.MUL))
        timelines = sim.simulate(20)
        completions = [t.completion_cycle for t in timelines]
        assert completions == sorted(completions)

    def test_stage_admissions_respect_intervals(self):
        model = PipelineModel((PipelineStage("s", depth=2, interval=3),))
        timelines = PipelineSimulator(model).simulate(5)
        admissions = [t.enter["s"] for t in timelines]
        gaps = [b - a for a, b in zip(admissions, admissions[1:])]
        assert all(gap >= 3 for gap in gaps)

    def test_empty_stream(self):
        model = PipelineModel((PipelineStage("s", depth=1),))
        assert PipelineSimulator(model).total_cycles(0) == 0

    def test_negative_rejected(self):
        model = PipelineModel((PipelineStage("s", depth=1),))
        with pytest.raises(ValueError):
            PipelineSimulator(model).simulate(-1)


class TestBusSimulator:
    @pytest.mark.parametrize(
        "segment,length,words",
        [
            (16, 64, 1),
            (16, 64, 16),
            (16, 64, 40),
            (16, 64, 200),
            (64, 256, 300),
            (256, 4096, 2000),
            (1024, 4096, 2000),
        ],
    )
    def test_matches_closed_form(self, segment, length, words):
        config = RMBusConfig(segment_domains=segment, length_domains=length)
        assert SegmentedBusSimulator(config).matches_closed_form(words)

    @settings(max_examples=30, deadline=None)
    @given(
        segment=st.sampled_from([8, 16, 32, 64]),
        words=st.integers(min_value=1, max_value=400),
    )
    def test_property_matches_closed_form(self, segment, words):
        config = RMBusConfig(segment_domains=segment, length_domains=8 * segment)
        assert SegmentedBusSimulator(config).matches_closed_form(words)

    def test_alternation_invariant(self):
        """Fig. 12: a data segment is always followed by an empty one."""
        config = RMBusConfig(segment_domains=16, length_domains=128)
        log = SegmentedBusSimulator(config).simulate_transfer(200)
        assert log.max_adjacent_data == 1

    def test_chunks_arrive_in_order_every_two_cycles(self):
        config = RMBusConfig(segment_domains=16, length_domains=64)
        log = SegmentedBusSimulator(config).simulate_transfer(64)  # 4 chunks
        gaps = [b - a for a, b in zip(log.arrivals, log.arrivals[1:])]
        assert all(gap == 2 for gap in gaps)

    def test_shift_operation_count_matches_energy_model(self):
        """Each simulated hop is one segment-pair shift operation."""
        config = RMBusConfig(segment_domains=16, length_domains=64)
        log = SegmentedBusSimulator(config).simulate_transfer(48)  # 3 chunks
        assert log.segment_shift_ops == RMBus(config).shift_operations(48)

    def test_rejects_nonpositive_words(self):
        with pytest.raises(ValueError):
            SegmentedBusSimulator().simulate_transfer(0)
