"""Tests for the asynchronous VPC send-response protocol (Fig. 14)."""

import pytest

from repro.core.host_interface import (
    HostProtocolConfig,
    HostProtocolSimulator,
    ProtocolStats,
)
from repro.isa.granularity import HostLinkModel
from repro.isa.trace import VPCTrace
from repro.isa.vpc import VPC
from repro.rm.address import AddressMap


@pytest.fixture(scope="module")
def amap():
    return AddressMap()


def _trace_on_banks(amap, n_banks, count, size=64):
    bases = [amap.subarray_base(b, 0) for b in range(n_banks)]
    return VPCTrace(
        [
            VPC.mul(
                bases[i % n_banks],
                bases[i % n_banks] + 4 * size,
                bases[i % n_banks] + 8 * size,
                size,
            )
            for i in range(count)
        ]
    )


class TestProtocol:
    def test_all_commands_answered(self, amap):
        trace = _trace_on_banks(amap, 4, 40)
        stats = HostProtocolSimulator().simulate(trace)
        assert stats.responses == stats.commands == 40

    def test_multibank_overlap(self, amap):
        """The async protocol's point: banks execute concurrently."""
        trace = _trace_on_banks(amap, 8, 160)
        eight = HostProtocolSimulator(
            HostProtocolConfig(banks=8)
        ).simulate(trace)
        one = HostProtocolSimulator(
            HostProtocolConfig(banks=1)
        ).simulate(trace)
        assert one.total_ns > 5 * eight.total_ns

    def test_bounded_queue_backpressure(self, amap):
        """A full VPC queue stalls the host (flow control)."""
        trace = _trace_on_banks(amap, 1, 50)
        stats = HostProtocolSimulator(
            HostProtocolConfig(queue_depth=4, banks=1)
        ).simulate(trace)
        assert stats.peak_queue == 4
        assert stats.host_stall_ns > 0

    def test_deep_queue_avoids_stalls(self, amap):
        trace = _trace_on_banks(amap, 8, 40)
        stats = HostProtocolSimulator(
            HostProtocolConfig(queue_depth=128, banks=8)
        ).simulate(trace)
        assert stats.host_stall_ns == 0.0

    def test_vector_commands_leave_link_idle(self, amap):
        """The granularity argument, dynamically: vector-sized VPCs make
        the link a negligible fraction of the run."""
        base = amap.subarray_base(0, 0)
        trace = VPCTrace(
            [VPC.mul(base, base + 8000, base + 16000, 2000)] * 20
        )
        stats = HostProtocolSimulator().simulate(trace)
        assert stats.link_utilisation < 0.01
        assert stats.bottleneck == "execution"

    def test_slow_link_becomes_bottleneck(self, amap):
        """Starving the link flips the bottleneck classification."""
        trace = _trace_on_banks(amap, 8, 100, size=1)
        slow = HostLinkModel(bandwidth_gbps=0.01, decode_ns=10.0)
        stats = HostProtocolSimulator(
            HostProtocolConfig(link=slow, banks=8)
        ).simulate(trace)
        assert stats.bottleneck == "link"
        assert stats.link_utilisation > stats.bank_utilisation

    def test_bank_utilisation_bounded(self, amap):
        trace = _trace_on_banks(amap, 2, 30)
        stats = HostProtocolSimulator(
            HostProtocolConfig(banks=2)
        ).simulate(trace)
        assert 0.0 < stats.bank_utilisation <= 1.0 + 1e-9

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            HostProtocolSimulator().simulate(VPCTrace())

    def test_config_validation(self):
        with pytest.raises(ValueError):
            HostProtocolConfig(queue_depth=0)
        with pytest.raises(ValueError):
            HostProtocolConfig(banks=0)

    def test_stats_defaults(self):
        stats = ProtocolStats()
        assert stats.link_utilisation == 0.0
        assert stats.bank_utilisation == 0.0
