"""Tests for workload specs, PolyBench kernels, and DNN graphs."""

import numpy as np
import pytest

from repro.core.device import StreamPIMConfig, StreamPIMDevice
from repro.workloads import (
    DNN_WORKLOADS,
    POLYBENCH,
    SMALL_KERNELS,
    dnn_workload,
    polybench_names,
    polybench_workload,
    random_matrix,
    random_vector,
)
from repro.workloads.dnn import BERTShape, MLPShape, bert_spec, mlp_spec
from repro.workloads.spec import MatrixOp, MatrixOpKind, WorkloadSpec


class TestGenerator:
    def test_deterministic_with_seed(self):
        a = random_matrix(4, 4, seed=3)
        b = random_matrix(4, 4, seed=3)
        assert np.array_equal(a, b)

    def test_range_respects_word_bits(self):
        m = random_matrix(50, 50, word_bits=4)
        assert m.min() >= 0
        assert m.max() < 16

    def test_vector_is_1d(self):
        assert random_vector(10).shape == (10,)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            random_matrix(0, 5)


class TestMatrixOpAlgebra:
    def test_matmul_scalar_ops(self):
        op = MatrixOp(MatrixOpKind.MATMUL, (4, 5, 6))
        assert op.scalar_muls == 4 * 5 * 6
        assert op.scalar_adds == 4 * 4 * 6
        assert op.flops == op.scalar_muls + op.scalar_adds
        assert op.operand_words == 4 * 5 + 5 * 6
        assert op.result_words == 24

    def test_matvec_counts(self):
        op = MatrixOp(MatrixOpKind.MATVEC, (4, 5))
        assert op.pim_vpcs == 4
        assert op.move_vpcs == 8

    def test_accumulate_doubles_counts(self):
        plain = MatrixOp(MatrixOpKind.MATVEC, (4, 5))
        acc = MatrixOp(MatrixOpKind.MATVEC, (4, 5), accumulate=True)
        assert acc.pim_vpcs == 2 * plain.pim_vpcs
        assert acc.move_vpcs == 2 * plain.move_vpcs
        assert acc.scalar_adds == plain.scalar_adds + 4

    def test_matvec_t_rows_are_columns(self):
        op = MatrixOp(MatrixOpKind.MATVEC_T, (4, 5))
        assert op.pim_vpcs == 5
        assert op.result_words == 5

    def test_matmul_move_equals_pim(self):
        # Table IV: matmul kernels have #move ~= #PIM.
        op = MatrixOp(MatrixOpKind.MATMUL, (10, 20, 30))
        assert op.move_vpcs == op.pim_vpcs == 300

    def test_dims_arity_enforced(self):
        with pytest.raises(ValueError):
            MatrixOp(MatrixOpKind.MATMUL, (4, 5))
        with pytest.raises(ValueError):
            MatrixOp(MatrixOpKind.DOT, (4, 5))

    def test_dims_positive(self):
        with pytest.raises(ValueError):
            MatrixOp(MatrixOpKind.MATVEC, (0, 5))


class TestWorkloadSpec:
    def test_aggregates(self):
        spec = WorkloadSpec(
            "demo",
            [
                MatrixOp(MatrixOpKind.MATVEC, (4, 5)),
                MatrixOp(MatrixOpKind.VEC_ADD, (5,)),
            ],
        )
        ops = spec.scalar_ops()
        assert ops.muls == 20
        assert ops.adds == 16 + 5
        pim, move = spec.vpc_counts()
        assert pim == 5
        assert move == 9

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec("empty", [])

    def test_nonlinear_fraction_validated(self):
        op = MatrixOp(MatrixOpKind.DOT, (4,))
        with pytest.raises(ValueError):
            WorkloadSpec("w", [op], nonlinear_flop_fraction=1.0)

    def test_scaled_shrinks_dims(self):
        spec = POLYBENCH["gemm"].scaled(0.01)
        assert all(max(op.dims) <= 30 for op in spec.ops)

    def test_scaled_drops_builder(self):
        with pytest.raises(NotImplementedError):
            POLYBENCH["gemm"].scaled(0.01).build_task()


class TestPolybench:
    def test_nine_kernels_in_table4_order(self):
        assert polybench_names() == (
            "2mm",
            "3mm",
            "gemm",
            "syrk",
            "syr2k",
            "atax",
            "bicg",
            "gesu",
            "mvt",
        )

    def test_unknown_kernel_rejected(self):
        with pytest.raises(KeyError):
            polybench_workload("lu")

    @pytest.mark.parametrize("name", polybench_names())
    def test_table4_pim_counts_within_15_percent(self, name):
        spec = POLYBENCH[name]
        pim, _ = spec.vpc_counts()
        assert abs(pim - spec.paper_pim_vpcs) / spec.paper_pim_vpcs < 0.15

    @pytest.mark.parametrize("name", polybench_names())
    def test_table4_move_counts_within_35_percent(self, name):
        spec = POLYBENCH[name]
        _, move = spec.vpc_counts()
        assert abs(move - spec.paper_move_vpcs) / spec.paper_move_vpcs < 0.35

    def test_exact_matches(self):
        """Kernels whose counts the convention reproduces exactly."""
        for name, column in (("atax", 0), ("mvt", 0), ("mvt", 1)):
            spec = POLYBENCH[name]
            value = spec.vpc_counts()[column]
            paper = (spec.paper_pim_vpcs, spec.paper_move_vpcs)[column]
            assert value == paper

    def test_small_kernels_are_matrix_vector(self):
        for name in SMALL_KERNELS:
            kinds = {op.kind for op in POLYBENCH[name].ops}
            assert MatrixOpKind.MATMUL not in kinds

    @pytest.mark.parametrize("name", polybench_names())
    def test_closed_form_matches_enumerated_trace_at_small_scale(
        self, name, small_geometry, small_bus_config
    ):
        """The Table IV closed form equals explicit trace enumeration."""
        # syr2k carries seven working matrices; shrink it a bit more so
        # they fit the tiny test device.
        scale = 0.003 if name == "syr2k" else 0.004
        spec = polybench_workload(name, scale=scale)
        device = StreamPIMDevice(
            StreamPIMConfig(geometry=small_geometry, bus=small_bus_config)
        )
        task = spec.build_task(device)
        trace = task.to_trace()
        pim, move = spec.vpc_counts()
        assert trace.stats.pim_vpcs == pim
        assert trace.stats.move_vpcs == move

    @pytest.mark.parametrize("name", ["gemm", "atax", "mvt", "gesu", "bicg"])
    def test_functional_correctness_at_small_scale(
        self, name, small_geometry, small_bus_config
    ):
        """The PIM execution computes the right numbers (vs numpy)."""
        spec = polybench_workload(name, scale=0.004)
        device = StreamPIMDevice(
            StreamPIMConfig(geometry=small_geometry, bus=small_bus_config)
        )
        task = spec.build_task(device, seed=11)
        report = task.run(functional=True)
        reference = _numpy_reference(name, task)
        for key, expected in reference.items():
            assert np.array_equal(report.results[key], expected), key


def _numpy_reference(name, task):
    """Recompute each kernel's final outputs with plain numpy."""
    m = {k: v.copy() for k, v in task._matrices.items()}
    s = task._scalars
    if name == "gemm":
        return {"C": s["beta"] * m["C"] + s["alpha"] * (m["A"] @ m["B"])}
    if name == "atax":
        tmp = m["A"] @ m["x"][0]
        return {"y": (m["A"].T @ tmp).reshape(1, -1)}
    if name == "bicg":
        return {
            "q": (m["A"] @ m["p"][0]).reshape(1, -1),
            "s": (m["A"].T @ m["r"][0]).reshape(1, -1),
        }
    if name == "gesu":
        u = s["alpha"] * (m["A"] @ m["x"][0])
        v = s["beta"] * (m["B"] @ m["x"][0])
        return {"y": (u + v).reshape(1, -1)}
    if name == "mvt":
        return {
            "x1": (m["x1"][0] + m["A"] @ m["y1"][0]).reshape(1, -1),
            "x2": (m["x2"][0] + m["A"].T @ m["y2"][0]).reshape(1, -1),
        }
    raise AssertionError(name)


class TestDnn:
    def test_lookup(self):
        assert dnn_workload("mlp").name == "mlp"
        assert dnn_workload("bert").name == "bert"
        with pytest.raises(KeyError):
            dnn_workload("resnet")

    def test_mlp_nonlinearity_is_small_portion(self):
        # Section V-E: "nonlinear layers in MLP are a small portion".
        assert DNN_WORKLOADS["mlp"].nonlinear_flop_fraction < 0.05

    def test_bert_has_more_nonlinear_work(self):
        assert (
            DNN_WORKLOADS["bert"].nonlinear_flop_fraction
            > DNN_WORKLOADS["mlp"].nonlinear_flop_fraction
        )

    def test_bert_layer_structure(self):
        shape = BERTShape()
        spec = bert_spec(shape)
        matmuls = [
            op for op in spec.ops if op.kind is MatrixOpKind.MATMUL
        ]
        # 3 QKV + 2 per head + output + 2 FFN, per layer.
        per_layer = 3 + 2 * shape.heads + 1 + 2
        assert len(matmuls) == per_layer * shape.layers

    def test_mlp_layer_structure(self):
        spec = mlp_spec(MLPShape(batch=8, layers=(16, 32, 4)))
        matmuls = [op for op in spec.ops if op.kind is MatrixOpKind.MATMUL]
        assert [op.dims for op in matmuls] == [(8, 16, 32), (8, 32, 4)]

    def test_bert_shape_validation(self):
        with pytest.raises(ValueError):
            BERTShape(hidden=100, heads=12)
        with pytest.raises(ValueError):
            BERTShape(layers=0)

    def test_mlp_shape_validation(self):
        with pytest.raises(ValueError):
            MLPShape(batch=0)
        with pytest.raises(ValueError):
            MLPShape(layers=(10,))

    def test_small_mlp_functional(self, small_geometry, small_bus_config):
        spec = mlp_spec(MLPShape(batch=2, layers=(4, 6, 3)))
        device = StreamPIMDevice(
            StreamPIMConfig(geometry=small_geometry, bus=small_bus_config)
        )
        task = spec.build_task(device, seed=5)
        report = task.run()
        m = task._matrices
        act = m["act0"]
        for i in range(2):
            act = act @ m[f"w{i}"] + m[f"b{i}"]
        assert np.array_equal(report.results["act2"], act)


class TestDatasetPresets:
    def test_known_presets(self):
        from repro.workloads import DATASET_SCALES, dataset_scale

        assert dataset_scale("extralarge") == 1.0
        assert dataset_scale("MEDIUM") == DATASET_SCALES["medium"]
        assert (
            dataset_scale("mini")
            < dataset_scale("small")
            < dataset_scale("medium")
            < dataset_scale("large")
            < dataset_scale("extralarge")
        )

    def test_unknown_preset_rejected(self):
        from repro.workloads import dataset_scale

        with pytest.raises(KeyError):
            dataset_scale("gigantic")

    def test_preset_builds_workload(self):
        from repro.workloads import dataset_scale, polybench_workload

        spec = polybench_workload("gemm", scale=dataset_scale("mini"))
        pim, _ = spec.vpc_counts()
        assert pim < 1000
