"""Tests for the section-VI extensions: divider, square root, floating
point, the shift-fault reliability model, and the host-interface
granularity analysis."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.rmbus import RMBusConfig
from repro.dwlogic import (
    BFLOAT16,
    DWFloat,
    DWFloatUnit,
    FloatFormat,
    GateCounter,
    RestoringDivider,
    SquareRootExtractor,
)
from repro.isa.granularity import (
    CommandGranularity,
    HostLinkModel,
    compare_granularities,
    profile_workload,
)
from repro.rm.faults import (
    FaultInjector,
    FaultyRacetrack,
    ShiftFaultConfig,
    ShiftFaultModel,
)
from repro.workloads import POLYBENCH
from repro.workloads.spec import MatrixOp, MatrixOpKind, WorkloadSpec


class TestRestoringDivider:
    @pytest.mark.parametrize(
        "dividend,divisor", [(200, 7), (255, 255), (0, 5), (13, 1), (1, 255)]
    )
    def test_examples(self, dividend, divisor):
        q, r = RestoringDivider(8).divide(dividend, divisor)
        assert (q, r) == divmod(dividend, divisor)

    @settings(max_examples=60, deadline=None)
    @given(
        dividend=st.integers(0, 255),
        divisor=st.integers(1, 255),
    )
    def test_property_matches_divmod(self, dividend, divisor):
        q, r = RestoringDivider(8).divide(dividend, divisor)
        assert (q, r) == divmod(dividend, divisor)

    def test_division_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            RestoringDivider(8).divide(1, 0)

    def test_one_step_per_bit(self):
        assert RestoringDivider(8).steps == 8
        assert RestoringDivider(16).steps == 16

    def test_counts_gates(self):
        counter = GateCounter()
        RestoringDivider(8).divide(250, 3, counter)
        assert counter.total > 0

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError):
            RestoringDivider(8).divide_bits([1, 0], [1] * 8)

    def test_wider_datapath(self):
        q, r = RestoringDivider(16).divide(54_321, 123)
        assert (q, r) == divmod(54_321, 123)


class TestSquareRoot:
    @pytest.mark.parametrize("value", [0, 1, 2, 3, 4, 15, 16, 255, 65_535])
    def test_examples(self, value):
        assert SquareRootExtractor(16).isqrt(value) == math.isqrt(value)

    @settings(max_examples=80, deadline=None)
    @given(value=st.integers(0, 65_535))
    def test_property_floor_sqrt(self, value):
        assert SquareRootExtractor(16).isqrt(value) == math.isqrt(value)

    @settings(max_examples=40, deadline=None)
    @given(value=st.integers(0, 65_535))
    def test_property_remainder_invariant(self, value):
        from repro.dwlogic.bitutils import bits_to_int, int_to_bits

        extractor = SquareRootExtractor(16)
        root_bits, rem_bits = extractor.isqrt_bits(int_to_bits(value, 16))
        root, rem = bits_to_int(root_bits), bits_to_int(rem_bits)
        assert root * root + rem == value

    def test_one_step_per_bit_pair(self):
        assert SquareRootExtractor(16).steps == 8

    def test_odd_width_rejected(self):
        with pytest.raises(ValueError):
            SquareRootExtractor(15)


class TestFloatingPoint:
    def test_format_properties(self):
        assert BFLOAT16.bias == 127
        assert BFLOAT16.total_bits == 16
        with pytest.raises(ValueError):
            FloatFormat(exponent_bits=1, mantissa_bits=4)

    def test_roundtrip_exact_values(self):
        for value in (0.0, 1.0, -2.5, 96.0, 0.125, -1024.0):
            assert DWFloat.from_float(value).to_float() == value

    def test_encoding_truncates(self):
        encoded = DWFloat.from_float(1.0 + 1 / 512).to_float()
        assert encoded == 1.0  # below bfloat16 mantissa resolution

    def test_saturation(self):
        huge = DWFloat.from_float(1e60)
        assert huge.to_float() == float("inf")

    def test_subnormals_flush(self):
        assert DWFloat.from_float(1e-45).to_float() == 0.0

    def test_exact_small_arithmetic(self):
        unit = DWFloatUnit()
        a, b = DWFloat.from_float(3.0), DWFloat.from_float(2.0)
        assert unit.multiply(a, b).to_float() == 6.0
        assert unit.add(a, b).to_float() == 5.0
        assert unit.add(a, DWFloat.from_float(-3.0)).to_float() == 0.0

    def test_signs(self):
        unit = DWFloatUnit()
        a = DWFloat.from_float(-4.0)
        b = DWFloat.from_float(0.5)
        assert unit.multiply(a, b).to_float() == -2.0
        assert unit.add(a, b).to_float() == -3.5

    def test_zero_operands(self):
        unit = DWFloatUnit()
        zero = DWFloat.from_float(0.0)
        two = DWFloat.from_float(2.0)
        assert unit.multiply(zero, two).is_zero
        assert unit.add(zero, two).to_float() == 2.0

    @settings(max_examples=60, deadline=None)
    @given(
        x=st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
        y=st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
    )
    def test_property_mul_relative_error_bounded(self, x, y):
        unit = DWFloatUnit()
        fx, fy = DWFloat.from_float(x), DWFloat.from_float(y)
        reference = fx.to_float() * fy.to_float()
        product = unit.multiply(fx, fy).to_float()
        if reference == 0.0 or abs(reference) < 1e-30:
            assert abs(product) < 1e-20
        else:
            assert abs(product - reference) / abs(reference) < 0.02

    @settings(max_examples=60, deadline=None)
    @given(
        x=st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
        y=st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
    )
    def test_property_add_relative_error_bounded(self, x, y):
        unit = DWFloatUnit()
        fx, fy = DWFloat.from_float(x), DWFloat.from_float(y)
        reference = fx.to_float() + fy.to_float()
        total = unit.add(fx, fy).to_float()
        if abs(reference) < 1e-2:
            # Catastrophic cancellation region: absolute bound instead.
            assert abs(total - reference) < 0.1
        else:
            assert abs(total - reference) / abs(reference) < 0.05


class TestShiftFaultModel:
    def test_probability_grows_with_distance(self):
        model = ShiftFaultModel()
        assert model.shift_fault_probability(1) < model.shift_fault_probability(
            1024
        )

    def test_zero_distance_never_faults(self):
        assert ShiftFaultModel().shift_fault_probability(0) == 0.0

    def test_segmented_beats_monolithic(self):
        """The section III-D claim: bounding shifts to one segment (with
        per-segment guard checks) mitigates fault accumulation."""
        model = ShiftFaultModel()
        bus = RMBusConfig()
        assert model.segmented_transfer_fault(
            bus, 2000
        ) < model.monolithic_transfer_fault(bus, 2000)
        assert model.mitigation_factor(bus, 2000) > 10

    def test_single_shift_risk_shrinks_with_segment(self):
        """Restricting shift distance bounds the per-operation risk —
        the section III-D rationale for one-segment shifts."""
        model = ShiftFaultModel()
        assert model.shift_fault_probability(
            64
        ) < model.shift_fault_probability(1024)

    def test_all_table5_segments_reliable(self):
        """Every Table V segment size keeps undetected transfer faults
        rare (so reliability never constrains the segment-size choice)."""
        model = ShiftFaultModel()
        for segment in (64, 256, 512, 1024):
            fault = model.segmented_transfer_fault(
                RMBusConfig(segment_domains=segment), 2000
            )
            assert fault < 0.02, segment

    def test_no_guard_no_mitigation_from_detection(self):
        unguarded = ShiftFaultModel(ShiftFaultConfig(guard_detection=0.0))
        guarded = ShiftFaultModel(ShiftFaultConfig(guard_detection=0.99))
        bus = RMBusConfig()
        assert unguarded.segmented_transfer_fault(
            bus, 100
        ) > guarded.segmented_transfer_fault(bus, 100)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ShiftFaultConfig(p_per_step=1.0)
        with pytest.raises(ValueError):
            ShiftFaultConfig(guard_detection=1.5)
        with pytest.raises(ValueError):
            ShiftFaultModel().shift_fault_probability(-1)


class TestFaultInjection:
    def test_injector_deterministic_with_seed(self):
        a = FaultInjector(ShiftFaultConfig(p_per_step=0.2), seed=9)
        b = FaultInjector(ShiftFaultConfig(p_per_step=0.2), seed=9)
        outcomes_a = [a.perturb(10) for _ in range(50)]
        outcomes_b = [b.perturb(10) for _ in range(50)]
        assert outcomes_a == outcomes_b

    def test_zero_shift_never_perturbed(self):
        injector = FaultInjector(ShiftFaultConfig(p_per_step=0.9), seed=1)
        assert all(injector.perturb(0) == 0 for _ in range(20))

    def test_high_rate_injects_faults(self):
        injector = FaultInjector(ShiftFaultConfig(p_per_step=0.5), seed=2)
        results = [injector.perturb(20) for _ in range(50)]
        assert injector.injected > 0
        assert any(r != 20 for r in results)

    def test_faulty_track_tracks_misalignment(self):
        track = FaultyRacetrack(
            32,
            ports=[16],
            overhead=32,
            injector=FaultInjector(ShiftFaultConfig(p_per_step=0.3), seed=3),
        )
        for _ in range(20):
            track.shift(2)
            track.shift(-2)
        # With a 30% per-step rate, drift is overwhelmingly likely.
        assert track.injector.injected > 0

    def test_fault_free_track_stays_aligned(self):
        track = FaultyRacetrack(
            16,
            ports=[8],
            overhead=16,
            injector=FaultInjector(ShiftFaultConfig(p_per_step=0.0)),
        )
        track.shift(5)
        track.shift(-3)
        assert not track.faulted
        assert track.misalignment == 0

    def test_misaligned_read_returns_wrong_bit(self):
        """Failure injection end-to-end: a drifted wire mis-reads."""
        config = ShiftFaultConfig(p_per_step=0.45)
        for seed in range(40):
            track = FaultyRacetrack(
                16,
                ports=[8],
                overhead=32,
                injector=FaultInjector(config, seed=seed),
            )
            track.load([1, 0] * 8)
            track.shift(6)
            track.shift(-6)
            if track.faulted:
                # The wire thinks bit 8 faces the port; with drift it
                # actually reads a neighbour, whose value alternates.
                assert track.read_at_port() in (0, 1)
                assert track.misalignment != 0
                return
        pytest.fail("no fault injected across 40 seeds at 45% rate")


class TestGranularity:
    @pytest.fixture(scope="class")
    def matmul_spec(self):
        return WorkloadSpec(
            "mm", [MatrixOp(MatrixOpKind.MATMUL, (100, 100, 100))]
        )

    def test_command_count_ordering(self, matmul_spec):
        profiles = compare_granularities(matmul_spec)
        scalar = profiles[CommandGranularity.SCALAR]
        vector = profiles[CommandGranularity.VECTOR]
        matrix = profiles[CommandGranularity.MATRIX]
        assert scalar.commands > vector.commands > matrix.commands

    def test_scalar_is_o_n_cubed(self, matmul_spec):
        profile = profile_workload(matmul_spec, CommandGranularity.SCALAR)
        # muls + adds of a 100^3 matmul.
        assert profile.commands == 100**3 + 100 * 99 * 100

    def test_vector_is_o_n_squared(self, matmul_spec):
        profile = profile_workload(matmul_spec, CommandGranularity.VECTOR)
        assert profile.commands == 2 * 100 * 100  # PIM + move VPCs

    def test_matrix_is_one_command_per_op(self, matmul_spec):
        profile = profile_workload(matmul_spec, CommandGranularity.MATRIX)
        assert profile.commands == 1

    def test_matrix_granularity_unit_blowup(self, matmul_spec):
        """The paper's Omega(n^2) decoder-complexity argument."""
        profiles = compare_granularities(matmul_spec)
        assert (
            profiles[CommandGranularity.MATRIX].max_units_per_command
            >= 100 * 100
        )
        assert profiles[CommandGranularity.SCALAR].max_units_per_command == 2

    def test_traffic_scales_with_commands(self, matmul_spec):
        link = HostLinkModel()
        profile = profile_workload(
            matmul_spec, CommandGranularity.VECTOR, link
        )
        assert profile.traffic_bytes == profile.commands * (
            link.command_bytes + link.response_bytes
        )
        assert profile.link_time_ns == pytest.approx(
            profile.traffic_bytes / link.bandwidth_gbps
        )

    def test_polybench_profiles(self):
        profiles = compare_granularities(POLYBENCH["gemm"])
        vector = profiles[CommandGranularity.VECTOR]
        pim, move = POLYBENCH["gemm"].vpc_counts()
        assert vector.commands == pim + move

    def test_link_validation(self):
        with pytest.raises(ValueError):
            HostLinkModel(bandwidth_gbps=0)
        with pytest.raises(ValueError):
            HostLinkModel(command_bytes=0)
